"""Define a custom zoned architecture, save it to JSON, and compile onto it.

Shows the architecture-specification API of Section III: two entanglement
zones sandwiching a storage zone, plus two AODs, then compares it with the
single-zone variant on a highly parallel Ising circuit (Section VII-H).

Run with::

    python examples/custom_architecture.py
"""

from repro.arch import (
    AODArray,
    Architecture,
    SLMArray,
    Zone,
    dumps,
    small_single_zone_architecture,
)
from repro.circuits.library import ising_chain
from repro.core import ZACCompiler


def build_dual_zone_architecture() -> Architecture:
    """A compact machine with entanglement zones above and below storage."""
    def entanglement_zone(zone_id: int, slm_id: int, y: float) -> Zone:
        left = SLMArray(slm_id=slm_id, sep=(12.0, 10.0), num_row=3, num_col=10, offset=(0.0, y))
        right = SLMArray(slm_id=slm_id + 1, sep=(12.0, 10.0), num_row=3, num_col=10, offset=(2.0, y))
        return Zone(zone_id=zone_id, offset=(0.0, y), dimension=(120.0, 30.0), slms=(left, right))

    storage_slm = SLMArray(slm_id=0, sep=(3.0, 3.0), num_row=3, num_col=40, offset=(0.0, 40.0))
    storage = Zone(zone_id=0, offset=(0.0, 40.0), dimension=(120.0, 9.0), slms=(storage_slm,))

    return Architecture(
        name="example_dual_zone",
        aods=[AODArray(aod_id=0), AODArray(aod_id=1)],
        storage_zones=[storage],
        entanglement_zones=[entanglement_zone(0, 1, 0.0), entanglement_zone(1, 3, 59.0)],
        zone_separation=10.0,
    )


def main() -> None:
    custom = build_dual_zone_architecture()
    print("custom architecture specification (paper Fig. 20 JSON format):")
    print(dumps(custom)[:400] + " ...")
    print()

    circuit = ising_chain(98, steps=1)
    baseline = small_single_zone_architecture()

    for label, architecture in [("single zone", baseline), ("dual zone + 2 AODs", custom)]:
        result = ZACCompiler(architecture).compile(circuit)
        print(
            f"{label:20s}: fidelity={result.total_fidelity:.4f}  "
            f"duration={result.duration_us / 1000:.2f} ms  "
            f"stages={result.metrics.num_rydberg_stages}"
        )


if __name__ == "__main__":
    main()
