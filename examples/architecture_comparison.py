"""Compare architectures and compilers on a slice of the paper's benchmark set.

Reproduces a small version of Fig. 8 / Fig. 10: fidelity and duration of the
superconducting baselines, the monolithic compilers, NALAC and ZAC.

Run with::

    python examples/architecture_comparison.py            # fast subset
    python examples/architecture_comparison.py --full     # all 17 circuits
"""

import argparse

from repro.experiments.architecture_comparison import (
    fidelity_table,
    improvement_summary,
    run_architecture_comparison,
)
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 17 paper benchmarks")
    args = parser.parse_args()

    subset = None if args.full else ["bv_n14", "ghz_n23", "ising_n42", "qft_n18"]
    records = run_architecture_comparison(subset)

    print("Circuit fidelity across architectures (Fig. 8)")
    print(format_table(fidelity_table(records)))
    print()
    print("ZAC geometric-mean fidelity improvement:")
    for label, ratio in improvement_summary(records).items():
        print(f"  vs {label:22s}: {ratio:8.2f}x")


if __name__ == "__main__":
    main()
