"""Compare architectures and compilers on a slice of the paper's benchmark set.

Reproduces a small version of Fig. 8 / Fig. 10: fidelity and duration of the
superconducting baselines, the monolithic compilers, NALAC and ZAC.  Every
compiler is built through the backend registry, so a newly registered backend
shows up in the sweep by adding one ``create_backend`` line.

Run with::

    python examples/architecture_comparison.py              # fast subset
    python examples/architecture_comparison.py --full       # all 17 circuits
    python examples/architecture_comparison.py --parallel 4 # fan out workers
"""

import argparse

from repro.experiments.architecture_comparison import (
    fidelity_table,
    improvement_summary,
    run_architecture_comparison,
)
from repro.experiments.harness import default_compilers
from repro.experiments.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 17 paper benchmarks")
    parser.add_argument(
        "--parallel", type=int, default=0, help="worker processes for the sweep"
    )
    args = parser.parse_args()

    subset = None if args.full else ["bv_n14", "ghz_n23", "ising_n42", "qft_n18"]
    # default_compilers() builds the Fig. 8 set via repro.api.create_backend;
    # pass your own {label: create_backend(...)} dict to sweep other backends.
    records = run_architecture_comparison(
        subset, compilers=default_compilers(), parallel=args.parallel
    )

    print("Circuit fidelity across architectures (Fig. 8)")
    print(format_table(fidelity_table(records)))
    print()
    print("ZAC geometric-mean fidelity improvement:")
    for label, ratio in improvement_summary(records).items():
        print(f"  vs {label:22s}: {ratio:8.2f}x")


if __name__ == "__main__":
    main()
