"""FTQC example: compile the hIQP transversal-gate circuit (paper Section VIII).

Builds the hypercube-IQP circuit on [[8,3,2]] code blocks, compiles the
block-level movements with ZAC on the logical architecture, and prints the
schedule summary (the paper reports 35 Rydberg stages and ~118 ms for the
128-block / 384-logical-qubit instance).

Run with::

    python examples/ftqc_hiqp.py            # 32 blocks (fast)
    python examples/ftqc_hiqp.py --blocks 128
"""

import argparse

from repro.ftqc import LogicalBlockCompiler, hiqp_circuit


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=32, help="number of [[8,3,2]] code blocks")
    args = parser.parse_args()

    model = hiqp_circuit(args.blocks)
    print(f"hIQP circuit on {args.blocks} [[8,3,2]] code blocks")
    print(f"  logical qubits     : {model.num_logical_qubits}")
    print(f"  physical qubits    : {model.num_physical_qubits}")
    print(f"  in-block layers    : {len(model.in_block_layers)}")
    print(f"  CNOT layers        : {len(model.cnot_layers)}")
    print(f"  transversal CNOTs  : {model.num_transversal_cnots}")
    print()

    result = LogicalBlockCompiler().compile_hiqp(args.blocks)
    print("block-level compilation with ZAC:")
    print(f"  Rydberg stages     : {result.num_rydberg_stages}")
    print(f"  block movements    : {result.block_movements}")
    print(f"  physical duration  : {result.duration_us / 1000:.2f} ms")
    print(f"  compile time       : {result.compile_time_s:.2f} s")


if __name__ == "__main__":
    main()
