"""Quickstart: compile a circuit with the unified backend API.

``repro.compile`` looks the backend up in the registry, compiles the circuit,
and returns a :class:`repro.CompileResult` that serializes to JSON.

Run with::

    python examples/quickstart.py

Beyond the curated benchmarks, generated workloads can stress every backend
differentially: ``python -m repro fuzz --budget 50 --seed 0 --backend all``
(see ``examples/fuzz_backends.py``).
"""

import repro
from repro.zair import validate_program


def build_circuit() -> repro.QuantumCircuit:
    """A small GHZ-style circuit with a few extra entangling layers."""
    circuit = repro.QuantumCircuit(6, name="quickstart_ghz6")
    circuit.h(0)
    for q in range(5):
        circuit.cx(q, q + 1)
    for q in range(0, 6, 2):
        circuit.rz(0.25, q)
    for q in range(0, 5, 2):
        circuit.cz(q, q + 1)
    return circuit


def main() -> None:
    circuit = build_circuit()

    # One call: registry lookup, backend construction, compilation.  Swap
    # backend="zac" for any name in repro.available_backends() ("enola",
    # "atomique", "nalac", "sc", "ideal") to retarget the same circuit.
    result = repro.compile(circuit, backend="zac", config=repro.ZACConfig.full())

    # The compiled ZAIR program can be checked against the hardware rules and
    # serialised to JSON for a hardware backend.
    validate_program(repro.reference_zoned_architecture(), result.program)

    print(f"backends available : {', '.join(repro.available_backends())}")
    print(f"circuit: {result.circuit_name} on {result.architecture_name}")
    print(f"  2Q gates           : {result.metrics.num_2q_gates}")
    print(f"  Rydberg stages     : {result.metrics.num_rydberg_stages}")
    print(f"  qubit movements    : {result.metrics.num_movements}")
    print(f"  atom transfers     : {result.metrics.num_transfers}")
    print(f"  reused qubits      : {result.plan.num_reuses}")
    print(f"  circuit duration   : {result.duration_us / 1000:.2f} ms")
    print(f"  estimated fidelity : {result.total_fidelity:.4f}")
    print()
    print("fidelity breakdown:")
    for term, value in result.fidelity.as_dict().items():
        print(f"  {term:14s}: {value:.4f}")
    print()

    # Results round-trip through JSON, so sweeps can be persisted and merged.
    restored = repro.CompileResult.from_json(result.to_json())
    print(f"JSON round-trip fidelity: {restored.total_fidelity:.4f}")
    print()
    print("first few ZAIR instructions:")
    for inst in result.program.instructions[:5]:
        print(" ", type(inst).__name__, inst.to_dict())


if __name__ == "__main__":
    main()
