"""Quickstart: compile a circuit for the reference zoned architecture with ZAC.

Run with::

    python examples/quickstart.py
"""

from repro.arch import reference_zoned_architecture
from repro.circuits import QuantumCircuit
from repro.core import ZACCompiler, ZACConfig
from repro.zair import validate_program


def build_circuit() -> QuantumCircuit:
    """A small GHZ-style circuit with a few extra entangling layers."""
    circuit = QuantumCircuit(6, name="quickstart_ghz6")
    circuit.h(0)
    for q in range(5):
        circuit.cx(q, q + 1)
    for q in range(0, 6, 2):
        circuit.rz(0.25, q)
    for q in range(0, 5, 2):
        circuit.cz(q, q + 1)
    return circuit


def main() -> None:
    architecture = reference_zoned_architecture()
    circuit = build_circuit()

    compiler = ZACCompiler(architecture, ZACConfig.full())
    result = compiler.compile(circuit)

    # The compiled ZAIR program can be checked against the hardware rules and
    # serialised to JSON for a hardware backend.
    validate_program(architecture, result.program)

    print(f"circuit: {result.circuit_name} on {result.architecture_name}")
    print(f"  2Q gates           : {result.metrics.num_2q_gates}")
    print(f"  Rydberg stages     : {result.metrics.num_rydberg_stages}")
    print(f"  qubit movements    : {result.metrics.num_movements}")
    print(f"  atom transfers     : {result.metrics.num_transfers}")
    print(f"  reused qubits      : {result.plan.num_reuses}")
    print(f"  circuit duration   : {result.duration_us / 1000:.2f} ms")
    print(f"  estimated fidelity : {result.total_fidelity:.4f}")
    print()
    print("fidelity breakdown:")
    for term, value in result.fidelity.as_dict().items():
        print(f"  {term:14s}: {value:.4f}")
    print()
    print("first few ZAIR instructions:")
    for inst in result.program.instructions[:5]:
        print(" ", type(inst).__name__, inst.to_dict())


if __name__ == "__main__":
    main()
