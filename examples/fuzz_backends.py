"""Walkthrough: generate random workloads and differentially fuzz the backends.

The curated 17-benchmark set only covers a fixed slice of circuit space.
This example shows the three layers of the fuzzing subsystem:

1. **Workload generation** (`repro.generate`): seeded random circuits with a
   reproducible descriptor -- `(generator, seed, params)` regenerates the
   identical gate list.
2. **The differential harness** (`repro.experiments.run_fuzz`): compile every
   workload on every registered backend, validate each emitted ZAIR program,
   and check the cross-backend metamorphic invariants (positive durations,
   the ideal bound dominating ZAC, seeded determinism, interpreter-vs-legacy
   conformance, depth monotonicity).
3. **Fault injection + repro bundles**: a deliberately broken backend is
   registered; the harness catches it, bisects the failing circuit down to a
   minimal reproducer, and dumps a replayable JSON bundle.  The same check
   runs from the CLI: ``python -m repro fuzz --replay <bundle.json>``.

Run with::

    python examples/fuzz_backends.py
"""

import json
import tempfile

import repro
from repro.experiments import run_fuzz, replay_bundle, sample_workloads
from repro.zair.instructions import QLoc


def show_workload_generation() -> None:
    workload = repro.generate("qaoa_erdos_renyi", seed=7, num_qubits=10, depth=4)
    print(f"generated  : {workload.circuit.name}")
    print(f"  gates    : {len(workload.circuit)} (depth {workload.circuit.depth()})")
    print(f"  descriptor: {workload.descriptor.to_dict()}")
    rebuilt = workload.descriptor.build()
    print(f"  descriptor rebuilds identical circuit: {rebuilt.gates == workload.circuit.gates}")
    print()
    print("a small sample from the default size/shape grid:")
    for sampled in sample_workloads(5, seed=0):
        print(f"  {sampled.circuit.name:55s} {len(sampled.circuit):4d} gates")
    print()


def run_clean_fuzz() -> None:
    print("fuzzing every registered backend (small budget)...")
    report = run_fuzz(budget=5, seed=0)
    for line in report.summary_lines():
        print(line)
    print()


class BrokenEnola:
    """Enola with a re-introduced double-occupancy bug (for demonstration)."""

    name = "broken-enola"

    def __init__(self) -> None:
        self._inner = repro.create_backend("enola")

    def compile(self, circuit):
        result = self._inner.compile(circuit)
        init = result.program.instructions[0]
        if len(init.init_locs) >= 2:
            first, second = init.init_locs[0], init.init_locs[1]
            init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        return result


def run_fault_injection() -> None:
    print("injecting a fault: registering a backend with a double-occupancy bug...")
    repro.register_backend(
        "broken-enola", lambda arch, options: BrokenEnola(), overwrite=True
    )
    try:
        out_dir = tempfile.mkdtemp(prefix="fuzz_demo_")
        report = run_fuzz(
            budget=2,
            seed=1,
            backends=["broken-enola"],
            out_dir=out_dir,
            check_depth_monotonic=False,
            check_determinism=False,
        )
        failure = report.failures[0]
        print(f"  caught    : [{failure.check}] {failure.message}")
        print(
            f"  minimized : {failure.original_num_gates} gates -> "
            f"{failure.minimized_num_gates}"
        )
        print(f"  bundle    : {failure.bundle_path}")
        with open(failure.bundle_path, encoding="utf-8") as handle:
            bundle = json.load(handle)
        print(f"  bundle keys: {sorted(bundle)}")
        reproduced, message = replay_bundle(failure.bundle_path)
        print(f"  replay    : reproduced={reproduced} ({message})")
    finally:
        from repro.api import unregister_backend

        unregister_backend("broken-enola")
    print()


def main() -> None:
    show_workload_generation()
    run_clean_fuzz()
    run_fault_injection()
    print("CLI equivalents:")
    print("  python -m repro fuzz --budget 50 --seed 0 --backend all")
    print("  python -m repro fuzz --replay fuzz_failures/fuzz_fail_000.json")


if __name__ == "__main__":
    main()
