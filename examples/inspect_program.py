"""Inspect a compiled ZAIR program, for any backend.

Every registered backend lowers its schedule to a
:class:`repro.zair.ZAIRProgram`; this example compiles one benchmark on
three very different backends (zoned ZAC, monolithic Enola, superconducting
transpiler), walks the instruction streams, and shows that the reported
metrics are exactly what the shared interpreter derives from the program.

Run with::

    python examples/inspect_program.py
"""

import repro
from repro.api import create_backend
from repro.zair import (
    GateLayerInst,
    InitInst,
    OneQGateInst,
    RearrangeJob,
    RydbergInst,
    interpret_program,
    validate_program,
)

BENCHMARK = "bv_n14"


def describe(inst) -> str:
    """One human-readable line per program-level instruction."""
    window = f"[{inst.begin_time:9.2f}, {inst.end_time:9.2f}] us"
    if isinstance(inst, OneQGateInst):
        return f"{window}  1qGate   x{inst.num_gates}"
    if isinstance(inst, RydbergInst):
        return f"{window}  rydberg  zone={inst.zone_id} gates={len(inst.gates)}"
    if isinstance(inst, RearrangeJob):
        qubits = ",".join(str(q) for q in inst.qubits[:6])
        more = "..." if inst.num_qubits > 6 else ""
        return f"{window}  rearrange aod={inst.aod_id} qubits=[{qubits}{more}]"
    if isinstance(inst, GateLayerInst):
        return f"{window}  gateLayer x{len(inst.gates)}"
    return f"{window}  {type(inst).__name__}"


def main() -> None:
    for backend in ("zac", "enola", "sc"):
        result = repro.compile(BENCHMARK, backend=backend)
        program = result.program

        # The registry compile path has already validated the program; doing
        # it again here shows the public API for hand-written programs.
        validate_program(result.architecture, program)

        print(f"== {backend} ({result.compiler_name}) on {program.architecture_name} ==")
        print(
            f"   {program.num_zair_instructions} ZAIR instructions "
            f"({program.num_machine_instructions} machine-level), "
            f"{program.num_rydberg_stages} Rydberg stages, "
            f"{program.num_movements} qubit movements"
        )
        for inst in program.instructions[:6]:
            if isinstance(inst, InitInst):
                print(f"   init of {len(inst.init_locs)} qubits")
                continue
            print(f"   {describe(inst)}")
        if len(program.instructions) > 6:
            print(f"   ... {len(program.instructions) - 6} more")

        # The reported numbers ARE the interpreter's replay of the program.
        replay = interpret_program(
            program,
            architecture=result.architecture,
            params=create_backend(backend).params,
        )
        assert replay.metrics.duration_us == result.metrics.duration_us
        assert replay.fidelity.total == result.fidelity.total
        print(
            f"   replayed: duration {replay.metrics.duration_us:.2f} us, "
            f"fidelity {replay.fidelity.total:.4f} (matches result)"
        )
        print()


if __name__ == "__main__":
    main()
