"""Incremental prefix-reuse compilation (ROADMAP item 3).

Depth ladders, VQE/QAOA-style parameter sweeps, and fuzz campaigns compile
*families* of circuits in which each member shares a long gate prefix with
the previous one (PR 4's workload generators guarantee the depth-``d``
circuit is a gate prefix of the depth-``d'`` circuit under a fixed seed).
``BENCH_compile_speed.json`` shows the ``place`` phase consumes 75-90 % of
per-circuit compile time, yet every compile used to start from scratch.

This module makes recompiles O(delta):

* :class:`PrefixCache` -- a process-wide, bounded store of per-compilation
  artifacts keyed by the *Rydberg stage-pair prefix* of each compiled
  circuit (plus a scope key: architecture fingerprint, config repr, and job
  lowering mode -- artifacts are only reusable between compiles that agree
  on all three).
* :class:`PrefixLookupPass` -- inserted after preprocessing.  If a cached
  circuit's stage pairs are a prefix of the request's, the pass injects the
  ancestor's initial placement (skipping SA entirely) and the reusable
  per-stage placement plans and routed jobs, so the downstream passes only
  place/route the delta.  Otherwise, with ``warm_start`` enabled, it seeds
  the SA annealer with the initial placement of the most content-similar
  cached circuit (longest common stage-pair prefix).
* :class:`PrefixStorePass` -- inserted after scheduling; records the
  compile's artifacts for future reuse.

Reuse granularity (why ``k = r_common - 1`` plans): the dynamic placer's
plan for stage ``i`` depends on stages ``0..i+1`` (the return/reuse decision
looks one stage ahead) plus the placer state entering stage ``i``.  With
``r_common`` identical leading Rydberg stages, plans ``0..r_common-2`` are
bit-reusable; the resumed placer replays their movements to reconstruct its
state (see :meth:`DynamicPlacer._replay_plans`) and continues from stage
``r_common - 1``.  When the cached circuit's stage pairs equal the request's
*exactly*, every plan and routed job is reusable.

Equivalence contract (pinned by ``tests/test_incremental.py``): an
incremental compile is bit-identical to a from-scratch compile seeded with
the same initial placement.  For the non-SA ablation presets the initial
placement is a pure function of the qubit count, so incremental equals the
plain from-scratch compile bit-for-bit; in SA mode the inherited placement
is the ancestor's (that is the point), so the *quality* (fidelity, duration)
is gated against cold compilation instead.

Matching is over Rydberg stage *pairs*, not raw gates: placement and routing
are pure functions of the stage pairs, so two circuits that differ only in
single-qubit gate parameters (the parameter-sweep case) share everything up
to scheduling, which is always re-run in full -- it is cheap and keeps the
emitted program honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..zair.instructions import RearrangeJob
from .model import GatePlacementEntry, StagePlan
from .pipeline import Pass, PassContext

#: One Rydberg stage as an ordered tuple of qubit pairs.
StageKey = tuple[tuple[int, int], ...]


def stage_pair_key(stage_pairs: list[list[tuple[int, int]]]) -> tuple[StageKey, ...]:
    """Hashable content key of a circuit's Rydberg stage pairs."""
    return tuple(tuple(stage) for stage in stage_pairs)


def common_stage_prefix(a: tuple[StageKey, ...], b: tuple[StageKey, ...]) -> int:
    """Number of leading identical Rydberg stages of two circuits."""
    common = 0
    for stage_a, stage_b in zip(a, b):
        if stage_a != stage_b:
            break
        common += 1
    return common


def copy_stage_plan(plan: StagePlan) -> StagePlan:
    """Copy a cached stage plan for adoption into a new compilation.

    Containers are fresh (the cache must never alias live results);
    ``Movement`` / ``Location`` / ``RydbergSite`` values are frozen
    dataclasses and safely shared.
    """
    return StagePlan(
        stage_index=plan.stage_index,
        gates=[
            GatePlacementEntry(entry.qubits, entry.site, entry.first_side)
            for entry in plan.gates
        ],
        incoming=list(plan.incoming),
        outgoing=list(plan.outgoing),
        reused_qubits=set(plan.reused_qubits),
        zone_index=plan.zone_index,
        forced_next=dict(plan.forced_next),
    )


def copy_rearrange_job(job: RearrangeJob) -> RearrangeJob:
    """Copy a cached rearrangement job for adoption into a new compilation.

    The scheduler mutates only the job-level fields (``aod_id``,
    ``begin_time``, ``end_time``), so the copy gets fresh containers while
    sharing the frozen ``QLoc`` values and the write-once lowered machine
    instructions.  ``copy.deepcopy`` here cost more than rebuilding the jobs
    from scratch would have.
    """
    return RearrangeJob(
        aod_id=job.aod_id,
        begin_locs=list(job.begin_locs),
        end_locs=list(job.end_locs),
        insts=list(job.insts),
        begin_time=job.begin_time,
        end_time=job.end_time,
    )


@dataclass
class PrefixEntry:
    """Reusable artifacts of one completed compilation."""

    num_qubits: int
    stage_pairs: tuple[StageKey, ...]
    #: Initial storage placement (qubit -> trap).
    initial: dict
    #: Per-Rydberg-stage placement plans, in stage order.
    plans: list[StagePlan]
    #: Routed rearrangement jobs keyed ``(stage_index, "in"|"out")``.
    jobs: dict


@dataclass
class PrefixMatch:
    """Outcome of a cache lookup."""

    #: ``"resume"`` (exact stage-pair prefix), ``"warm"`` (similar circuit
    #: found, SA warm start only), or ``"miss"``.
    kind: str
    entry: PrefixEntry | None = None
    #: Leading stages shared with the matched entry.
    common_stages: int = 0
    #: Number of cached stage plans adoptable verbatim (resume only).
    reusable_plans: int = 0


class PrefixCache:
    """Bounded FIFO store of compilation artifacts keyed by gate prefix.

    Entries live under a *scope key* -- ``(architecture fingerprint,
    repr(config), lower_jobs)`` -- because placement plans and routed jobs
    are only meaningful between compiles agreeing on all three.  Within a
    scope, one entry is kept per distinct stage-pair sequence (recompiling
    the same circuit refreshes its entry).
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, PrefixEntry] = {}
        self.hits = 0
        self.warm_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.warm_hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "warm_hits": self.warm_hits,
            "misses": self.misses,
        }

    # -- snapshot / restore (cross-process prefix shipping) -------------------

    def snapshot(self, scope: tuple | None = None) -> dict:
        """Picklable snapshot of the cached entries (optionally one scope).

        The snapshot shares the entry objects with the live cache -- it is
        meant to be pickled across a process boundary (the compile daemon
        ships snapshots to its worker processes so depth-ladder recompiles
        hit the prefix path there), where pickling itself makes the copy.
        It also carries the current hit/miss counters so a worker can report
        the *delta* it produced back to the dispatching process.
        """
        entries = {
            key: entry
            for key, entry in self._entries.items()
            if scope is None or key[0] == scope
        }
        return {
            "entries": entries,
            "stats": {
                "hits": self.hits,
                "warm_hits": self.warm_hits,
                "misses": self.misses,
            },
        }

    def restore(self, snapshot: dict, *, merge: bool = True) -> int:
        """Load entries from a :meth:`snapshot` (``merge=False`` replaces).

        Counters are untouched (use :meth:`merge_stats` for deltas).
        Returns the number of entries installed.
        """
        if not merge:
            self._entries.clear()
        entries = snapshot.get("entries", {})
        for key, entry in entries.items():
            self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        return len(entries)

    def merge_stats(self, hits: int = 0, warm_hits: int = 0, misses: int = 0) -> None:
        """Fold a worker's counter deltas into this cache's statistics."""
        self.hits += hits
        self.warm_hits += warm_hits
        self.misses += misses

    # -- store ----------------------------------------------------------------

    def store(self, scope: tuple, entry: PrefixEntry) -> None:
        key = (scope, entry.stage_pairs)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = entry

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self,
        scope: tuple,
        num_qubits: int,
        stage_pairs: tuple[StageKey, ...],
        want_resume: bool = True,
        want_warm: bool = False,
    ) -> PrefixMatch:
        """Find the best reusable entry for a compile request.

        Resume candidates are entries whose *entire* stage-pair sequence is
        a prefix of the request's (the depth-ladder / extension case); the
        longest one wins.  Failing that, warm candidates are entries sharing
        at least one leading stage; the one with the longest common prefix
        wins and only its initial placement is used (to seed SA).
        """
        best_resume: PrefixEntry | None = None
        best_warm: PrefixEntry | None = None
        best_warm_common = 0
        for (entry_scope, _), entry in self._entries.items():
            if entry_scope != scope or entry.num_qubits != num_qubits:
                continue
            common = common_stage_prefix(entry.stage_pairs, stage_pairs)
            if (
                want_resume
                and common == len(entry.stage_pairs)
                and (
                    best_resume is None
                    or common > len(best_resume.stage_pairs)
                )
            ):
                best_resume = entry
            if want_warm and common > best_warm_common:
                best_warm, best_warm_common = entry, common

        if best_resume is not None:
            common = len(best_resume.stage_pairs)
            # The last cached plan looked ahead into a stage the cached
            # circuit did not have; it is only reusable when the request has
            # no further stage either (exact stage-pair equality).
            reusable = common if common == len(stage_pairs) else common - 1
            self.hits += 1
            return PrefixMatch(
                "resume",
                entry=best_resume,
                common_stages=common,
                reusable_plans=max(0, reusable),
            )
        if best_warm is not None:
            self.warm_hits += 1
            return PrefixMatch("warm", entry=best_warm, common_stages=best_warm_common)
        self.misses += 1
        return PrefixMatch("miss")


_PREFIX_CACHE = PrefixCache()


def get_prefix_cache() -> PrefixCache:
    """The process-wide prefix cache."""
    return _PREFIX_CACHE


def clear_prefix_cache() -> None:
    """Drop all cached prefixes (test isolation)."""
    _PREFIX_CACHE.clear()


def prefix_scope(ctx: PassContext) -> tuple:
    """Scope key under which this compilation's artifacts are reusable."""
    # Lazy import: api.parallel imports the core package.
    from ..api.parallel import architecture_fingerprint

    return (
        architecture_fingerprint(ctx.architecture),
        repr(ctx.config),
        ctx.lower_jobs,
    )


class PrefixLookupPass(Pass):
    """Inject reusable artifacts from the prefix cache (after preprocess).

    On a resume hit the pass sets ``ctx.initial`` (PlacePass then skips the
    initial-placement strategy entirely, SA included) and stashes
    ``ctx.data["prefix_plans"]`` / ``ctx.data["route_prefix_jobs"]`` for the
    placement and routing passes.  On a warm hit it stashes
    ``ctx.data["warm_start_placement"]`` for the SA annealer.  The lookup
    outcome is recorded in ``ctx.data["prefix_match"]``.
    """

    name = "prefix_lookup"

    def run(self, ctx: PassContext) -> None:
        ctx.require("staged", "stage_pairs")
        want_resume = ctx.config.incremental
        want_warm = ctx.config.warm_start and ctx.config.use_sa_initial_placement
        if not (want_resume or want_warm):
            return
        cache = get_prefix_cache()
        match = cache.lookup(
            prefix_scope(ctx),
            ctx.staged.num_qubits,
            stage_pair_key(ctx.stage_pairs),
            want_resume=want_resume,
            want_warm=want_warm,
        )
        ctx.data["prefix_match"] = match
        if match.kind == "resume":
            entry = match.entry
            assert entry is not None
            ctx.initial = dict(entry.initial)
            k = match.reusable_plans
            ctx.data["prefix_plans"] = [
                copy_stage_plan(plan) for plan in entry.plans[:k]
            ]
            # Routed jobs alias ZAIR instructions the scheduler mutates
            # (aod_id, begin/end times), so the reused jobs are copied.
            ctx.data["route_prefix_stages"] = k
            ctx.data["route_prefix_jobs"] = {
                key: [copy_rearrange_job(job) for job in jobs]
                for key, jobs in entry.jobs.items()
                if key[0] < k
            }
        elif match.kind == "warm":
            entry = match.entry
            assert entry is not None
            ctx.data["warm_start_placement"] = dict(entry.initial)


class PrefixStorePass(Pass):
    """Record the finished compilation's artifacts (after schedule)."""

    name = "prefix_store"

    def run(self, ctx: PassContext) -> None:
        if not (ctx.config.incremental or ctx.config.warm_start):
            return
        ctx.require("staged", "stage_pairs", "initial", "plan", "routed_jobs")
        get_prefix_cache().store(
            prefix_scope(ctx),
            PrefixEntry(
                num_qubits=ctx.staged.num_qubits,
                stage_pairs=stage_pair_key(ctx.stage_pairs),
                initial=dict(ctx.initial),
                plans=list(ctx.plan.stages),
                jobs=dict(ctx.routed_jobs),
            ),
        )
