"""The top-level ZAC compiler (paper Section IV).

The compiler is a thin driver around the explicit pass pipeline of
:mod:`repro.core.pipeline`: preprocessing (resynthesis + ASAP staging),
reuse-aware placement (initial + dynamic), rearrangement-job routing,
load-balanced scheduling, and fidelity estimation.  The result is the
unified :class:`~repro.core.result.CompileResult` bundling the compiled ZAIR
program, the raw execution metrics, and the fidelity breakdown.

``CompilationResult`` is kept as a deprecated alias of ``CompileResult``.
"""

from __future__ import annotations

import time

from ..arch.spec import Architecture
from ..circuits.circuit import QuantumCircuit
from ..circuits.scheduling import StagedCircuit
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from .config import ZACConfig
from .pipeline import PassContext, PassPipeline, default_pipeline
from .result import CompileResult

#: Deprecated alias, kept for the pre-registry API.
CompilationResult = CompileResult


class ZACCompiler:
    """Reuse-aware compiler for zoned neutral-atom architectures.

    Args:
        architecture: Target zoned architecture.
        config: Compiler configuration (ablation switches, SA parameters).
        params: Hardware parameters used for timing and fidelity estimation.
        lower_jobs: Whether to lower rearrangement jobs to machine-level
            instructions (disable to speed up large sweeps).
        pipeline: Custom pass pipeline; defaults to
            :func:`repro.core.pipeline.default_pipeline` for ``config``.
    """

    name = "Zoned-ZAC"

    def __init__(
        self,
        architecture: Architecture,
        config: ZACConfig | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
        lower_jobs: bool = True,
        pipeline: PassPipeline | None = None,
    ) -> None:
        self.architecture = architecture
        self.config = config or ZACConfig()
        self.params = params
        self.lower_jobs = lower_jobs
        self.pipeline = pipeline or default_pipeline(self.config)

    # -- pipeline -------------------------------------------------------------

    def compile(self, circuit: QuantumCircuit) -> CompileResult:
        """Compile a circuit end to end."""
        return self._run(self._context(circuit=circuit, circuit_name=circuit.name))

    def compile_staged(
        self, staged: StagedCircuit, circuit_name: str | None = None
    ) -> CompileResult:
        """Compile an already-preprocessed (staged) circuit."""
        return self._run(
            self._context(staged=staged, circuit_name=circuit_name or staged.name)
        )

    # -- helpers --------------------------------------------------------------

    def _context(self, **state) -> PassContext:
        return PassContext(
            architecture=self.architecture,
            config=self.config,
            params=self.params,
            lower_jobs=self.lower_jobs,
            **state,
        )

    def _run(self, ctx: PassContext) -> CompileResult:
        start = time.perf_counter()
        self.pipeline.run(ctx)
        if ctx.metrics is not None:
            ctx.metrics.compile_time_s = time.perf_counter() - start
        return CompileResult(
            circuit_name=ctx.circuit_name,
            architecture_name=self.architecture.name,
            compiler_name=self.name,
            metrics=ctx.metrics,
            fidelity=ctx.fidelity,
            program=ctx.program,
            staged=ctx.staged,
            plan=ctx.plan,
            architecture=self.architecture,
        )
