"""The top-level ZAC compiler (paper Section IV).

Pipeline: preprocessing (resynthesis + ASAP staging), reuse-aware placement
(initial + dynamic), rearrangement-job routing, load-balanced scheduling, and
fidelity estimation.  The result bundles the compiled ZAIR program, the raw
execution metrics, and the fidelity breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..arch.spec import Architecture
from ..circuits.circuit import QuantumCircuit
from ..circuits.scheduling import StagedCircuit, preprocess, split_oversized_stages
from ..fidelity.model import ExecutionMetrics, FidelityBreakdown, estimate_fidelity
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ..zair.program import ZAIRProgram
from .config import ZACConfig
from .model import PlacementPlan
from .placement.dynamic import DynamicPlacer
from .placement.initial import sa_placement, trivial_placement
from .scheduling.scheduler import Scheduler


@dataclass
class CompilationResult:
    """Everything produced by one compiler run."""

    circuit_name: str
    architecture_name: str
    program: ZAIRProgram
    metrics: ExecutionMetrics
    fidelity: FidelityBreakdown
    staged: StagedCircuit
    plan: PlacementPlan

    @property
    def total_fidelity(self) -> float:
        return self.fidelity.total

    @property
    def duration_us(self) -> float:
        return self.metrics.duration_us

    #: Compilation phases surfaced in :meth:`summary` (in pipeline order).
    PHASES = ("preprocess", "place", "route", "schedule", "fidelity")

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline numbers (for reports / CSV)."""
        summary = {
            "fidelity": self.fidelity.total,
            "fidelity_2q": self.fidelity.two_q_gate_with_excitation,
            "fidelity_1q": self.fidelity.one_q_gate,
            "fidelity_transfer": self.fidelity.atom_transfer,
            "fidelity_decoherence": self.fidelity.decoherence,
            "duration_us": self.metrics.duration_us,
            "num_2q_gates": self.metrics.num_2q_gates,
            "num_1q_gates": self.metrics.num_1q_gates,
            "num_transfers": self.metrics.num_transfers,
            "num_excitations": self.metrics.num_excitations,
            "num_rydberg_stages": self.metrics.num_rydberg_stages,
            "num_movements": self.metrics.num_movements,
            "compile_time_s": self.metrics.compile_time_s,
        }
        for phase in self.PHASES:
            summary[f"time_{phase}_s"] = self.metrics.phase_times_s.get(phase, 0.0)
        return summary


class ZACCompiler:
    """Reuse-aware compiler for zoned neutral-atom architectures.

    Args:
        architecture: Target zoned architecture.
        config: Compiler configuration (ablation switches, SA parameters).
        params: Hardware parameters used for timing and fidelity estimation.
        lower_jobs: Whether to lower rearrangement jobs to machine-level
            instructions (disable to speed up large sweeps).
    """

    def __init__(
        self,
        architecture: Architecture,
        config: ZACConfig | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
        lower_jobs: bool = True,
    ) -> None:
        self.architecture = architecture
        self.config = config or ZACConfig()
        self.params = params
        self.lower_jobs = lower_jobs

    # -- pipeline -------------------------------------------------------------

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile a circuit end to end."""
        start = time.perf_counter()
        staged = preprocess(circuit)
        preprocess_s = time.perf_counter() - start
        result = self.compile_staged(staged, circuit_name=circuit.name)
        result.metrics.phase_times_s["preprocess"] = (
            result.metrics.phase_times_s.get("preprocess", 0.0) + preprocess_s
        )
        result.metrics.compile_time_s = time.perf_counter() - start
        return result

    def compile_staged(
        self, staged: StagedCircuit, circuit_name: str | None = None
    ) -> CompilationResult:
        """Compile an already-preprocessed (staged) circuit."""
        start = time.perf_counter()
        if staged.num_qubits > self.architecture.num_storage_traps:
            raise ValueError(
                f"circuit needs {staged.num_qubits} storage traps but the architecture "
                f"has only {self.architecture.num_storage_traps}"
            )
        staged = split_oversized_stages(staged, self.architecture.num_rydberg_sites)
        stage_pairs = [stage.pairs for stage in staged.rydberg_stages]
        preprocess_s = time.perf_counter() - start

        place_start = time.perf_counter()
        initial = self._initial_placement(staged.num_qubits, stage_pairs)
        placer = DynamicPlacer(self.architecture, self.config)
        plan = placer.run(stage_pairs, initial)
        place_s = time.perf_counter() - place_start

        scheduler = Scheduler(
            self.architecture,
            self.params,
            lower_jobs=self.lower_jobs,
            fast_routing=self.config.use_fast_paths,
        )
        output = scheduler.run(staged, plan)
        fidelity_start = time.perf_counter()
        fidelity = estimate_fidelity(output.metrics, self.params)
        output.metrics.phase_times_s["preprocess"] = preprocess_s
        output.metrics.phase_times_s["place"] = place_s
        output.metrics.phase_times_s["fidelity"] = time.perf_counter() - fidelity_start
        output.metrics.compile_time_s = time.perf_counter() - start
        return CompilationResult(
            circuit_name=circuit_name or staged.name,
            architecture_name=self.architecture.name,
            program=output.program,
            metrics=output.metrics,
            fidelity=fidelity,
            staged=staged,
            plan=plan,
        )

    # -- helpers --------------------------------------------------------------

    def _initial_placement(self, num_qubits, stage_pairs):
        if self.config.use_sa_initial_placement:
            return sa_placement(
                self.architecture, num_qubits, stage_pairs, config=self.config
            )
        return trivial_placement(self.architecture, num_qubits)
