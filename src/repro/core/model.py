"""Shared data model of the ZAC compilation pipeline.

The placement step produces a :class:`PlacementPlan`; the routing step turns
its movement lists into rearrangement jobs; the scheduling step assigns jobs
to AODs and computes the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.spec import Architecture, RydbergSite, StorageTrap
from ..zair.instructions import QLoc

#: Side index of the left trap of a Rydberg site (first SLM of the zone).
LEFT = 0
#: Side index of the right trap of a Rydberg site (second SLM of the zone).
RIGHT = 1


@dataclass(frozen=True)
class Location:
    """Where a qubit currently sits: a storage trap or one side of a Rydberg site."""

    storage: StorageTrap | None = None
    site: RydbergSite | None = None
    side: int = LEFT

    def __post_init__(self) -> None:
        if (self.storage is None) == (self.site is None):
            raise ValueError("a location is either a storage trap or a Rydberg site")

    @property
    def in_storage(self) -> bool:
        return self.storage is not None

    @property
    def in_entanglement_zone(self) -> bool:
        return self.site is not None

    @staticmethod
    def at_storage(trap: StorageTrap) -> "Location":
        return Location(storage=trap)

    @staticmethod
    def at_site(site: RydbergSite, side: int) -> "Location":
        return Location(site=site, side=side)


def location_position(architecture: Architecture, location: Location) -> tuple[float, float]:
    """Physical (x, y) of a location."""
    if location.storage is not None:
        return architecture.trap_position(location.storage)
    assert location.site is not None
    if location.side == LEFT:
        return architecture.site_position(location.site)
    return architecture.site_partner_position(location.site)


def location_qloc(architecture: Architecture, qubit: int, location: Location) -> QLoc:
    """ZAIR qloc of a qubit at a location."""
    if location.storage is not None:
        trap = location.storage
        slm = architecture.storage_zones[trap.zone_index].slms[0]
        return QLoc(qubit, slm.slm_id, trap.row, trap.col)
    assert location.site is not None
    site = location.site
    zone = architecture.entanglement_zones[site.zone_index]
    slm = zone.slms[location.side]
    return QLoc(qubit, slm.slm_id, site.row, site.col)


@dataclass(frozen=True)
class Movement:
    """One qubit's movement between two locations."""

    qubit: int
    source: Location
    destination: Location

    def distance_um(self, architecture: Architecture) -> float:
        sx, sy = location_position(architecture, self.source)
        dx, dy = location_position(architecture, self.destination)
        return ((sx - dx) ** 2 + (sy - dy) ** 2) ** 0.5


@dataclass
class GatePlacementEntry:
    """A two-qubit gate mapped onto a Rydberg site."""

    qubits: tuple[int, int]
    site: RydbergSite
    #: Side of the first qubit of ``qubits`` (the other qubit takes the other side).
    first_side: int = LEFT

    def side_of(self, qubit: int) -> int:
        if qubit == self.qubits[0]:
            return self.first_side
        if qubit == self.qubits[1]:
            return RIGHT - self.first_side
        raise ValueError(f"qubit {qubit} is not part of gate {self.qubits}")


@dataclass
class StagePlan:
    """Placement and movement plan for one Rydberg stage."""

    stage_index: int
    gates: list[GatePlacementEntry] = field(default_factory=list)
    #: Movements that bring gate qubits into the entanglement zone.
    incoming: list[Movement] = field(default_factory=list)
    #: Movements that return non-reused qubits to the storage zone afterwards.
    outgoing: list[Movement] = field(default_factory=list)
    #: Qubits kept at their Rydberg site for the next stage.
    reused_qubits: set[int] = field(default_factory=set)
    #: Entanglement zone illuminated by this stage's Rydberg pulse.
    zone_index: int = 0
    #: Reuse constraint handed to the *next* stage: next-stage gate index ->
    #: ``(site, reused_qubit)``.  Recorded so incremental compilation can
    #: resume the dynamic placer exactly at a prefix boundary.
    forced_next: dict[int, tuple[RydbergSite, int]] = field(default_factory=dict)


@dataclass
class PlacementPlan:
    """Full placement result: initial placement plus one plan per Rydberg stage."""

    initial: dict[int, StorageTrap]
    stages: list[StagePlan] = field(default_factory=list)

    @property
    def num_movements(self) -> int:
        return sum(len(s.incoming) + len(s.outgoing) for s in self.stages)

    @property
    def num_reuses(self) -> int:
        return sum(len(s.reused_qubits) for s in self.stages)
