"""Configuration of the ZAC compiler.

The flags mirror the paper's ablation study (Fig. 11):

* ``Vanilla``          -- trivial initial placement, static qubit placement,
                          no reuse;
* ``dynPlace``         -- dynamic (per-stage) qubit placement, no reuse;
* ``dynPlace+reuse``   -- dynamic placement with reuse-aware placement;
* ``SA+dynPlace+reuse``-- adds simulated-annealing initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ZACConfig:
    """Tunable parameters of the ZAC compiler.

    Attributes:
        use_sa_initial_placement: Run simulated annealing on the initial
            storage placement (otherwise the trivial sequential placement is
            used).
        dynamic_placement: Re-optimise qubit storage locations between
            Rydberg stages.  When False, every qubit always returns to its
            home trap ("Vanilla").
        use_reuse: Keep qubits needed by the next Rydberg stage in the
            entanglement zone (reuse-aware placement).
        sa_iterations: Iteration limit of the simulated-annealing search.
        sa_initial_temperature: Starting temperature of the annealer.
        sa_cooling: Geometric cooling factor per iteration.
        lookahead_alpha: Weight of the related-qubit lookahead term in the
            storage-return cost (Eq. 3).
        neighbor_k: ``k`` for the k-neighbouring candidate storage traps.
        candidate_expansion: Expansion factor ``delta`` (in sites) of the
            candidate Rydberg-site window used during gate placement.
        seed: PRNG seed for the annealer (determinism in tests).
        use_fast_paths: Use the optimised hot paths: the vectorized placement
            engine (price-table SA cost, batched gate-candidate and
            return-trap scoring), the vectorized conflict graph, and
            heap-based job partitioning.  Set to False to run the retained
            naive reference implementations, which exist for equivalence
            testing and compile-speed regression benchmarking.  The batched
            matching scorers are bit-identical to their scalar references;
            the SA annealer additionally has a scalar delta twin
            (``sa_placement(..., cost_mode="scalar")``) that reproduces the
            fast trajectory bit-for-bit.
        incremental: Enable prefix-reuse compilation
            (:mod:`repro.core.incremental`).  Compiles populate the
            process-wide :class:`~repro.core.incremental.PrefixCache`, and a
            circuit whose gate list extends a cached circuit's skips the SA
            initial placement (inheriting the ancestor's) and resumes
            dynamic placement, routing, and scheduling from the shared
            prefix boundary -- an O(delta) recompile for depth ladders and
            iterative workloads.  Equivalence contract: the incremental
            result is bit-identical to a from-scratch compile that starts
            from the same initial placement (for the non-SA ablation
            presets that *is* the plain from-scratch compile).
        warm_start: When no cached circuit is an exact gate prefix, seed the
            SA annealer with the initial placement of the most
            content-similar cached circuit (longest structural gate-prefix,
            parameters ignored) instead of the trivial placement.  This is
            the VQE/QAOA parameter-sweep case: same circuit structure,
            different angles.  Only affects the SA starting point; the
            annealer still searches and keeps the best state found.
    """

    use_sa_initial_placement: bool = True
    dynamic_placement: bool = True
    use_reuse: bool = True
    sa_iterations: int = 1000
    sa_initial_temperature: float = 2.0
    sa_cooling: float = 0.995
    lookahead_alpha: float = 0.1
    neighbor_k: int = 1
    candidate_expansion: int = 2
    seed: int = 0
    use_fast_paths: bool = True
    incremental: bool = False
    warm_start: bool = False

    @staticmethod
    def vanilla() -> "ZACConfig":
        """Trivial placement, no dynamic placement, no reuse."""
        return ZACConfig(
            use_sa_initial_placement=False, dynamic_placement=False, use_reuse=False
        )

    @staticmethod
    def dyn_place() -> "ZACConfig":
        """Dynamic placement only."""
        return ZACConfig(
            use_sa_initial_placement=False, dynamic_placement=True, use_reuse=False
        )

    @staticmethod
    def dyn_place_reuse() -> "ZACConfig":
        """Dynamic placement with qubit reuse."""
        return ZACConfig(
            use_sa_initial_placement=False, dynamic_placement=True, use_reuse=True
        )

    @staticmethod
    def full() -> "ZACConfig":
        """The complete ZAC pipeline (SA + dynamic placement + reuse)."""
        return ZACConfig()

    @property
    def label(self) -> str:
        """Short label matching the paper's ablation legend."""
        if not self.dynamic_placement:
            return "Vanilla"
        if not self.use_reuse:
            return "dynPlace"
        if not self.use_sa_initial_placement:
            return "dynPlace+reuse"
        return "SA+dynPlace+reuse"
