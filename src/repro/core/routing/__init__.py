"""Rearrangement-job routing: movement compatibility and MIS-based job grouping."""

from .conflicts import conflict_graph, movements_compatible
from .jobs import build_jobs, movements_to_job, partition_movements

__all__ = [
    "build_jobs",
    "conflict_graph",
    "movements_compatible",
    "movements_to_job",
    "partition_movements",
]
