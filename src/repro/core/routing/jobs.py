"""Rearrangement-job generation (paper Section VI).

The qubit movements of one epoch (either "into the entanglement zone" or
"back to storage") cannot always share a single AOD because of the ordering
constraints.  Following Enola's strategy, the movements are partitioned by
repeatedly extracting a maximal independent set of the conflict graph: each
extracted set becomes one rearrangement job.
"""

from __future__ import annotations

from ...arch.spec import Architecture
from ...zair.instructions import RearrangeJob
from ...zair.lowering import lower_job
from ..model import Movement, location_qloc
from .conflicts import conflict_graph


def partition_movements(
    architecture: Architecture, movements: list[Movement]
) -> list[list[Movement]]:
    """Split an epoch's movements into groups executable by a single AOD each.

    Uses greedy maximal-independent-set peeling on the conflict graph
    (minimum-remaining-degree first), which empirically yields a near-minimal
    number of jobs for the grid-structured movements produced by placement.
    """
    if not movements:
        return []
    adjacency = conflict_graph(architecture, movements)
    remaining = set(range(len(movements)))
    groups: list[list[Movement]] = []
    while remaining:
        # Greedy MIS on the subgraph induced by the remaining movements.
        degrees = {i: len(adjacency[i] & remaining) for i in remaining}
        available = set(remaining)
        selected: list[int] = []
        while available:
            node = min(available, key=lambda i: (degrees[i], i))
            selected.append(node)
            blocked = adjacency[node] & available
            available.discard(node)
            available -= blocked
        groups.append([movements[i] for i in sorted(selected)])
        remaining -= set(selected)
    return groups


def movements_to_job(
    architecture: Architecture,
    movements: list[Movement],
    aod_id: int = 0,
    lower: bool = True,
) -> RearrangeJob:
    """Build a ZAIR rearrangement job from a compatible movement group."""
    begin_locs = [location_qloc(architecture, m.qubit, m.source) for m in movements]
    end_locs = [location_qloc(architecture, m.qubit, m.destination) for m in movements]
    job = RearrangeJob(aod_id=aod_id, begin_locs=begin_locs, end_locs=end_locs)
    if lower:
        job.insts = lower_job(architecture, job)
    return job


def build_jobs(
    architecture: Architecture,
    movements: list[Movement],
    lower: bool = True,
) -> list[RearrangeJob]:
    """Partition an epoch's movements and build one job per group."""
    groups = partition_movements(architecture, movements)
    return [movements_to_job(architecture, group, lower=lower) for group in groups]
