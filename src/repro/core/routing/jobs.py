"""Rearrangement-job generation (paper Section VI).

The qubit movements of one epoch (either "into the entanglement zone" or
"back to storage") cannot always share a single AOD because of the ordering
constraints.  Following Enola's strategy, the movements are partitioned by
repeatedly extracting a maximal independent set of the conflict graph: each
extracted set becomes one rearrangement job.
"""

from __future__ import annotations

import heapq

from ...arch.spec import Architecture
from ...zair.instructions import RearrangeJob
from ...zair.lowering import lower_job
from ..model import Movement, location_qloc
from .conflicts import conflict_graph, conflict_graph_naive


def _mis_partition(adjacency: list[set[int]]) -> list[list[int]]:
    """Partition node indices into independent sets by greedy MIS peeling.

    Every round extracts one maximal independent set, selecting nodes in
    ascending (degree-within-remaining, index) order -- the index tie-break
    makes the partition deterministic across Python runs.  Degrees are
    maintained incrementally across rounds (each removed node decrements its
    surviving neighbours) and a per-round heap replaces the naive
    re-scan-the-minimum selection, so a round costs O(V log V + E) instead
    of O(V^2).
    """
    remaining = set(range(len(adjacency)))
    degree = [len(neighbours) for neighbours in adjacency]
    groups: list[list[int]] = []
    while remaining:
        heap = [(degree[node], node) for node in remaining]
        heapq.heapify(heap)
        available = set(remaining)
        selected: list[int] = []
        while heap:
            _, node = heapq.heappop(heap)
            if node not in available:
                continue
            selected.append(node)
            available.discard(node)
            available -= adjacency[node]
        groups.append(selected)
        remaining.difference_update(selected)
        for node in selected:
            for neighbour in adjacency[node]:
                if neighbour in remaining:
                    degree[neighbour] -= 1
    return groups


def partition_movements(
    architecture: Architecture, movements: list[Movement], fast: bool = True
) -> list[list[Movement]]:
    """Split an epoch's movements into groups executable by a single AOD each.

    Uses greedy maximal-independent-set peeling on the conflict graph
    (minimum-remaining-degree first, index tie-break), which empirically
    yields a near-minimal number of jobs for the grid-structured movements
    produced by placement.

    Args:
        architecture: Target architecture.
        movements: The epoch's movements.
        fast: Use the vectorized conflict graph and heap-based peeling.
            When False, the naive reference implementations are used (for
            equivalence tests and regression benchmarking); both modes
            produce identical partitions.
    """
    if not movements:
        return []
    if fast:
        adjacency = conflict_graph(architecture, movements)
        groups = _mis_partition(adjacency)
    else:
        adjacency = conflict_graph_naive(architecture, movements)
        groups = _mis_partition_naive(adjacency)
    return [[movements[i] for i in sorted(group)] for group in groups]


def _mis_partition_naive(adjacency: list[set[int]]) -> list[list[int]]:
    """Reference MIS peeling: per-round degree recomputation and min-scans."""
    remaining = set(range(len(adjacency)))
    groups: list[list[int]] = []
    while remaining:
        degrees = {i: len(adjacency[i] & remaining) for i in remaining}
        available = set(remaining)
        selected: list[int] = []
        while available:
            node = min(available, key=lambda i: (degrees[i], i))
            selected.append(node)
            available.discard(node)
            available -= adjacency[node] & available
        groups.append(selected)
        remaining -= set(selected)
    return groups


def partition_movements_staged(
    architecture: Architecture, movements: list[Movement], fast: bool = True
) -> list[list[Movement]]:
    """Partition an epoch into AOD-compatible groups, respecting planning order.

    The movement-based baselines plan their epochs sequentially: each
    movement's target trap is free *at its planning time*, possibly because
    an earlier movement of the same epoch vacates it, and one qubit may move
    more than once (a blocker is parked, then later enters its own gate
    site).  A partition that reorders movements across groups (as the MIS
    peeling of :func:`partition_movements` may) can therefore produce groups
    with cyclic trap dependencies that no sequential replay satisfies.

    Here the groups are *consecutive runs* of the planning order instead: a
    group closes when the next movement conflicts with a member under the
    AOD ordering constraints, or when it moves a qubit the group already
    moves (a batch picks everything up before dropping anything off, so a
    chained movement cannot share the batch of its predecessor).  Because
    the concatenated groups preserve planning order exactly, replaying them
    in emission order is always occupancy-feasible.
    """
    if not movements:
        return []
    adjacency = (
        conflict_graph(architecture, movements)
        if fast
        else conflict_graph_naive(architecture, movements)
    )
    groups: list[list[Movement]] = []
    current: list[int] = []
    current_qubits: set[int] = set()
    for index, movement in enumerate(movements):
        if movement.qubit in current_qubits or any(
            member in adjacency[index] for member in current
        ):
            groups.append([movements[member] for member in current])
            current = []
            current_qubits = set()
        current.append(index)
        current_qubits.add(movement.qubit)
    if current:
        groups.append([movements[member] for member in current])
    return groups


def movements_to_job(
    architecture: Architecture,
    movements: list[Movement],
    aod_id: int = 0,
    lower: bool = True,
) -> RearrangeJob:
    """Build a ZAIR rearrangement job from a compatible movement group."""
    begin_locs = [location_qloc(architecture, m.qubit, m.source) for m in movements]
    end_locs = [location_qloc(architecture, m.qubit, m.destination) for m in movements]
    job = RearrangeJob(aod_id=aod_id, begin_locs=begin_locs, end_locs=end_locs)
    if lower:
        job.insts = lower_job(architecture, job)
    return job


def build_jobs(
    architecture: Architecture,
    movements: list[Movement],
    lower: bool = True,
    fast: bool = True,
) -> list[RearrangeJob]:
    """Partition an epoch's movements and build one job per group."""
    groups = partition_movements(architecture, movements, fast=fast)
    return [movements_to_job(architecture, group, lower=lower) for group in groups]
