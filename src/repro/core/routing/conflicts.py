"""Movement compatibility under the AOD ordering constraints.

All qubits moved by one rearrangement job are held by a single AOD, whose
rows and columns cannot cross each other during a move.  Two movements are
*compatible* (can share a job) when, on both axes, their source ordering is
preserved at the destination -- and when sources that coincide on an axis
(same AOD row or column) also coincide at the destination.
"""

from __future__ import annotations

from ...arch.spec import Architecture
from ..model import Movement, location_position

#: Coordinate tolerance (um) when comparing trap positions.
_TOL = 1e-6


def movements_compatible(
    architecture: Architecture, first: Movement, second: Movement
) -> bool:
    """Whether two movements can be executed by the same AOD simultaneously."""
    b1 = location_position(architecture, first.source)
    e1 = location_position(architecture, first.destination)
    b2 = location_position(architecture, second.source)
    e2 = location_position(architecture, second.destination)
    for axis in (0, 1):
        begin_delta = b1[axis] - b2[axis]
        end_delta = e1[axis] - e2[axis]
        if abs(begin_delta) <= _TOL:
            if abs(end_delta) > _TOL:
                return False
        elif abs(end_delta) <= _TOL:
            return False
        elif begin_delta * end_delta < 0:
            return False
    return True


def conflict_graph(
    architecture: Architecture, movements: list[Movement]
) -> list[set[int]]:
    """Adjacency sets of the conflict graph over ``movements`` (by index)."""
    n = len(movements)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if not movements_compatible(architecture, movements[i], movements[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency
