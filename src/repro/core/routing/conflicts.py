"""Movement compatibility under the AOD ordering constraints.

All qubits moved by one rearrangement job are held by a single AOD, whose
rows and columns cannot cross each other during a move.  Two movements are
*compatible* (can share a job) when, on both axes, their source ordering is
preserved at the destination -- and when sources that coincide on an axis
(same AOD row or column) also coincide at the destination.

:func:`conflict_graph` extracts each movement's begin/end coordinates once
and evaluates every pairwise ordering check as a vectorized array operation,
instead of the naive all-pairs loop with four position lookups per pair
(retained as :func:`conflict_graph_naive` for equivalence tests and
regression benchmarking).
"""

from __future__ import annotations

import numpy as np

from ...arch.spec import Architecture
from ..model import Movement, location_position

#: Coordinate tolerance (um) when comparing trap positions.
_TOL = 1e-6


def movements_compatible(
    architecture: Architecture, first: Movement, second: Movement
) -> bool:
    """Whether two movements can be executed by the same AOD simultaneously."""
    b1 = location_position(architecture, first.source)
    e1 = location_position(architecture, first.destination)
    b2 = location_position(architecture, second.source)
    e2 = location_position(architecture, second.destination)
    for axis in (0, 1):
        begin_delta = b1[axis] - b2[axis]
        end_delta = e1[axis] - e2[axis]
        if abs(begin_delta) <= _TOL:
            if abs(end_delta) > _TOL:
                return False
        elif abs(end_delta) <= _TOL:
            return False
        elif begin_delta * end_delta < 0:
            return False
    return True


def movement_endpoints(
    architecture: Architecture, movements: list[Movement]
) -> tuple[np.ndarray, np.ndarray]:
    """(n, 2) begin and end coordinate arrays, one position lookup per movement."""
    begins = np.empty((len(movements), 2))
    ends = np.empty((len(movements), 2))
    for index, movement in enumerate(movements):
        begins[index] = location_position(architecture, movement.source)
        ends[index] = location_position(architecture, movement.destination)
    return begins, ends


def conflict_graph(
    architecture: Architecture, movements: list[Movement]
) -> list[set[int]]:
    """Adjacency sets of the conflict graph over ``movements`` (by index).

    Evaluates the same per-axis predicate as :func:`movements_compatible`
    on broadcast coordinate arrays: two movements conflict when, on either
    axis, they coincide at the source but not the destination (a row/column
    would have to split), coincide at the destination but not the source
    (a merge), or swap their ordering (a crossing).
    """
    n = len(movements)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    if n <= 1:
        return adjacency
    begins, ends = movement_endpoints(architecture, movements)
    conflict = np.zeros((n, n), dtype=bool)
    for axis in (0, 1):
        begin_delta = begins[:, axis, None] - begins[None, :, axis]
        end_delta = ends[:, axis, None] - ends[None, :, axis]
        same_begin = np.abs(begin_delta) <= _TOL
        same_end = np.abs(end_delta) <= _TOL
        conflict |= same_begin ^ same_end
        conflict |= ~same_begin & ~same_end & (begin_delta * end_delta < 0)
    rows, cols = np.nonzero(np.triu(conflict, k=1))
    for i, j in zip(rows.tolist(), cols.tolist()):
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency


def conflict_graph_naive(
    architecture: Architecture, movements: list[Movement]
) -> list[set[int]]:
    """All-pairs reference implementation of :func:`conflict_graph`."""
    n = len(movements)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if not movements_compatible(architecture, movements[i], movements[j]):
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency
