"""The ZAC compiler as an explicit pass pipeline.

The end-to-end compilation (preprocess -> place -> route -> schedule ->
fidelity) is expressed as :class:`Pass` objects sharing one
:class:`PassContext`.  :func:`default_pipeline` composes the standard
pipeline for a :class:`~repro.core.config.ZACConfig`; the ablation presets
(``ZACConfig.vanilla()`` etc.) differ only in which pass variants are
composed.  Custom passes can be injected with
:meth:`PassPipeline.with_pass` / :meth:`PassPipeline.replace` to open new
scenarios without touching the compiler core.

The pipeline records per-pass wall-clock time into
``ExecutionMetrics.phase_times_s`` (the ``time_<phase>_s`` columns of
:meth:`repro.core.result.CompileResult.summary`), and it supports pre/post
hooks -- callables ``hook(pass_obj, ctx)`` invoked around every pass -- for
tracing, debugging, and test instrumentation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..arch.spec import Architecture
from ..circuits.circuit import QuantumCircuit
from ..circuits.scheduling import StagedCircuit, preprocess, split_oversized_stages
from ..fidelity.model import ExecutionMetrics, FidelityBreakdown, estimate_fidelity
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ..zair.program import ZAIRProgram
from .config import ZACConfig
from .model import PlacementPlan
from .placement.dynamic import DynamicPlacer
from .placement.initial import sa_placement, trivial_placement
from .routing.jobs import build_jobs
from .scheduling.scheduler import Scheduler


class PipelineError(RuntimeError):
    """A pass ran before the context state it depends on was produced."""


@dataclass
class PassContext:
    """Mutable state threaded through the passes of one compilation.

    The standard passes populate the fields top to bottom; custom passes may
    stash extra state in :attr:`data`.
    """

    architecture: Architecture
    config: ZACConfig
    params: NeutralAtomParams = NEUTRAL_ATOM
    lower_jobs: bool = True
    circuit: QuantumCircuit | None = None
    circuit_name: str | None = None
    staged: StagedCircuit | None = None
    stage_pairs: list[list[tuple[int, int]]] | None = None
    initial: dict[int, Any] | None = None
    plan: PlacementPlan | None = None
    routed_jobs: dict[tuple[int, str], list] | None = None
    program: ZAIRProgram | None = None
    metrics: ExecutionMetrics | None = None
    fidelity: FidelityBreakdown | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def require(self, *names: str) -> None:
        """Raise :class:`PipelineError` if any named field is still unset."""
        missing = [name for name in names if getattr(self, name) is None]
        if missing:
            raise PipelineError(
                f"pass prerequisites missing from context: {', '.join(missing)} "
                "(did an earlier pass get removed from the pipeline?)"
            )


class Pass:
    """One stage of the compilation pipeline.

    Subclasses set :attr:`name` (the key used for per-pass timing in
    ``phase_times_s`` and for :meth:`PassPipeline.replace`) and implement
    :meth:`run`, mutating the shared context in place.
    """

    name: str = "pass"

    def run(self, ctx: PassContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class PreprocessPass(Pass):
    """Resynthesis + ASAP staging, capacity check, oversized-stage splitting."""

    name = "preprocess"

    def run(self, ctx: PassContext) -> None:
        if ctx.staged is None:
            ctx.require("circuit")
            ctx.staged = preprocess(ctx.circuit, incremental=ctx.config.incremental)
        if ctx.circuit_name is None:
            ctx.circuit_name = ctx.staged.name
        if ctx.staged.num_qubits > ctx.architecture.num_storage_traps:
            raise ValueError(
                f"circuit needs {ctx.staged.num_qubits} storage traps but the "
                f"architecture has only {ctx.architecture.num_storage_traps}"
            )
        ctx.staged = split_oversized_stages(ctx.staged, ctx.architecture.num_rydberg_sites)
        ctx.stage_pairs = [stage.pairs for stage in ctx.staged.rydberg_stages]


class PlacePass(Pass):
    """Initial placement (SA or trivial) followed by dynamic placement.

    Incremental hooks: when ``ctx.initial`` is already set (a prefix-cache
    resume hit injected the ancestor's placement) the initial-placement
    strategy is skipped entirely; ``ctx.data["prefix_plans"]`` resumes the
    dynamic placer mid-circuit; ``ctx.data["warm_start_placement"]`` seeds
    the SA annealer.  The annealing statistics land in
    ``ctx.data["sa_result"]`` for the kernel-level benchmarks.
    """

    name = "place"

    def __init__(self, initial: str = "sa") -> None:
        if initial not in ("sa", "trivial"):
            raise ValueError(f"unknown initial-placement strategy {initial!r}")
        self.initial = initial

    def run(self, ctx: PassContext) -> None:
        ctx.require("staged", "stage_pairs")
        if ctx.initial is None:
            if self.initial == "sa":
                ctx.initial = sa_placement(
                    ctx.architecture,
                    ctx.staged.num_qubits,
                    ctx.stage_pairs,
                    config=ctx.config,
                    on_result=lambda result: ctx.data.__setitem__("sa_result", result),
                    warm_start=ctx.data.get("warm_start_placement"),
                )
            else:
                ctx.initial = trivial_placement(ctx.architecture, ctx.staged.num_qubits)
        placer = DynamicPlacer(ctx.architecture, ctx.config)
        ctx.plan = placer.run(
            ctx.stage_pairs, ctx.initial, prefix_plans=ctx.data.get("prefix_plans")
        )


class RoutePass(Pass):
    """Build the rearrangement jobs for every movement epoch of the plan.

    Jobs are keyed by ``(rydberg_stage_index, "in"|"out")`` and consumed by
    the scheduler, which only has to time and emit them.  Epochs of stages
    below ``ctx.data["route_prefix_stages"]`` are adopted from the prefix
    cache (``ctx.data["route_prefix_jobs"]``) instead of being rebuilt; the
    adopted plans are identical, so the jobs are too.
    """

    name = "route"

    def run(self, ctx: PassContext) -> None:
        ctx.require("plan")
        jobs: dict[tuple[int, str], list] = {}
        start = 0
        prefix_jobs = ctx.data.get("route_prefix_jobs")
        if prefix_jobs is not None:
            jobs.update(prefix_jobs)
            start = ctx.data.get("route_prefix_stages", 0)
        for index, stage_plan in enumerate(ctx.plan.stages):
            if index < start:
                continue
            for direction, movements in (
                ("in", stage_plan.incoming),
                ("out", stage_plan.outgoing),
            ):
                if movements:
                    jobs[(index, direction)] = build_jobs(
                        ctx.architecture,
                        movements,
                        lower=ctx.lower_jobs,
                        fast=ctx.config.use_fast_paths,
                    )
        ctx.routed_jobs = jobs


class SchedulePass(Pass):
    """Time the routed jobs and emit the ZAIR program + execution metrics."""

    name = "schedule"

    def run(self, ctx: PassContext) -> None:
        ctx.require("staged", "plan")
        scheduler = Scheduler(
            ctx.architecture,
            ctx.params,
            lower_jobs=ctx.lower_jobs,
            fast_routing=ctx.config.use_fast_paths,
        )
        output = scheduler.run(ctx.staged, ctx.plan, prebuilt_jobs=ctx.routed_jobs)
        ctx.program = output.program
        ctx.metrics = output.metrics


class FidelityPass(Pass):
    """Derive the canonical metrics + fidelity from the compiled program.

    By default the emitted ZAIR program is replayed through the shared
    interpreter (:func:`repro.zair.interpret.interpret_program`), making the
    instruction stream -- not the scheduler's internal accounting -- the
    source of the reported numbers.  The scheduler's own accumulation is
    kept in ``ctx.data["scheduler_metrics"]`` as the conformance oracle;
    ``FidelityPass(interpret=False)`` restores the legacy behaviour of
    reporting it directly.
    """

    name = "fidelity"

    def __init__(self, interpret: bool = True) -> None:
        self.interpret = interpret

    def run(self, ctx: PassContext) -> None:
        ctx.require("metrics")
        if self.interpret and ctx.program is not None:
            from ..zair.interpret import interpret_program

            scheduler_metrics = ctx.metrics
            ctx.data["scheduler_metrics"] = scheduler_metrics
            replay = interpret_program(
                ctx.program,
                architecture=ctx.architecture,
                params=ctx.params,
                vectorized=ctx.config.use_fast_paths,
            )
            # Wall-clock instrumentation is not derivable from the program;
            # carry it over from the scheduler's accounting.
            replay.metrics.compile_time_s = scheduler_metrics.compile_time_s
            replay.metrics.phase_times_s = dict(scheduler_metrics.phase_times_s)
            ctx.metrics = replay.metrics
            ctx.fidelity = replay.fidelity
            return
        ctx.fidelity = estimate_fidelity(
            ctx.metrics, ctx.params, vectorized=ctx.config.use_fast_paths
        )


#: Signature of pipeline hooks: called as ``hook(pass_obj, ctx)``.
Hook = Callable[[Pass, PassContext], None]


class PassPipeline:
    """An ordered list of passes with pre/post hooks and per-pass timing."""

    def __init__(
        self,
        passes: Sequence[Pass],
        pre_hooks: Iterable[Hook] = (),
        post_hooks: Iterable[Hook] = (),
    ) -> None:
        self.passes = list(passes)
        self.pre_hooks = list(pre_hooks)
        self.post_hooks = list(post_hooks)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.passes]

    def add_pre_hook(self, hook: Hook) -> "PassPipeline":
        self.pre_hooks.append(hook)
        return self

    def add_post_hook(self, hook: Hook) -> "PassPipeline":
        self.post_hooks.append(hook)
        return self

    def _index_of(self, name: str) -> int:
        for index, p in enumerate(self.passes):
            if p.name == name:
                return index
        raise KeyError(f"no pass named {name!r} in pipeline {self.names}")

    def replace(self, name: str, new_pass: Pass) -> "PassPipeline":
        """Return a new pipeline with the named pass swapped out."""
        passes = list(self.passes)
        passes[self._index_of(name)] = new_pass
        return PassPipeline(passes, self.pre_hooks, self.post_hooks)

    def with_pass(
        self, new_pass: Pass, *, before: str | None = None, after: str | None = None
    ) -> "PassPipeline":
        """Return a new pipeline with an extra pass inserted (default: append)."""
        if before is not None and after is not None:
            raise ValueError("pass either before= or after=, not both")
        passes = list(self.passes)
        if before is not None:
            passes.insert(self._index_of(before), new_pass)
        elif after is not None:
            passes.insert(self._index_of(after) + 1, new_pass)
        else:
            passes.append(new_pass)
        return PassPipeline(passes, self.pre_hooks, self.post_hooks)

    def run(self, ctx: PassContext) -> PassContext:
        """Run every pass in order, timing each one (hooks excluded)."""
        timings: dict[str, float] = {}
        for pass_obj in self.passes:
            for hook in self.pre_hooks:
                hook(pass_obj, ctx)
            start = time.perf_counter()
            pass_obj.run(ctx)
            elapsed = time.perf_counter() - start
            timings[pass_obj.name] = timings.get(pass_obj.name, 0.0) + elapsed
            for hook in self.post_hooks:
                hook(pass_obj, ctx)
        if ctx.metrics is not None:
            # Pipeline-level timings supersede any internal attribution (the
            # scheduler's own route/schedule split) under the same keys.
            ctx.metrics.phase_times_s.update(timings)
        return ctx


def default_pipeline(config: ZACConfig | None = None) -> PassPipeline:
    """The standard ZAC pipeline for a configuration.

    The ablation presets are pipeline compositions: ``vanilla()`` /
    ``dyn_place()`` / ``dyn_place_reuse()`` compose the trivial initial
    placement, ``full()`` the simulated-annealing one (dynamic placement and
    reuse stay config switches consumed by the shared placement engine).
    """
    config = config or ZACConfig()
    initial = "sa" if config.use_sa_initial_placement else "trivial"
    pipeline = PassPipeline(
        [
            PreprocessPass(),
            PlacePass(initial=initial),
            RoutePass(),
            SchedulePass(),
            FidelityPass(),
        ]
    )
    if config.incremental or config.warm_start:
        # Imported here: core.incremental subclasses Pass from this module.
        from .incremental import PrefixLookupPass, PrefixStorePass

        pipeline = pipeline.with_pass(
            PrefixLookupPass(), after="preprocess"
        ).with_pass(PrefixStorePass(), after="schedule")
    return pipeline
