"""Gate placement onto Rydberg sites (paper Section V-B.2).

Gates that do not reuse a qubit are assigned to free Rydberg sites by a
minimum-weight full matching on a bipartite graph between gates and candidate
sites.  The candidate sites of a gate are a window (expansion factor
``delta``) around the gate's nearest Rydberg site; the window is grown until
a full matching exists.  Edge weights are the movement cost of Eq. 1, plus a
lookahead term for the partner qubit of a gate that will be reused in the
following stage.

Two cost-matrix builders are provided.  The batched default scores every
candidate site of every gate in one vectorized distance computation over the
flat site arrays of :mod:`.geom`; the scalar reference (``fast=False``)
iterates sites one by one.  Both fill *the same matrix bitwise* -- the
distance decomposition of :mod:`.cost` is numpy/scalar bit-stable and the
site (column) order is the flat ``iter_rydberg_sites`` order in both -- so
the assignment, and therefore every emitted stage plan, is identical.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...arch.spec import Architecture, RydbergSite
from .cost import ROW_TOL, gate_cost, nearest_gate_site, sqrt_distance
from .geom import site_tables

Point = tuple[float, float]

#: Cost assigned to (gate, site) pairs outside the candidate window.
_FORBIDDEN = 1e9


class GatePlacementError(RuntimeError):
    """Raised when gates cannot all be assigned to free Rydberg sites."""


def candidate_sites(
    architecture: Architecture,
    gate_site: RydbergSite,
    expansion: int,
) -> list[RydbergSite]:
    """Sites within ``expansion`` rows/columns of ``gate_site`` (same zone)."""
    rows, cols = architecture.site_shape(gate_site.zone_index)
    out: list[RydbergSite] = []
    for row in range(max(0, gate_site.row - expansion), min(rows, gate_site.row + expansion + 1)):
        for col in range(max(0, gate_site.col - expansion), min(cols, gate_site.col + expansion + 1)):
            out.append(RydbergSite(gate_site.zone_index, row, col))
    return out


def _pair_cost(
    architecture: Architecture,
    gate: tuple[int, int],
    site: RydbergSite,
    positions: dict[int, Point],
    lookahead_qubit: int | None,
) -> float:
    site_pos = architecture.site_position(site)
    cost = gate_cost(site_pos, positions[gate[0]], positions[gate[1]])
    if lookahead_qubit is not None and lookahead_qubit in positions:
        cost += sqrt_distance(site_pos, positions[lookahead_qubit])
    return cost


def _lookahead_partner(
    gate: tuple[int, int], next_stage_gates: list[tuple[int, int]] | None
) -> int | None:
    """The qubit that will travel to this gate's site in the next stage, if any."""
    if not next_stage_gates:
        return None
    for nxt in next_stage_gates:
        shared = [q for q in gate if q in nxt]
        if shared:
            others = [q for q in nxt if q not in gate]
            return others[0] if others else None
    return None


def place_gates(
    architecture: Architecture,
    gates: list[tuple[int, int]],
    positions: dict[int, Point],
    occupied_sites: set[RydbergSite],
    next_stage_gates: list[tuple[int, int]] | None = None,
    expansion: int = 2,
    fast: bool = True,
) -> tuple[list[RydbergSite], float]:
    """Assign every gate to a distinct free Rydberg site, minimising total cost.

    Args:
        architecture: Target architecture.
        gates: Qubit pairs to place.
        positions: Current physical position of every qubit.
        occupied_sites: Sites unavailable to this matching (e.g. kept by
            reused qubits).
        next_stage_gates: Gates of the following Rydberg stage, used for the
            lookahead cost term.
        expansion: Initial candidate-window half-width ``delta``.
        fast: Use the batched cost-matrix builder (bit-identical results to
            the scalar reference, which ``fast=False`` selects).

    Returns:
        ``(sites, total_cost)`` where ``sites[i]`` is the Rydberg site of
        ``gates[i]``.

    Raises:
        GatePlacementError: if the architecture has fewer free sites than gates.
    """
    if not gates:
        return [], 0.0

    if fast:
        return _place_gates_fast(
            architecture, gates, positions, occupied_sites, next_stage_gates, expansion
        )

    free_sites = [s for s in architecture.iter_rydberg_sites() if s not in occupied_sites]
    if len(free_sites) < len(gates):
        raise GatePlacementError(
            f"{len(gates)} gates do not fit into {len(free_sites)} free Rydberg sites"
        )

    nearest = [
        nearest_gate_site(architecture, positions[q], positions[q2]) for q, q2 in gates
    ]
    lookahead = [_lookahead_partner(gate, next_stage_gates) for gate in gates]

    current_expansion = expansion
    while True:
        assignment = _try_match(
            architecture, gates, nearest, lookahead, positions, free_sites, current_expansion
        )
        if assignment is not None:
            return assignment
        if current_expansion >= _max_expansion(architecture):
            # Final fallback: every free site is a candidate for every gate.
            assignment = _try_match(
                architecture, gates, nearest, lookahead, positions, free_sites, None
            )
            if assignment is None:
                raise GatePlacementError("no feasible gate-to-site matching found")
            return assignment
        current_expansion *= 2


def _max_expansion(architecture: Architecture) -> int:
    max_rows = max(
        architecture.site_shape(z)[0] for z in range(len(architecture.entanglement_zones))
    )
    max_cols = max(
        architecture.site_shape(z)[1] for z in range(len(architecture.entanglement_zones))
    )
    return max(max_rows, max_cols)


def _place_gates_fast(
    architecture: Architecture,
    gates: list[tuple[int, int]],
    positions: dict[int, Point],
    occupied_sites: set[RydbergSite],
    next_stage_gates: list[tuple[int, int]] | None,
    expansion: int,
) -> tuple[list[RydbergSite], float]:
    tables = site_tables(architecture)
    free_mask = np.ones(tables.num_sites, dtype=bool)
    for site in occupied_sites:
        free_mask[tables.flat_index(site)] = False
    free = np.flatnonzero(free_mask)
    if free.size < len(gates):
        raise GatePlacementError(
            f"{len(gates)} gates do not fit into {free.size} free Rydberg sites"
        )

    nearest = [
        nearest_gate_site(architecture, positions[q], positions[q2]) for q, q2 in gates
    ]
    lookahead = [_lookahead_partner(gate, next_stage_gates) for gate in gates]

    current_expansion: int | None = expansion
    while True:
        assignment = _try_match_fast(
            tables, gates, nearest, lookahead, positions, free, current_expansion
        )
        if assignment is not None:
            return assignment
        if current_expansion is None:
            raise GatePlacementError("no feasible gate-to-site matching found")
        if current_expansion >= _max_expansion(architecture):
            # Final fallback: every free site is a candidate for every gate.
            current_expansion = None
        else:
            current_expansion *= 2


def _try_match_fast(
    tables,
    gates: list[tuple[int, int]],
    nearest: list[RydbergSite],
    lookahead: list[int | None],
    positions: dict[int, Point],
    free: np.ndarray,
    expansion: int | None,
) -> tuple[list[RydbergSite], float] | None:
    """Batched cost-matrix build: one vectorized scoring pass per gate row.

    Column order is ``free`` in ascending flat-site order -- exactly the
    order the scalar reference enumerates ``free_sites`` -- and every filled
    cell is computed with the bit-stable decomposed distance, so the matrix,
    the assignment, and the total are identical to the reference's.
    """
    free_zone = tables.zone[free]
    free_row = tables.row[free]
    free_col = tables.col[free]
    free_x = tables.x[free]
    free_y = tables.y[free]

    num_gates = len(gates)
    cost = np.full((num_gates, free.size), _FORBIDDEN, dtype=np.float64)

    for i, (q, q2) in enumerate(gates):
        qx, qy = positions[q]
        q2x, q2y = positions[q2]
        dx = free_x - qx
        dy = free_y - qy
        cost_q = np.sqrt(np.sqrt(dx * dx + dy * dy))
        dx2 = free_x - q2x
        dy2 = free_y - q2y
        cost_q2 = np.sqrt(np.sqrt(dx2 * dx2 + dy2 * dy2))
        if abs(qy - q2y) <= ROW_TOL:
            row_cost = np.maximum(cost_q, cost_q2)
        else:
            row_cost = cost_q + cost_q2
        la = lookahead[i]
        if la is not None and la in positions:
            lx, ly = positions[la]
            dxl = free_x - lx
            dyl = free_y - ly
            row_cost = row_cost + np.sqrt(np.sqrt(dxl * dxl + dyl * dyl))
        if expansion is None:
            cost[i] = row_cost
            continue
        site = nearest[i]
        window = (
            (free_zone == site.zone_index)
            & (np.abs(free_row - site.row) <= expansion)
            & (np.abs(free_col - site.col) <= expansion)
        )
        if window.any():
            cost[i, window] = row_cost[window]
        else:
            # No free site inside the window: the reference falls back to
            # every free site for this gate.
            cost[i] = row_cost

    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _FORBIDDEN:
        return None
    return [tables.site_at(int(free[j])) for j in cols], total


def _try_match(
    architecture: Architecture,
    gates: list[tuple[int, int]],
    nearest: list[RydbergSite],
    lookahead: list[int | None],
    positions: dict[int, Point],
    free_sites: list[RydbergSite],
    expansion: int | None,
) -> tuple[list[RydbergSite], float] | None:
    """Scalar reference: min-weight full matching with the given candidate window."""
    free_index = {site: j for j, site in enumerate(free_sites)}
    num_gates, num_sites = len(gates), len(free_sites)
    cost = np.full((num_gates, num_sites), _FORBIDDEN, dtype=float)

    for i, gate in enumerate(gates):
        if expansion is None:
            candidates = free_sites
        else:
            candidates = [
                s for s in candidate_sites(architecture, nearest[i], expansion) if s in free_index
            ]
            if not candidates:
                candidates = free_sites
        for site in candidates:
            cost[i, free_index[site]] = _pair_cost(
                architecture, gate, site, positions, lookahead[i]
            )

    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _FORBIDDEN:
        return None
    return [free_sites[j] for j in cols], total
