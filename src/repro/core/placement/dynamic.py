"""Reuse-aware dynamic placement across Rydberg stages (paper Section V-B).

The :class:`DynamicPlacer` walks the Rydberg stages in order and, for each
stage, decides

1. which Rydberg site every gate executes at (forced by reuse, or chosen by
   minimum-weight matching),
2. which qubits move into the entanglement zone (and to which side of their
   site), and
3. which qubits return to the storage zone afterwards and to which traps --
   comparing a *reuse* and a *no-reuse* solution for the following stage and
   committing to the cheaper one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...arch.spec import Architecture, RydbergSite, StorageTrap
from ..config import ZACConfig
from ..model import (
    LEFT,
    RIGHT,
    GatePlacementEntry,
    Location,
    Movement,
    PlacementPlan,
    StagePlan,
    location_position,
)
from .cost import sqrt_distance
from .gate_placement import place_gates
from .reuse import find_reuse_matching
from .storage_placement import place_returning_qubits

Point = tuple[float, float]


@dataclass
class _ReturnOption:
    """One evaluated return/reuse alternative for the next stage."""

    cost: float
    returning: list[int]
    return_assignment: dict[int, StorageTrap]
    reused_qubits: set[int]
    forced_sites: dict[int, tuple[RydbergSite, int]]


class DynamicPlacer:
    """Stateful per-stage placement engine."""

    def __init__(self, architecture: Architecture, config: ZACConfig | None = None) -> None:
        self.architecture = architecture
        self.config = config or ZACConfig()

    # -- public API ----------------------------------------------------------

    def run(
        self,
        rydberg_stages: list[list[tuple[int, int]]],
        initial: dict[int, StorageTrap],
        prefix_plans: list[StagePlan] | None = None,
    ) -> PlacementPlan:
        """Produce the full placement plan for a staged circuit.

        Args:
            rydberg_stages: Qubit pairs of every Rydberg stage.
            initial: Initial storage placement.
            prefix_plans: Already-computed plans for the leading stages (from
                an incremental prefix-cache hit).  They are adopted verbatim;
                the placer replays their movements to reconstruct its state
                and resumes planning at stage ``len(prefix_plans)``.  The
                caller guarantees the prefix stages (and the one after, which
                the last prefix plan looked ahead into) are identical to the
                cached circuit's.
        """
        self._location: dict[int, Location] = {
            q: Location.at_storage(trap) for q, trap in initial.items()
        }
        self._home: dict[int, StorageTrap] = dict(initial)

        plan = PlacementPlan(initial=dict(initial))
        forced: dict[int, tuple[RydbergSite, int]] = {}

        start_stage = 0
        if prefix_plans:
            plan.stages.extend(prefix_plans)
            start_stage = len(prefix_plans)
            forced = dict(prefix_plans[-1].forced_next)
            self._replay_plans(prefix_plans)

        self._occupied_storage: set[StorageTrap] = set(self._home.values())
        # Position cache maintained incrementally alongside ``_location`` so
        # the per-stage option evaluations don't recompute every coordinate.
        self._pos: dict[int, Point] = {
            q: location_position(self.architecture, loc)
            for q, loc in self._location.items()
        }

        for stage_index in range(start_stage, len(rydberg_stages)):
            gates = rydberg_stages[stage_index]
            next_gates = (
                rydberg_stages[stage_index + 1]
                if stage_index + 1 < len(rydberg_stages)
                else None
            )
            stage_plan, forced = self._place_stage(stage_index, gates, next_gates, forced)
            plan.stages.append(stage_plan)
        return plan

    def _replay_plans(self, plans: list[StagePlan]) -> None:
        """Reconstruct location/home state by replaying cached stage plans.

        Incoming movements park qubits at Rydberg sites; outgoing movements
        return them to (possibly new) storage traps, which also re-homes
        them.  This mirrors exactly the state updates of
        :meth:`_place_stage`, so a resumed run continues from the same state
        a from-scratch run would have reached (``_occupied_storage`` is the
        set of current homes by construction -- see the invariant in
        :meth:`run`).
        """
        for stage_plan in plans:
            for movement in stage_plan.incoming:
                self._location[movement.qubit] = movement.destination
            for movement in stage_plan.outgoing:
                self._location[movement.qubit] = movement.destination
                assert movement.destination.storage is not None
                self._home[movement.qubit] = movement.destination.storage

    # -- per-stage steps ------------------------------------------------------

    def _positions(self) -> dict[int, Point]:
        """Snapshot of the cached qubit positions (copied: callers mutate it)."""
        return dict(self._pos)

    def _move_to(self, qubit: int, location: Location) -> None:
        self._location[qubit] = location
        self._pos[qubit] = location_position(self.architecture, location)

    def _place_stage(
        self,
        stage_index: int,
        gates: list[tuple[int, int]],
        next_gates: list[tuple[int, int]] | None,
        forced: dict[int, tuple[RydbergSite, int]],
    ) -> tuple[StagePlan, dict[int, tuple[RydbergSite, int]]]:
        plan = StagePlan(stage_index=stage_index)
        positions = self._positions()

        # 1. Gate placement: forced (reuse) gates keep their site, the rest are matched.
        forced_sites = {site for site, _ in forced.values()}
        unforced_indices = [i for i in range(len(gates)) if i not in forced]
        unforced_gates = [gates[i] for i in unforced_indices]
        placed_sites, _ = place_gates(
            self.architecture,
            unforced_gates,
            positions,
            occupied_sites=forced_sites,
            next_stage_gates=next_gates,
            expansion=self.config.candidate_expansion,
            fast=self.config.use_fast_paths,
        )
        site_of_gate: dict[int, RydbergSite] = {}
        for index, site in zip(unforced_indices, placed_sites):
            site_of_gate[index] = site
        for index, (site, _) in forced.items():
            site_of_gate[index] = site

        # 2. Build gate entries with side assignments, and incoming movements.
        for index, gate in enumerate(gates):
            site = site_of_gate[index]
            entry = self._gate_entry(gate, site, forced.get(index), positions)
            plan.gates.append(entry)
            plan.zone_index = site.zone_index
            for qubit in gate:
                target = Location.at_site(site, entry.side_of(qubit))
                current = self._location[qubit]
                if current == target:
                    continue
                plan.incoming.append(Movement(qubit, current, target))
                self._move_to(qubit, target)

        # 3. Decide reuse for the next stage and return the remaining qubits.
        in_zone = [q for q, loc in self._location.items() if loc.in_entanglement_zone]
        option = self._choose_return_option(plan, in_zone, next_gates)
        plan.reused_qubits = option.reused_qubits

        for qubit in option.returning:
            trap = option.return_assignment[qubit]
            source = self._location[qubit]
            plan.outgoing.append(Movement(qubit, source, Location.at_storage(trap)))
            old_home = self._home[qubit]
            if old_home != trap:
                self._occupied_storage.discard(old_home)
                self._occupied_storage.add(trap)
            self._home[qubit] = trap
            self._move_to(qubit, Location.at_storage(trap))

        plan.forced_next = option.forced_sites
        return plan, option.forced_sites

    def _gate_entry(
        self,
        gate: tuple[int, int],
        site: RydbergSite,
        forced: tuple[RydbergSite, int] | None,
        positions: dict[int, Point],
    ) -> GatePlacementEntry:
        """Choose which qubit of a gate takes the left / right trap of its site."""
        q, q2 = gate
        if forced is not None:
            reused = forced[1]
            reused_loc = self._location[reused]
            reused_side = reused_loc.side if reused_loc.in_entanglement_zone else LEFT
            first_side = reused_side if reused == q else RIGHT - reused_side
            return GatePlacementEntry(qubits=gate, site=site, first_side=first_side)
        # Fresh gate: the qubit currently further left goes to the left trap.
        first_side = LEFT if positions[q][0] <= positions[q2][0] else RIGHT
        return GatePlacementEntry(qubits=gate, site=site, first_side=first_side)

    # -- return / reuse decision ----------------------------------------------

    def _choose_return_option(
        self,
        plan: StagePlan,
        in_zone: list[int],
        next_gates: list[tuple[int, int]] | None,
    ) -> _ReturnOption:
        no_reuse = self._evaluate_option(plan, in_zone, next_gates, use_reuse=False)
        if not self.config.use_reuse or not next_gates:
            return no_reuse
        with_reuse = self._evaluate_option(plan, in_zone, next_gates, use_reuse=True)
        if with_reuse is None:
            return no_reuse
        return with_reuse if with_reuse.cost <= no_reuse.cost else no_reuse

    def _evaluate_option(
        self,
        plan: StagePlan,
        in_zone: list[int],
        next_gates: list[tuple[int, int]] | None,
        use_reuse: bool,
    ) -> _ReturnOption | None:
        positions = self._positions()

        reused_qubits: set[int] = set()
        forced_next: dict[int, tuple[RydbergSite, int]] = {}
        if use_reuse and next_gates:
            decisions = find_reuse_matching(plan.gates, next_gates)
            if not decisions:
                return None
            for decision in decisions:
                prev_entry = plan.gates[decision.prev_gate_index]
                forced_next[decision.next_gate_index] = (
                    prev_entry.site,
                    decision.reused_qubit,
                )
                # If the next gate acts on the same pair, both qubits stay put.
                shared = set(prev_entry.qubits) & set(next_gates[decision.next_gate_index])
                reused_qubits.update(shared)

        returning = [q for q in in_zone if q not in reused_qubits]
        related_positions = self._related_positions(returning, next_gates, positions)
        return_assignment, return_cost = self._return_assignment(
            returning, positions, related_positions
        )

        # Estimate the movement cost of the *next* stage under this option.
        next_cost = 0.0
        if next_gates:
            next_positions = dict(positions)
            for qubit, trap in return_assignment.items():
                next_positions[qubit] = self.architecture.trap_position(trap)
            occupied_sites = {site for site, _ in forced_next.values()}
            unforced = [g for i, g in enumerate(next_gates) if i not in forced_next]
            if unforced:
                try:
                    _, next_cost = place_gates(
                        self.architecture,
                        unforced,
                        next_positions,
                        occupied_sites=occupied_sites,
                        expansion=self.config.candidate_expansion,
                        fast=self.config.use_fast_paths,
                    )
                except Exception:
                    return None if use_reuse else _ReturnOption(
                        float("inf"), returning, return_assignment, set(), {}
                    )
            for gate_index, (site, reused) in forced_next.items():
                gate = next_gates[gate_index]
                partners = [q for q in gate if q != reused]
                site_pos = self.architecture.site_position(site)
                for partner in partners:
                    next_cost += sqrt_distance(site_pos, next_positions[partner])

        return _ReturnOption(
            cost=return_cost + next_cost,
            returning=returning,
            return_assignment=return_assignment,
            reused_qubits=reused_qubits,
            forced_sites=forced_next,
        )

    def _related_positions(
        self,
        returning: list[int],
        next_gates: list[tuple[int, int]] | None,
        positions: dict[int, Point],
    ) -> dict[int, Point | None]:
        related: dict[int, Point | None] = {q: None for q in returning}
        if not next_gates:
            return related
        partner_of: dict[int, int] = {}
        for q, q2 in next_gates:
            partner_of[q] = q2
            partner_of[q2] = q
        for qubit in returning:
            partner = partner_of.get(qubit)
            if partner is not None:
                related[qubit] = positions[partner]
        return related

    def _return_assignment(
        self,
        returning: list[int],
        positions: dict[int, Point],
        related_positions: dict[int, Point | None],
    ) -> tuple[dict[int, StorageTrap], float]:
        if not returning:
            return {}, 0.0
        if not self.config.dynamic_placement:
            # Static placement: every qubit goes straight back to its home trap.
            assignment = {q: self._home[q] for q in returning}
            cost = sum(
                sqrt_distance(self.architecture.trap_position(self._home[q]), positions[q])
                for q in returning
            )
            return assignment, cost
        occupied = set(self._occupied_storage)
        home_traps = {q: self._home[q] for q in returning}
        return place_returning_qubits(
            self.architecture,
            returning,
            positions,
            home_traps,
            related_positions,
            occupied,
            alpha=self.config.lookahead_alpha,
            k=self.config.neighbor_k,
            fast=self.config.use_fast_paths,
        )
