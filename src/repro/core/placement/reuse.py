"""Qubit-reuse identification via maximum bipartite matching (Section V-B.1).

A qubit sitting in the entanglement zone after Rydberg stage ``t`` is
*reusable* if it is also involved in a gate of stage ``t + 1``.  Keeping both
qubits of a site is impossible when both would be reused by *different*
gates, so the reuse relation is modelled as a bipartite graph between the
gates of the two stages (edge = "shares a qubit") and a maximum-cardinality
matching (Hopcroft-Karp) selects which gate pairs actually reuse a qubit.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..model import GatePlacementEntry


@dataclass(frozen=True)
class ReuseDecision:
    """One reuse pairing between consecutive Rydberg stages.

    Attributes:
        prev_gate_index: Index of the gate in the previous stage whose site
            is being kept.
        next_gate_index: Index of the gate in the next stage that inherits
            the site.
        reused_qubit: The shared qubit that stays at the Rydberg site.
    """

    prev_gate_index: int
    next_gate_index: int
    reused_qubit: int


def shared_qubits(a: tuple[int, int], b: tuple[int, int]) -> list[int]:
    """Qubits shared by two gates (0, 1 or 2 of them)."""
    return [q for q in a if q in b]


def find_reuse_matching(
    prev_gates: list[GatePlacementEntry],
    next_gates: list[tuple[int, int]],
) -> list[ReuseDecision]:
    """Maximum-cardinality matching of reuse opportunities.

    Args:
        prev_gates: Placed gates of the previous Rydberg stage.
        next_gates: Qubit pairs of the next Rydberg stage.

    Returns:
        One :class:`ReuseDecision` per matched gate pair.  The reused qubit
        of a pair is the shared qubit (ties broken towards the first listed).
    """
    if not prev_gates or not next_gates:
        return []

    # Integer node ids (prev gate i -> i, next gate j -> num_prev + j): the
    # matching routine iterates internal sets of nodes, and int hashes -- unlike
    # the hashes of ("prev", i) string tuples -- do not depend on
    # PYTHONHASHSEED, so the selected maximum matching is identical across
    # processes.
    num_prev = len(prev_gates)
    graph = nx.Graph()
    prev_nodes = list(range(num_prev))
    graph.add_nodes_from(prev_nodes, bipartite=0)
    graph.add_nodes_from((num_prev + j for j in range(len(next_gates))), bipartite=1)
    for i, prev in enumerate(prev_gates):
        for j, nxt in enumerate(next_gates):
            if shared_qubits(prev.qubits, nxt):
                graph.add_edge(i, num_prev + j)

    if graph.number_of_edges() == 0:
        return []

    matching = nx.bipartite.hopcroft_karp_matching(graph, top_nodes=prev_nodes)
    decisions: list[ReuseDecision] = []
    for node, partner in matching.items():
        if node >= num_prev:
            continue
        i, j = node, partner - num_prev
        shared = shared_qubits(prev_gates[i].qubits, next_gates[j])
        decisions.append(
            ReuseDecision(prev_gate_index=i, next_gate_index=j, reused_qubit=shared[0])
        )
    decisions.sort(key=lambda d: d.next_gate_index)
    return decisions
