"""Cached numpy views of the architecture geometry (the placement batch axes).

PR 1 tabulated every SLM grid's coordinate axes as tuples on the
:class:`~repro.arch.spec.Architecture` (``site_axes`` / ``_storage_axes``) so
scalar position lookups are O(1).  The batched candidate scorers in
:mod:`.gate_placement` and :mod:`.storage_placement` need the same data as
flat numpy arrays -- one row per Rydberg site / storage trap across all
zones -- so this module materialises them once per architecture and caches
them in a :class:`weakref.WeakKeyDictionary` (architectures are immutable
after construction; see ``Architecture._build_geometry_cache``).

The coordinate arrays are built from the architecture's own cached axis
tuples, so every float is bitwise identical to what the scalar helpers
(``site_position`` / ``trap_position``) return.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ...arch.spec import Architecture, RydbergSite, StorageTrap


@dataclass(frozen=True)
class SiteTables:
    """Flat arrays over every Rydberg site (all entanglement zones)."""

    zone: np.ndarray  #: zone index per site
    row: np.ndarray  #: site row per site
    col: np.ndarray  #: site column per site
    x: np.ndarray  #: reference (left-trap) x coordinate per site
    y: np.ndarray  #: reference (left-trap) y coordinate per site
    zone_offset: tuple[int, ...]  #: flat-index offset of each zone
    zone_cols: tuple[int, ...]  #: number of site columns per zone

    @property
    def num_sites(self) -> int:
        return int(self.zone.size)

    def flat_index(self, site: RydbergSite) -> int:
        return (
            self.zone_offset[site.zone_index]
            + site.row * self.zone_cols[site.zone_index]
            + site.col
        )

    def site_at(self, index: int) -> RydbergSite:
        return RydbergSite(
            int(self.zone[index]), int(self.row[index]), int(self.col[index])
        )


@dataclass(frozen=True)
class StorageTables:
    """Flat arrays over every storage trap (all storage zones)."""

    zone: np.ndarray
    row: np.ndarray
    col: np.ndarray
    x: np.ndarray
    y: np.ndarray
    zone_offset: tuple[int, ...]
    zone_cols: tuple[int, ...]

    @property
    def num_traps(self) -> int:
        return int(self.zone.size)

    def flat_index(self, trap: StorageTrap) -> int:
        return (
            self.zone_offset[trap.zone_index]
            + trap.row * self.zone_cols[trap.zone_index]
            + trap.col
        )

    def trap_at(self, index: int) -> StorageTrap:
        return StorageTrap(
            int(self.zone[index]), int(self.row[index]), int(self.col[index])
        )


def _flatten_grids(axes_per_zone: list[tuple[tuple[float, ...], tuple[float, ...]]]):
    zones, rows, cols, xs, ys = [], [], [], [], []
    offsets: list[int] = []
    zone_cols: list[int] = []
    total = 0
    for zone_index, (axis_x, axis_y) in enumerate(axes_per_zone):
        num_col, num_row = len(axis_x), len(axis_y)
        offsets.append(total)
        zone_cols.append(num_col)
        total += num_row * num_col
        row_grid, col_grid = np.meshgrid(
            np.arange(num_row, dtype=np.intp),
            np.arange(num_col, dtype=np.intp),
            indexing="ij",
        )
        zones.append(np.full(num_row * num_col, zone_index, dtype=np.intp))
        rows.append(row_grid.ravel())
        cols.append(col_grid.ravel())
        xs.append(np.asarray(axis_x, dtype=np.float64)[col_grid.ravel()])
        ys.append(np.asarray(axis_y, dtype=np.float64)[row_grid.ravel()])
    return (
        np.concatenate(zones),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(xs),
        np.concatenate(ys),
        tuple(offsets),
        tuple(zone_cols),
    )


_SITE_CACHE: "weakref.WeakKeyDictionary[Architecture, SiteTables]" = (
    weakref.WeakKeyDictionary()
)
_STORAGE_CACHE: "weakref.WeakKeyDictionary[Architecture, StorageTables]" = (
    weakref.WeakKeyDictionary()
)


def site_tables(architecture: Architecture) -> SiteTables:
    """The (cached) flat Rydberg-site arrays of an architecture."""
    tables = _SITE_CACHE.get(architecture)
    if tables is None:
        axes = [
            architecture.site_axes(z)
            for z in range(len(architecture.entanglement_zones))
        ]
        tables = SiteTables(*_flatten_grids(axes))
        _SITE_CACHE[architecture] = tables
    return tables


def storage_tables(architecture: Architecture) -> StorageTables:
    """The (cached) flat storage-trap arrays of an architecture."""
    tables = _STORAGE_CACHE.get(architecture)
    if tables is None:
        axes = [
            architecture.storage_axes(z)
            for z in range(len(architecture.storage_zones))
        ]
        tables = StorageTables(*_flatten_grids(axes))
        _STORAGE_CACHE[architecture] = tables
    return tables
