"""Initial qubit placement in the storage zone (paper Section V-A).

Two strategies are provided:

* :func:`trivial_placement` -- the 'Vanilla' baseline of the ablation study:
  qubits are placed sequentially by index, starting from the first trap of
  the storage row closest to the (first) entanglement zone.
* :func:`sa_placement` -- simulated annealing over the weighted gate-cost
  objective of Eq. 2, exchanging qubit locations or moving qubits to empty
  traps near the entanglement-zone boundary.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ...arch.spec import Architecture, StorageTrap
from ..config import ZACConfig
from .annealing import AnnealingResult, anneal
from .cost import IncrementalPlacementCost, initial_placement_cost, stage_weight


class PlacementError(RuntimeError):
    """Raised when a legal placement cannot be constructed."""


def storage_rows_by_proximity(architecture: Architecture, zone_index: int = 0) -> list[int]:
    """Storage-row indices ordered from closest to farthest from the entanglement zone."""
    storage_grid = architecture.storage_zones[zone_index].slms[0]
    ent_zone = architecture.entanglement_zones[0]
    ent_y = ent_zone.offset[1]
    rows = list(range(storage_grid.num_row))
    rows.sort(key=lambda r: abs(storage_grid.trap_position(r, 0)[1] - ent_y))
    return rows


def trivial_placement(architecture: Architecture, num_qubits: int) -> dict[int, StorageTrap]:
    """Place qubits sequentially by index in the rows nearest the entanglement zone."""
    if num_qubits > architecture.num_storage_traps:
        raise PlacementError(
            f"{num_qubits} qubits do not fit in {architecture.num_storage_traps} storage traps"
        )
    placement: dict[int, StorageTrap] = {}
    zone_index = 0
    grid = architecture.storage_zones[zone_index].slms[0]
    rows = storage_rows_by_proximity(architecture, zone_index)
    qubit = 0
    for row in rows:
        for col in range(grid.num_col):
            if qubit >= num_qubits:
                return placement
            placement[qubit] = StorageTrap(zone_index, row, col)
            qubit += 1
    return placement


def _candidate_traps(
    architecture: Architecture, num_qubits: int, zone_index: int = 0
) -> list[StorageTrap]:
    """Traps considered by the annealer: the closest rows with some slack."""
    grid = architecture.storage_zones[zone_index].slms[0]
    rows = storage_rows_by_proximity(architecture, zone_index)
    needed_rows = min(grid.num_row, max(2, -(-2 * num_qubits // grid.num_col)))
    traps = [
        StorageTrap(zone_index, row, col)
        for row in rows[:needed_rows]
        for col in range(grid.num_col)
    ]
    return traps


def weighted_gate_list(staged_gates: list[list[tuple[int, int]]]) -> list[tuple[float, int, int]]:
    """Attach the stage weight ``w_g`` to every two-qubit gate."""
    weighted: list[tuple[float, int, int]] = []
    for stage_index, gates in enumerate(staged_gates):
        weight = stage_weight(stage_index)
        for q, q2 in gates:
            weighted.append((weight, q, q2))
    return weighted


def sa_placement(
    architecture: Architecture,
    num_qubits: int,
    staged_gates: list[list[tuple[int, int]]],
    config: ZACConfig = ZACConfig(),
    on_result: Callable[[AnnealingResult], None] | None = None,
    warm_start: dict[int, StorageTrap] | None = None,
) -> dict[int, StorageTrap]:
    """Simulated-annealing initial placement minimising Eq. 2.

    Args:
        architecture: Target architecture.
        num_qubits: Number of program qubits.
        staged_gates: Two-qubit gates grouped by Rydberg stage (qubit pairs).
        config: Annealing parameters.
        on_result: Optional callback receiving the annealing statistics.
        warm_start: Optional starting placement for the annealer (e.g. the
            converged placement of a structurally similar circuit, injected
            by incremental compilation).  Ignored unless it is a valid
            injective placement of exactly this circuit's qubits; the
            annealer still searches from it and keeps the best state found,
            so a poor seed degrades convergence speed, not correctness.
    """
    placement = trivial_placement(architecture, num_qubits)
    if (
        warm_start is not None
        and sorted(warm_start) == list(range(num_qubits))
        and len(set(warm_start.values())) == num_qubits
    ):
        placement = dict(warm_start)
    weighted = weighted_gate_list(staged_gates)
    if not weighted or num_qubits <= 1:
        return placement

    candidates = _candidate_traps(architecture, num_qubits)
    trap_to_qubit: dict[StorageTrap, int] = {trap: q for q, trap in placement.items()}
    empty_traps = [t for t in candidates if t not in trap_to_qubit]

    positions = {
        q: architecture.trap_position(trap) for q, trap in placement.items()
    }

    def propose_move(rng: random.Random):
        """Mutate placement/positions; return ``(undo, moved_qubits)`` or None."""
        qubit = rng.randrange(num_qubits)
        old_trap = placement[qubit]
        if empty_traps and rng.random() < 0.5:
            # Jump to a random empty candidate trap.
            index = rng.randrange(len(empty_traps))
            new_trap = empty_traps[index]
            placement[qubit] = new_trap
            positions[qubit] = architecture.trap_position(new_trap)
            trap_to_qubit.pop(old_trap, None)
            trap_to_qubit[new_trap] = qubit
            empty_traps[index] = old_trap

            def undo() -> None:
                placement[qubit] = old_trap
                positions[qubit] = architecture.trap_position(old_trap)
                trap_to_qubit.pop(new_trap, None)
                trap_to_qubit[old_trap] = qubit
                empty_traps[index] = new_trap

            return undo, (qubit,)
        # Exchange locations with another qubit.
        other = rng.randrange(num_qubits)
        if other == qubit:
            return None
        other_trap = placement[other]
        placement[qubit], placement[other] = other_trap, old_trap
        positions[qubit] = architecture.trap_position(other_trap)
        positions[other] = architecture.trap_position(old_trap)
        trap_to_qubit[other_trap] = qubit
        trap_to_qubit[old_trap] = other

        def undo_swap() -> None:
            placement[qubit], placement[other] = old_trap, other_trap
            positions[qubit] = architecture.trap_position(old_trap)
            positions[other] = architecture.trap_position(other_trap)
            trap_to_qubit[old_trap] = qubit
            trap_to_qubit[other_trap] = other

        return undo_swap, (qubit, other)

    if config.use_fast_paths:
        # Delta-cost protocol: only the gates touching the moved qubits are
        # re-priced per Metropolis step (O(deg(q)) instead of O(gates)).
        tracker = IncrementalPlacementCost(architecture, positions, weighted)

        def cost() -> float:
            return tracker.total

        def propose(rng: random.Random):
            move = propose_move(rng)
            if move is None:
                return None
            undo_positions, moved = move
            delta, undo_costs = tracker.reevaluate(moved)

            def undo() -> None:
                undo_costs()
                undo_positions()

            return undo, delta

    else:
        # Naive reference path (retained for equivalence tests and the
        # compile-speed regression benchmark): full Eq. 2 re-evaluation.
        def cost() -> float:
            return initial_placement_cost(architecture, positions, weighted)

        def propose(rng: random.Random):
            move = propose_move(rng)
            return None if move is None else move[0]

    result = anneal(
        cost,
        propose,
        iterations=config.sa_iterations,
        initial_temperature=config.sa_initial_temperature,
        cooling=config.sa_cooling,
        seed=config.seed,
    )
    if on_result is not None:
        on_result(result)
    return placement
