"""Initial qubit placement in the storage zone (paper Section V-A).

Two strategies are provided:

* :func:`trivial_placement` -- the 'Vanilla' baseline of the ablation study:
  qubits are placed sequentially by index, starting from the first trap of
  the storage row closest to the (first) entanglement zone.
* :func:`sa_placement` -- simulated annealing over the weighted gate-cost
  objective of Eq. 2, exchanging qubit locations or moving qubits to empty
  traps near the entanglement-zone boundary.
"""

from __future__ import annotations

import random
from collections.abc import Callable

import numpy as np

from ...arch.spec import Architecture, StorageTrap
from ..config import ZACConfig
from .annealing import AnnealingResult, anneal
from .cost import IncrementalPlacementCost, initial_placement_cost, stage_weight


class PlacementError(RuntimeError):
    """Raised when a legal placement cannot be constructed."""


def storage_rows_by_proximity(architecture: Architecture, zone_index: int = 0) -> list[int]:
    """Storage-row indices ordered from closest to farthest from the entanglement zone."""
    storage_grid = architecture.storage_zones[zone_index].slms[0]
    ent_zone = architecture.entanglement_zones[0]
    ent_y = ent_zone.offset[1]
    rows = list(range(storage_grid.num_row))
    rows.sort(key=lambda r: abs(storage_grid.trap_position(r, 0)[1] - ent_y))
    return rows


def trivial_placement(architecture: Architecture, num_qubits: int) -> dict[int, StorageTrap]:
    """Place qubits sequentially by index in the rows nearest the entanglement zone."""
    if num_qubits > architecture.num_storage_traps:
        raise PlacementError(
            f"{num_qubits} qubits do not fit in {architecture.num_storage_traps} storage traps"
        )
    placement: dict[int, StorageTrap] = {}
    zone_index = 0
    grid = architecture.storage_zones[zone_index].slms[0]
    rows = storage_rows_by_proximity(architecture, zone_index)
    qubit = 0
    for row in rows:
        for col in range(grid.num_col):
            if qubit >= num_qubits:
                return placement
            placement[qubit] = StorageTrap(zone_index, row, col)
            qubit += 1
    return placement


def _candidate_traps(
    architecture: Architecture, num_qubits: int, zone_index: int = 0
) -> list[StorageTrap]:
    """Traps considered by the annealer: the closest rows with some slack."""
    grid = architecture.storage_zones[zone_index].slms[0]
    rows = storage_rows_by_proximity(architecture, zone_index)
    needed_rows = min(grid.num_row, max(2, -(-2 * num_qubits // grid.num_col)))
    traps = [
        StorageTrap(zone_index, row, col)
        for row in rows[:needed_rows]
        for col in range(grid.num_col)
    ]
    return traps


def weighted_gate_list(staged_gates: list[list[tuple[int, int]]]) -> list[tuple[float, int, int]]:
    """Attach the stage weight ``w_g`` to every two-qubit gate."""
    weighted: list[tuple[float, int, int]] = []
    for stage_index, gates in enumerate(staged_gates):
        weight = stage_weight(stage_index)
        for q, q2 in gates:
            weighted.append((weight, q, q2))
    return weighted


def sa_placement(
    architecture: Architecture,
    num_qubits: int,
    staged_gates: list[list[tuple[int, int]]],
    config: ZACConfig = ZACConfig(),
    on_result: Callable[[AnnealingResult], None] | None = None,
    warm_start: dict[int, StorageTrap] | None = None,
    cost_mode: str | None = None,
) -> dict[int, StorageTrap]:
    """Simulated-annealing initial placement minimising Eq. 2.

    Args:
        architecture: Target architecture.
        num_qubits: Number of program qubits.
        staged_gates: Two-qubit gates grouped by Rydberg stage (qubit pairs).
        config: Annealing parameters.
        on_result: Optional callback receiving the annealing statistics.
        warm_start: Optional starting placement for the annealer (e.g. the
            converged placement of a structurally similar circuit, injected
            by incremental compilation).  Ignored unless it is a valid
            injective placement of exactly this circuit's qubits; the
            annealer still searches from it and keeps the best state found,
            so a poor seed degrades convergence speed, not correctness.
        cost_mode: Proposal-pricing engine; ``None`` derives it from
            ``config.use_fast_paths``.  ``"vectorized"`` (the fast default)
            prices moves through the array-backed
            :class:`~repro.core.placement.cost.IncrementalPlacementCost`
            price-table gathers; ``"scalar"`` is its scalar delta twin --
            identical proposal stream, pricing expressions, and accumulation
            order, so the two produce **bit-identical** trajectories (the
            property the equivalence tests pin).  ``"naive"`` is the seed
            implementation's full Eq. 2 re-evaluation per Metropolis step;
            it anneals to equally good placements but compares ULP-different
            deltas (full-sum vs incremental-sum floats), so its trajectory
            may legitimately diverge from the delta paths on tie-breaks.
    """
    placement = trivial_placement(architecture, num_qubits)
    if (
        warm_start is not None
        and sorted(warm_start) == list(range(num_qubits))
        and len(set(warm_start.values())) == num_qubits
    ):
        placement = dict(warm_start)
    weighted = weighted_gate_list(staged_gates)
    if not weighted or num_qubits <= 1:
        return placement

    if cost_mode is None:
        cost_mode = "vectorized" if config.use_fast_paths else "naive"
    if cost_mode not in ("vectorized", "scalar", "naive"):
        raise ValueError(f"unknown cost_mode {cost_mode!r}")

    candidates = _candidate_traps(architecture, num_qubits)

    if cost_mode == "naive":
        # Naive reference path (retained for the ablation oracle and the
        # compile-speed regression benchmark): dict state, full Eq. 2
        # re-evaluation per proposal.
        return _sa_placement_naive(
            architecture, num_qubits, placement, weighted, candidates, config, on_result
        )

    # Array-backed state: the trap universe is every candidate trap plus any
    # extra traps the (warm-start) placement already occupies; qubit state is
    # one int array indexing into it.  The proposal generator consumes the
    # PRNG stream in exactly the same order as the naive path, so all three
    # cost modes explore the same move sequence.
    universe = list(candidates)
    index_of: dict[StorageTrap, int] = {trap: i for i, trap in enumerate(universe)}
    for trap in placement.values():
        if trap not in index_of:
            index_of[trap] = len(universe)
            universe.append(trap)
    qubit_trap = np.empty(num_qubits, dtype=np.intp)
    trap_qubit = np.full(len(universe), -1, dtype=np.intp)
    for q, trap in placement.items():
        i = index_of[trap]
        qubit_trap[q] = i
        trap_qubit[i] = q
    empty_traps = [
        index_of[trap] for trap in candidates if trap_qubit[index_of[trap]] < 0
    ]

    tracker = IncrementalPlacementCost(
        architecture,
        universe,
        qubit_trap,
        weighted,
        vectorized=(cost_mode == "vectorized"),
    )

    def cost() -> float:
        return tracker.total

    def propose(rng: random.Random):
        qubit = rng.randrange(num_qubits)
        old_index = int(qubit_trap[qubit])
        if empty_traps and rng.random() < 0.5:
            # Jump to a random empty candidate trap.
            index = rng.randrange(len(empty_traps))
            new_index = empty_traps[index]
            qubit_trap[qubit] = new_index
            trap_qubit[old_index] = -1
            trap_qubit[new_index] = qubit
            empty_traps[index] = old_index
            moved = (qubit,)

            def undo_positions() -> None:
                qubit_trap[qubit] = old_index
                trap_qubit[new_index] = -1
                trap_qubit[old_index] = qubit
                empty_traps[index] = new_index

        else:
            # Exchange locations with another qubit.
            other = rng.randrange(num_qubits)
            if other == qubit:
                return None
            other_index = int(qubit_trap[other])
            qubit_trap[qubit] = other_index
            qubit_trap[other] = old_index
            trap_qubit[other_index] = qubit
            trap_qubit[old_index] = other
            moved = (qubit, other)

            def undo_positions() -> None:
                qubit_trap[qubit] = old_index
                qubit_trap[other] = other_index
                trap_qubit[old_index] = qubit
                trap_qubit[other_index] = other

        delta, undo_costs = tracker.reevaluate(moved)

        def undo() -> None:
            undo_costs()
            undo_positions()

        return undo, delta

    result = anneal(
        cost,
        propose,
        iterations=config.sa_iterations,
        initial_temperature=config.sa_initial_temperature,
        cooling=config.sa_cooling,
        seed=config.seed,
    )
    if on_result is not None:
        on_result(result)
    return {q: universe[int(qubit_trap[q])] for q in range(num_qubits)}


def _sa_placement_naive(
    architecture: Architecture,
    num_qubits: int,
    placement: dict[int, StorageTrap],
    weighted: list[tuple[float, int, int]],
    candidates: list[StorageTrap],
    config: ZACConfig,
    on_result: Callable[[AnnealingResult], None] | None,
) -> dict[int, StorageTrap]:
    """The seed implementation: dict state + full Eq. 2 re-evaluation."""
    trap_to_qubit: dict[StorageTrap, int] = {trap: q for q, trap in placement.items()}
    empty_traps = [t for t in candidates if t not in trap_to_qubit]

    positions = {
        q: architecture.trap_position(trap) for q, trap in placement.items()
    }

    def cost() -> float:
        return initial_placement_cost(architecture, positions, weighted)

    def propose(rng: random.Random):
        qubit = rng.randrange(num_qubits)
        old_trap = placement[qubit]
        if empty_traps and rng.random() < 0.5:
            # Jump to a random empty candidate trap.
            index = rng.randrange(len(empty_traps))
            new_trap = empty_traps[index]
            placement[qubit] = new_trap
            positions[qubit] = architecture.trap_position(new_trap)
            trap_to_qubit.pop(old_trap, None)
            trap_to_qubit[new_trap] = qubit
            empty_traps[index] = old_trap

            def undo() -> None:
                placement[qubit] = old_trap
                positions[qubit] = architecture.trap_position(old_trap)
                trap_to_qubit.pop(new_trap, None)
                trap_to_qubit[old_trap] = qubit
                empty_traps[index] = new_trap

            return undo
        # Exchange locations with another qubit.
        other = rng.randrange(num_qubits)
        if other == qubit:
            return None
        other_trap = placement[other]
        placement[qubit], placement[other] = other_trap, old_trap
        positions[qubit] = architecture.trap_position(other_trap)
        positions[other] = architecture.trap_position(old_trap)
        trap_to_qubit[other_trap] = qubit
        trap_to_qubit[old_trap] = other

        def undo_swap() -> None:
            placement[qubit], placement[other] = old_trap, other_trap
            positions[qubit] = architecture.trap_position(old_trap)
            positions[other] = architecture.trap_position(other_trap)
            trap_to_qubit[old_trap] = qubit
            trap_to_qubit[other_trap] = other

        return undo_swap

    result = anneal(
        cost,
        propose,
        iterations=config.sa_iterations,
        initial_temperature=config.sa_initial_temperature,
        cooling=config.sa_cooling,
        seed=config.seed,
    )
    if on_result is not None:
        on_result(result)
    return placement
