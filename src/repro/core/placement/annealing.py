"""A small, generic simulated-annealing framework (paper Section V-A).

The framework is deliberately minimal: the caller provides a cost function,
a neighbour generator that returns an *undo* callback, and the framework
runs a geometric-cooling Metropolis loop with a fixed iteration budget.

Two proposal protocols are supported:

* **Full re-evaluation** (legacy): ``propose_fn`` mutates the state and
  returns an undo callback; the framework calls ``cost_fn`` to price the
  candidate.  Simple, but O(cost evaluation) per iteration.
* **Delta-cost**: ``propose_fn`` returns ``(undo, delta)`` where ``delta``
  is the exact cost change of the move.  ``cost_fn`` is then only called
  once, before the loop, and every Metropolis step is O(move), which turns
  placement annealing from O(iterations x gates) into O(iterations x deg(q)).

The loop keeps an undo journal of the moves accepted since the best state
was last seen, and rewinds it before returning, so the caller's state is
left at the *best* configuration found -- not merely the final one.

Acceptance is deliberately *sequential and scalar*: each proposal's delta is
a Python float accumulated in reference order by the proposal generator
(see ``IncrementalPlacementCost``), and the Metropolis draw consumes one
``rng.random()`` per candidate.  Vectorizing the loop itself (batched
proposals, vectorized acceptance) would reorder float reductions and PRNG
consumption and silently change trajectories; the fast paths therefore
vectorize only the *pricing* of each proposal, keeping the acceptance
sequence bit-stable across cost engines.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass

Undo = Callable[[], None]
#: A proposal: nothing, a bare undo callback, or an ``(undo, delta)`` pair.
Proposal = Undo | tuple[Undo, float] | None

#: Cost comparisons tighter than this are treated as ties.
_EPS = 1e-12


@dataclass
class AnnealingResult:
    """Outcome of a simulated-annealing run."""

    best_cost: float
    initial_cost: float
    iterations: int
    accepted_moves: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved by the search."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost


def anneal(
    cost_fn: Callable[[], float],
    propose_fn: Callable[[random.Random], Proposal],
    iterations: int = 1000,
    initial_temperature: float = 2.0,
    cooling: float = 0.995,
    seed: int = 0,
    convergence_window: int = 200,
    restore_best: bool = True,
) -> AnnealingResult:
    """Minimise ``cost_fn`` by locally mutating shared state.

    Args:
        cost_fn: Returns the current cost of the (externally held) state.
            With delta-cost proposals this is evaluated exactly once.
        propose_fn: Mutates the state in place and returns an undo callback,
            an ``(undo, delta)`` pair with the exact cost change of the move,
            or None if no move could be generated this iteration.
        iterations: Iteration limit.
        initial_temperature: Starting temperature.
        cooling: Geometric cooling factor applied every iteration.
        seed: PRNG seed.
        convergence_window: Stop early if no accepted move improved the best
            cost within this many iterations.
        restore_best: Rewind the state to the best configuration seen before
            returning (via the journal of accepted undo callbacks).  Disable
            only when the caller snapshots externally.

    Returns:
        Statistics of the run.  With ``restore_best`` (the default) the state
        is left at the best configuration found and ``best_cost`` is its cost.
    """
    current = cost_fn()
    initial = current
    best = current
    temperature = initial_temperature
    rng = random.Random(seed)
    accepted = 0
    since_improvement = 0
    #: Undos of moves accepted since the best-so-far state, newest last.
    journal: list[Undo] = []

    iteration = 0
    for iteration in range(1, iterations + 1):
        proposal = propose_fn(rng)
        if proposal is None:
            temperature *= cooling
            continue
        if isinstance(proposal, tuple):
            undo, delta = proposal
            candidate = current + delta
        else:
            undo = proposal
            candidate = cost_fn()
            delta = candidate - current
        accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, _EPS))
        if accept:
            current = candidate
            accepted += 1
            journal.append(undo)
            if candidate < best - _EPS:
                best = candidate
                journal.clear()
                since_improvement = 0
            else:
                since_improvement += 1
        else:
            undo()
            since_improvement += 1
        if since_improvement >= convergence_window:
            break
        temperature *= cooling

    if current <= best:
        # The final state is at least as good as any recorded best.
        best = current
    elif restore_best and journal:
        for undo in reversed(journal):
            undo()
    else:
        best = min(best, current)

    return AnnealingResult(
        best_cost=best,
        initial_cost=initial,
        iterations=iteration,
        accepted_moves=accepted,
    )
