"""A small, generic simulated-annealing framework (paper Section V-A).

The framework is deliberately minimal: the caller provides a cost function,
a neighbour generator that returns an *undo* callback, and the framework
runs a geometric-cooling Metropolis loop with a fixed iteration budget.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass


@dataclass
class AnnealingResult:
    """Outcome of a simulated-annealing run."""

    best_cost: float
    initial_cost: float
    iterations: int
    accepted_moves: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved by the search."""
        if self.initial_cost == 0:
            return 0.0
        return (self.initial_cost - self.best_cost) / self.initial_cost


def anneal(
    cost_fn: Callable[[], float],
    propose_fn: Callable[[random.Random], Callable[[], None] | None],
    iterations: int = 1000,
    initial_temperature: float = 2.0,
    cooling: float = 0.995,
    seed: int = 0,
    convergence_window: int = 200,
) -> AnnealingResult:
    """Minimise ``cost_fn`` by locally mutating shared state.

    Args:
        cost_fn: Returns the current cost of the (externally held) state.
        propose_fn: Mutates the state in place and returns an undo callback,
            or None if no move could be generated this iteration.
        iterations: Iteration limit.
        initial_temperature: Starting temperature.
        cooling: Geometric cooling factor applied every iteration.
        seed: PRNG seed.
        convergence_window: Stop early if no accepted move improved the best
            cost within this many iterations.

    Returns:
        Statistics of the run.  The state is left at the best configuration
        only if the caller's moves are cost-monotone; callers that need the
        strict best state should snapshot externally (the placement code
        keeps the final state, which in practice matches the best one because
        late iterations run at near-zero temperature).
    """
    current = cost_fn()
    initial = current
    best = current
    temperature = initial_temperature
    rng = random.Random(seed)
    accepted = 0
    since_improvement = 0

    iteration = 0
    for iteration in range(1, iterations + 1):
        undo = propose_fn(rng)
        if undo is None:
            temperature *= cooling
            continue
        candidate = cost_fn()
        delta = candidate - current
        accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12))
        if accept:
            current = candidate
            accepted += 1
            if candidate < best - 1e-12:
                best = candidate
                since_improvement = 0
            else:
                since_improvement += 1
        else:
            undo()
            since_improvement += 1
        if since_improvement >= convergence_window:
            break
        temperature *= cooling

    return AnnealingResult(
        best_cost=min(best, current),
        initial_cost=initial,
        iterations=iteration,
        accepted_moves=accepted,
    )
