"""Non-reuse dynamic qubit placement: returning qubits to storage (Section V-B.3).

After a Rydberg stage, every qubit in the entanglement zone that is not
reused by the next stage returns to a storage trap.  The assignment of
qubits to traps is a minimum-weight full matching between qubits and their
candidate traps, where the candidates are (i) the qubit's reserved home
trap, (ii) the storage traps near its current Rydberg site (k-neighbourhood),
and (iii) the trap nearest its *related qubit* -- its partner in the next
Rydberg stage -- all enclosed in a bounding box.  Edge weights follow Eq. 3.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...arch.spec import Architecture, StorageTrap
from .cost import storage_return_cost

Point = tuple[float, float]

_FORBIDDEN = 1e9


class StoragePlacementError(RuntimeError):
    """Raised when returning qubits cannot be matched to storage traps."""


def k_neighbourhood(
    architecture: Architecture, trap: StorageTrap, k: int
) -> list[StorageTrap]:
    """The trap itself plus its ``k``-hop neighbours along its row and column."""
    rows, cols = architecture.storage_shape(trap.zone_index)
    out = [trap]
    for offset in range(1, k + 1):
        for dr, dc in ((offset, 0), (-offset, 0), (0, offset), (0, -offset)):
            row, col = trap.row + dr, trap.col + dc
            if 0 <= row < rows and 0 <= col < cols:
                out.append(StorageTrap(trap.zone_index, row, col))
    return out


def _bounding_box_traps(
    architecture: Architecture, anchors: list[StorageTrap]
) -> list[StorageTrap]:
    """All storage traps inside the bounding box of the anchor traps."""
    by_zone: dict[int, list[StorageTrap]] = {}
    for trap in anchors:
        by_zone.setdefault(trap.zone_index, []).append(trap)
    out: list[StorageTrap] = []
    for zone_index, traps in by_zone.items():
        row_lo = min(t.row for t in traps)
        row_hi = max(t.row for t in traps)
        col_lo = min(t.col for t in traps)
        col_hi = max(t.col for t in traps)
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                out.append(StorageTrap(zone_index, row, col))
    return out


def candidate_traps(
    architecture: Architecture,
    qubit_position: Point,
    home_trap: StorageTrap,
    related_position: Point | None,
    occupied: set[StorageTrap],
    k: int = 1,
) -> list[StorageTrap]:
    """Candidate storage traps for one returning qubit.

    The qubit's own home trap is always included (it is reserved for the
    qubit, so a full matching always exists); every other candidate must be
    unoccupied.
    """
    anchors = [home_trap]
    near_current = architecture.nearest_storage_trap(*qubit_position)
    anchors.extend(k_neighbourhood(architecture, near_current, k))
    if related_position is not None:
        anchors.append(architecture.nearest_storage_trap(*related_position))

    box = _bounding_box_traps(architecture, anchors)
    candidates = [home_trap]
    for trap in box:
        if trap == home_trap:
            continue
        if trap in occupied:
            continue
        candidates.append(trap)
    return candidates


def place_returning_qubits(
    architecture: Architecture,
    qubits: list[int],
    positions: dict[int, Point],
    home_traps: dict[int, StorageTrap],
    related_positions: dict[int, Point | None],
    occupied: set[StorageTrap],
    alpha: float = 0.1,
    k: int = 1,
) -> tuple[dict[int, StorageTrap], float]:
    """Assign every returning qubit a storage trap, minimising total cost.

    Args:
        architecture: Target architecture.
        qubits: Qubits currently in the entanglement zone that must return.
        positions: Current physical positions of all qubits.
        home_traps: Reserved home trap of each returning qubit.
        related_positions: Position of each qubit's related qubit (or None).
        occupied: Storage traps that are occupied or reserved by *other*
            qubits (home traps of the returning qubits themselves may be
            included; each qubit's own home is re-admitted for itself).
        alpha: Lookahead weight of Eq. 3.
        k: Neighbourhood radius for candidate traps near the current site.

    Returns:
        ``(assignment, total_cost)``.
    """
    if not qubits:
        return {}, 0.0

    per_qubit_candidates: list[list[StorageTrap]] = []
    union: list[StorageTrap] = []
    union_index: dict[StorageTrap, int] = {}
    for qubit in qubits:
        cands = candidate_traps(
            architecture,
            positions[qubit],
            home_traps[qubit],
            related_positions.get(qubit),
            occupied - {home_traps[qubit]},
            k=k,
        )
        per_qubit_candidates.append(cands)
        for trap in cands:
            if trap not in union_index:
                union_index[trap] = len(union)
                union.append(trap)

    cost = np.full((len(qubits), len(union)), _FORBIDDEN, dtype=float)
    for i, qubit in enumerate(qubits):
        for trap in per_qubit_candidates[i]:
            trap_pos = architecture.trap_position(trap)
            cost[i, union_index[trap]] = storage_return_cost(
                trap_pos, positions[qubit], related_positions.get(qubit), alpha
            )

    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _FORBIDDEN:
        raise StoragePlacementError("no feasible qubit-to-trap matching found")
    assignment = {qubits[i]: union[j] for i, j in zip(rows, cols)}
    return assignment, total
