"""Non-reuse dynamic qubit placement: returning qubits to storage (Section V-B.3).

After a Rydberg stage, every qubit in the entanglement zone that is not
reused by the next stage returns to a storage trap.  The assignment of
qubits to traps is a minimum-weight full matching between qubits and their
candidate traps, where the candidates are (i) the qubit's reserved home
trap, (ii) the storage traps near its current Rydberg site (k-neighbourhood),
and (iii) the trap nearest its *related qubit* -- its partner in the next
Rydberg stage -- all enclosed in a bounding box.  Edge weights follow Eq. 3.

The default (``fast=True``) scorer expands bounding boxes and prices every
candidate trap with batched index arithmetic over the flat trap tables of
:mod:`.geom`.  It reproduces the scalar reference *bitwise*: candidate and
union (column) order replicate the reference's first-occurrence insertion
order, and the decomposed distance form of :mod:`.cost` prices each cell to
the identical float, so ``linear_sum_assignment`` sees the same matrix and
returns the same matching.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from ...arch.spec import Architecture, StorageTrap
from .cost import storage_return_cost
from .geom import storage_tables

Point = tuple[float, float]

_FORBIDDEN = 1e9


class StoragePlacementError(RuntimeError):
    """Raised when returning qubits cannot be matched to storage traps."""


def k_neighbourhood(
    architecture: Architecture, trap: StorageTrap, k: int
) -> list[StorageTrap]:
    """The trap itself plus its ``k``-hop neighbours along its row and column."""
    rows, cols = architecture.storage_shape(trap.zone_index)
    out = [trap]
    for offset in range(1, k + 1):
        for dr, dc in ((offset, 0), (-offset, 0), (0, offset), (0, -offset)):
            row, col = trap.row + dr, trap.col + dc
            if 0 <= row < rows and 0 <= col < cols:
                out.append(StorageTrap(trap.zone_index, row, col))
    return out


def _bounding_box_traps(
    architecture: Architecture, anchors: list[StorageTrap]
) -> list[StorageTrap]:
    """All storage traps inside the bounding box of the anchor traps."""
    by_zone: dict[int, list[StorageTrap]] = {}
    for trap in anchors:
        by_zone.setdefault(trap.zone_index, []).append(trap)
    out: list[StorageTrap] = []
    for zone_index, traps in by_zone.items():
        row_lo = min(t.row for t in traps)
        row_hi = max(t.row for t in traps)
        col_lo = min(t.col for t in traps)
        col_hi = max(t.col for t in traps)
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                out.append(StorageTrap(zone_index, row, col))
    return out


def candidate_traps(
    architecture: Architecture,
    qubit_position: Point,
    home_trap: StorageTrap,
    related_position: Point | None,
    occupied: set[StorageTrap],
    k: int = 1,
) -> list[StorageTrap]:
    """Candidate storage traps for one returning qubit.

    The qubit's own home trap is always included (it is reserved for the
    qubit, so a full matching always exists); every other candidate must be
    unoccupied.
    """
    anchors = [home_trap]
    near_current = architecture.nearest_storage_trap(*qubit_position)
    anchors.extend(k_neighbourhood(architecture, near_current, k))
    if related_position is not None:
        anchors.append(architecture.nearest_storage_trap(*related_position))

    box = _bounding_box_traps(architecture, anchors)
    candidates = [home_trap]
    for trap in box:
        if trap == home_trap:
            continue
        if trap in occupied:
            continue
        candidates.append(trap)
    return candidates


def place_returning_qubits(
    architecture: Architecture,
    qubits: list[int],
    positions: dict[int, Point],
    home_traps: dict[int, StorageTrap],
    related_positions: dict[int, Point | None],
    occupied: set[StorageTrap],
    alpha: float = 0.1,
    k: int = 1,
    fast: bool = True,
) -> tuple[dict[int, StorageTrap], float]:
    """Assign every returning qubit a storage trap, minimising total cost.

    Args:
        architecture: Target architecture.
        qubits: Qubits currently in the entanglement zone that must return.
        positions: Current physical positions of all qubits.
        home_traps: Reserved home trap of each returning qubit.
        related_positions: Position of each qubit's related qubit (or None).
        occupied: Storage traps that are occupied or reserved by *other*
            qubits (home traps of the returning qubits themselves may be
            included; each qubit's own home is re-admitted for itself).
        alpha: Lookahead weight of Eq. 3.
        k: Neighbourhood radius for candidate traps near the current site.
        fast: Use the batched candidate scorer (bit-identical assignments to
            the scalar reference, which ``fast=False`` selects).

    Returns:
        ``(assignment, total_cost)``.
    """
    if not qubits:
        return {}, 0.0

    if fast:
        return _place_returning_qubits_fast(
            architecture, qubits, positions, home_traps, related_positions,
            occupied, alpha, k,
        )

    per_qubit_candidates: list[list[StorageTrap]] = []
    union: list[StorageTrap] = []
    union_index: dict[StorageTrap, int] = {}
    for qubit in qubits:
        cands = candidate_traps(
            architecture,
            positions[qubit],
            home_traps[qubit],
            related_positions.get(qubit),
            occupied - {home_traps[qubit]},
            k=k,
        )
        per_qubit_candidates.append(cands)
        for trap in cands:
            if trap not in union_index:
                union_index[trap] = len(union)
                union.append(trap)

    cost = np.full((len(qubits), len(union)), _FORBIDDEN, dtype=float)
    for i, qubit in enumerate(qubits):
        for trap in per_qubit_candidates[i]:
            trap_pos = architecture.trap_position(trap)
            cost[i, union_index[trap]] = storage_return_cost(
                trap_pos, positions[qubit], related_positions.get(qubit), alpha
            )

    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _FORBIDDEN:
        raise StoragePlacementError("no feasible qubit-to-trap matching found")
    assignment = {qubits[i]: union[j] for i, j in zip(rows, cols)}
    return assignment, total


def _candidate_flats(
    architecture: Architecture,
    tables,
    occupied_mask: np.ndarray,
    qubit_position: Point,
    home_trap: StorageTrap,
    related_position: Point | None,
    k: int,
) -> np.ndarray:
    """Flat-index twin of :func:`candidate_traps`, in the identical order.

    The home trap leads; box traps follow per anchor zone (first-occurrence
    zone order) in row-major order, skipping the home trap and occupied
    traps -- exactly the enumeration order of the scalar reference, so the
    union built from these arrays matches its insertion order.
    """
    anchors = [home_trap]
    near_current = architecture.nearest_storage_trap(*qubit_position)
    anchors.extend(k_neighbourhood(architecture, near_current, k))
    if related_position is not None:
        anchors.append(architecture.nearest_storage_trap(*related_position))

    home_flat = tables.flat_index(home_trap)
    by_zone: dict[int, list[StorageTrap]] = {}
    for trap in anchors:
        by_zone.setdefault(trap.zone_index, []).append(trap)

    chunks = [np.array([home_flat], dtype=np.intp)]
    for zone_index, traps in by_zone.items():
        row_lo = min(t.row for t in traps)
        row_hi = max(t.row for t in traps)
        col_lo = min(t.col for t in traps)
        col_hi = max(t.col for t in traps)
        zone_cols = tables.zone_cols[zone_index]
        offset = tables.zone_offset[zone_index]
        box = (
            offset
            + np.arange(row_lo, row_hi + 1, dtype=np.intp)[:, None] * zone_cols
            + np.arange(col_lo, col_hi + 1, dtype=np.intp)[None, :]
        ).ravel()
        keep = (box != home_flat) & ~occupied_mask[box]
        chunks.append(box[keep])
    return np.concatenate(chunks)


def _place_returning_qubits_fast(
    architecture: Architecture,
    qubits: list[int],
    positions: dict[int, Point],
    home_traps: dict[int, StorageTrap],
    related_positions: dict[int, Point | None],
    occupied: set[StorageTrap],
    alpha: float,
    k: int,
) -> tuple[dict[int, StorageTrap], float]:
    tables = storage_tables(architecture)
    occupied_mask = np.zeros(tables.num_traps, dtype=bool)
    for trap in occupied:
        occupied_mask[tables.flat_index(trap)] = True

    per_qubit: list[np.ndarray] = []
    for qubit in qubits:
        # The qubit's own home is re-admitted (scalar path: occupied - {home}),
        # which _candidate_flats realises by always leading with the home flat
        # and excluding it from the box scan.
        per_qubit.append(
            _candidate_flats(
                architecture,
                tables,
                occupied_mask,
                positions[qubit],
                home_traps[qubit],
                related_positions.get(qubit),
                k,
            )
        )

    # Union of candidates in first-occurrence order across the qubit-major
    # concatenation -- the same insertion order the scalar reference's
    # union_index dict produces, so the cost-matrix columns are identical.
    allc = np.concatenate(per_qubit)
    uniq, first = np.unique(allc, return_index=True)
    union_flats = uniq[np.argsort(first, kind="stable")]
    col_of = np.full(tables.num_traps, -1, dtype=np.intp)
    col_of[union_flats] = np.arange(union_flats.size, dtype=np.intp)

    cost = np.full((len(qubits), union_flats.size), _FORBIDDEN, dtype=float)
    for i, qubit in enumerate(qubits):
        cand = per_qubit[i]
        tx = tables.x[cand]
        ty = tables.y[cand]
        qx, qy = positions[qubit]
        dx = tx - qx
        dy = ty - qy
        prices = np.sqrt(np.sqrt(dx * dx + dy * dy))
        related = related_positions.get(qubit)
        if related is not None:
            rx, ry = related
            dxr = tx - rx
            dyr = ty - ry
            prices = prices + alpha * np.sqrt(np.sqrt(dxr * dxr + dyr * dyr))
        cost[i, col_of[cand]] = prices

    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    if total >= _FORBIDDEN:
        raise StoragePlacementError("no feasible qubit-to-trap matching found")
    assignment = {
        qubits[i]: tables.trap_at(int(union_flats[j])) for i, j in zip(rows, cols)
    }
    return assignment, total
