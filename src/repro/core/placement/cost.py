"""Placement cost functions (paper Section V, Eq. 1-3).

The movement duration of an AOD transfer is proportional to the square root
of the distance travelled, so every cost term uses ``sqrt(distance)`` rather
than the raw Euclidean distance.  When the two qubits of a gate sit in the
same SLM row they can be picked up by a single AOD row and moved to the site
together, so the cost is the *maximum* of the two terms; otherwise the
movements are sequential and the cost is their *sum*.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from ...arch.spec import Architecture, RydbergSite

Point = tuple[float, float]

#: Tolerance (um) when deciding whether two qubits share an SLM row.
ROW_TOL = 1e-6


def sqrt_distance(a: Point, b: Point) -> float:
    """``sqrt`` of the Euclidean distance between two points."""
    return math.sqrt(math.hypot(a[0] - b[0], a[1] - b[1]))


def gate_cost(site_pos: Point, q_pos: Point, q2_pos: Point) -> float:
    """Movement cost of a two-qubit gate to a Rydberg site (Eq. 1).

    Args:
        site_pos: Reference position of the Rydberg site (its left trap).
        q_pos: Current position of the first target qubit.
        q2_pos: Current position of the second target qubit.
    """
    cost_q = sqrt_distance(site_pos, q_pos)
    cost_q2 = sqrt_distance(site_pos, q2_pos)
    if abs(q_pos[1] - q2_pos[1]) <= ROW_TOL:
        return max(cost_q, cost_q2)
    return cost_q + cost_q2


def stage_weight(stage_index: int) -> float:
    """Weight factor of a gate scheduled in Rydberg stage ``stage_index`` (0-based).

    ``w_g = max(0.1, 1 - 0.1 * t)`` with ``t`` the 0-based stage index, which
    matches the paper's ``max(0.1, 1 - 0.1 (t - 1))`` for 1-based stages.
    """
    return max(0.1, 1.0 - 0.1 * stage_index)


def nearest_gate_site(
    architecture: Architecture,
    q_pos: Point,
    q2_pos: Point,
) -> RydbergSite:
    """Nearest Rydberg site of a gate: the middle site of its qubits' nearest sites.

    If the nearest sites of the two target qubits are ``(r, c)`` and
    ``(r', c')`` (in the same entanglement zone), the gate's nearest site is
    ``(floor((r + r') / 2), floor((c + c') / 2))``.  When the qubits'
    nearest sites live in different entanglement zones, the site closer to
    the midpoint of the two qubits is used.
    """
    site_q = architecture.nearest_rydberg_site(*q_pos)
    site_q2 = architecture.nearest_rydberg_site(*q2_pos)
    if site_q.zone_index == site_q2.zone_index:
        return RydbergSite(
            site_q.zone_index,
            (site_q.row + site_q2.row) // 2,
            (site_q.col + site_q2.col) // 2,
        )
    midpoint = ((q_pos[0] + q2_pos[0]) / 2.0, (q_pos[1] + q2_pos[1]) / 2.0)
    return architecture.nearest_rydberg_site(*midpoint)


def initial_placement_cost(
    architecture: Architecture,
    positions: dict[int, Point],
    weighted_gates: list[tuple[float, int, int]],
) -> float:
    """Total cost of an initial placement (Eq. 2).

    Args:
        architecture: Target architecture.
        positions: Current qubit positions.
        weighted_gates: ``(weight, q, q2)`` triples for every two-qubit gate.
    """
    total = 0.0
    for weight, q, q2 in weighted_gates:
        q_pos, q2_pos = positions[q], positions[q2]
        site = nearest_gate_site(architecture, q_pos, q2_pos)
        site_pos = architecture.site_position(site)
        total += weight * gate_cost(site_pos, q_pos, q2_pos)
    return total


class IncrementalPlacementCost:
    """Eq. 2 cost maintained incrementally under qubit-position updates.

    The naive :func:`initial_placement_cost` re-prices every weighted gate,
    which makes a Metropolis loop O(iterations x gates).  This tracker keeps
    one cached cost per gate plus a qubit -> gate index, so a move touching
    qubits ``S`` re-prices only the gates incident to ``S`` -- O(deg(q)) per
    move.  The caller owns the shared ``positions`` dict and mutates it
    *before* calling :meth:`reevaluate`.
    """

    def __init__(
        self,
        architecture: Architecture,
        positions: dict[int, Point],
        weighted_gates: list[tuple[float, int, int]],
    ) -> None:
        self.architecture = architecture
        self.positions = positions
        self.gates = list(weighted_gates)
        self.gates_of: dict[int, list[int]] = {}
        for index, (_, q, q2) in enumerate(self.gates):
            self.gates_of.setdefault(q, []).append(index)
            if q2 != q:
                self.gates_of.setdefault(q2, []).append(index)
        # With a single entanglement zone the gate's nearest site reduces to
        # pure grid arithmetic (round, clamp, midpoint) on the cached axes --
        # identical floats to nearest_gate_site, without the per-call site
        # objects.  Multi-zone architectures fall back to the general path.
        # The inlined round/clamp below must stay arithmetically identical to
        # SLMArray.nearest_trap; tests/test_fast_paths.py compares this
        # tracker against initial_placement_cost and catches any drift.
        if len(architecture.entanglement_zones) == 1:
            grid = architecture.entanglement_zones[0].slms[0]
            xs, ys = architecture.site_axes(0)
            self._single_zone = (xs, ys, grid.sep[0], grid.sep[1], grid.num_col, grid.num_row)
        else:
            self._single_zone = None
        self.gate_costs = [self._price(index) for index in range(len(self.gates))]
        self.total = math.fsum(self.gate_costs)

    def _price(self, index: int) -> float:
        weight, q, q2 = self.gates[index]
        q_pos, q2_pos = self.positions[q], self.positions[q2]
        single = self._single_zone
        if single is not None:
            xs, ys, sep_x, sep_y, num_col, num_row = single
            qx, qy = q_pos
            q2x, q2y = q2_pos
            col = min(max(round((qx - xs[0]) / sep_x), 0), num_col - 1)
            row = min(max(round((qy - ys[0]) / sep_y), 0), num_row - 1)
            col2 = min(max(round((q2x - xs[0]) / sep_x), 0), num_col - 1)
            row2 = min(max(round((q2y - ys[0]) / sep_y), 0), num_row - 1)
            site_x = xs[(col + col2) // 2]
            site_y = ys[(row + row2) // 2]
            cost_q = math.sqrt(math.hypot(site_x - qx, site_y - qy))
            cost_q2 = math.sqrt(math.hypot(site_x - q2x, site_y - q2y))
            if abs(qy - q2y) <= ROW_TOL:
                return weight * (cost_q if cost_q >= cost_q2 else cost_q2)
            return weight * (cost_q + cost_q2)
        site = nearest_gate_site(self.architecture, q_pos, q2_pos)
        site_pos = self.architecture.site_position(site)
        return weight * gate_cost(site_pos, q_pos, q2_pos)

    def reevaluate(self, moved_qubits: tuple[int, ...]) -> tuple[float, Callable[[], None]]:
        """Re-price the gates touching ``moved_qubits`` (positions already updated).

        Returns:
            ``(delta, undo)`` where ``delta`` is the cost change and ``undo``
            restores the tracker's cached per-gate costs (the caller undoes
            the position mutation itself).
        """
        affected: list[int] = []
        seen: set[int] = set()
        for qubit in moved_qubits:
            for index in self.gates_of.get(qubit, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)
        saved = [self.gate_costs[index] for index in affected]
        delta = 0.0
        for index in affected:
            new_cost = self._price(index)
            delta += new_cost - self.gate_costs[index]
            self.gate_costs[index] = new_cost
        self.total += delta

        def undo() -> None:
            for index, old_cost in zip(affected, saved):
                self.gate_costs[index] = old_cost
            self.total -= delta

        return delta, undo


def storage_return_cost(
    trap_pos: Point,
    qubit_pos: Point,
    related_pos: Point | None,
    alpha: float = 0.1,
) -> float:
    """Cost of returning a qubit to a storage trap (Eq. 3).

    Args:
        trap_pos: Candidate storage-trap position.
        qubit_pos: The qubit's current position (in the entanglement zone).
        related_pos: Position of the qubit's related qubit (its partner in
            the next Rydberg stage), or None if it has none.
        alpha: Lookahead weighting factor.
    """
    cost = sqrt_distance(trap_pos, qubit_pos)
    if related_pos is not None:
        cost += alpha * sqrt_distance(trap_pos, related_pos)
    return cost
