"""Placement cost functions (paper Section V, Eq. 1-3).

The movement duration of an AOD transfer is proportional to the square root
of the distance travelled, so every cost term uses ``sqrt(distance)`` rather
than the raw Euclidean distance.  When the two qubits of a gate sit in the
same SLM row they can be picked up by a single AOD row and moved to the site
together, so the cost is the *maximum* of the two terms; otherwise the
movements are sequential and the cost is their *sum*.

Bit-stability note (see the ROADMAP standing invariants): placement-internal
distances are computed as ``sqrt(sqrt(dx*dx + dy*dy))`` instead of
``sqrt(hypot(dx, dy))``.  CPython's ``math.hypot`` is correctly rounded but
C libm's (which numpy calls) is not, and the two disagree in the last ulp on
roughly 1% of grid-like inputs -- a vectorized scorer built on ``hypot``
could never be bit-identical to its scalar twin.  The decomposed form uses
only IEEE-754 basic operations (multiply, add, sqrt), which numpy and
CPython both round correctly, so scalar and array evaluation of every cost
in this package agree bitwise by construction.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from ...arch.spec import Architecture, RydbergSite, StorageTrap

Point = tuple[float, float]

#: Tolerance (um) when deciding whether two qubits share an SLM row.
ROW_TOL = 1e-6

#: Precompute the full all-pairs price table up to this many entries
#: (1M entries = 8 MiB of float64); larger trap universes stay lazy.
_FULL_TABLE_MAX_ENTRIES = 1 << 20

#: Precomputed price tables shared across trackers: architecture -> trap
#: universe -> read-only (T, T) table.  SA re-runs, warm starts, and
#: incremental recompiles rebuild trackers over the identical universe, so
#: the broadcast pass is paid once per (architecture, universe).
_FULL_TABLE_CACHE: WeakKeyDictionary[Architecture, dict[tuple[StorageTrap, ...], np.ndarray]] = (
    WeakKeyDictionary()
)


def sqrt_distance(a: Point, b: Point) -> float:
    """``sqrt`` of the Euclidean distance between two points."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.sqrt(math.sqrt(dx * dx + dy * dy))


def gate_cost(site_pos: Point, q_pos: Point, q2_pos: Point) -> float:
    """Movement cost of a two-qubit gate to a Rydberg site (Eq. 1).

    Args:
        site_pos: Reference position of the Rydberg site (its left trap).
        q_pos: Current position of the first target qubit.
        q2_pos: Current position of the second target qubit.
    """
    cost_q = sqrt_distance(site_pos, q_pos)
    cost_q2 = sqrt_distance(site_pos, q2_pos)
    if abs(q_pos[1] - q2_pos[1]) <= ROW_TOL:
        return max(cost_q, cost_q2)
    return cost_q + cost_q2


def stage_weight(stage_index: int) -> float:
    """Weight factor of a gate scheduled in Rydberg stage ``stage_index`` (0-based).

    ``w_g = max(0.1, 1 - 0.1 * t)`` with ``t`` the 0-based stage index, which
    matches the paper's ``max(0.1, 1 - 0.1 (t - 1))`` for 1-based stages.
    """
    return max(0.1, 1.0 - 0.1 * stage_index)


def nearest_gate_site(
    architecture: Architecture,
    q_pos: Point,
    q2_pos: Point,
) -> RydbergSite:
    """Nearest Rydberg site of a gate: the middle site of its qubits' nearest sites.

    If the nearest sites of the two target qubits are ``(r, c)`` and
    ``(r', c')`` (in the same entanglement zone), the gate's nearest site is
    ``(floor((r + r') / 2), floor((c + c') / 2))``.  When the qubits'
    nearest sites live in different entanglement zones, the site closer to
    the midpoint of the two qubits is used.
    """
    site_q = architecture.nearest_rydberg_site(*q_pos)
    site_q2 = architecture.nearest_rydberg_site(*q2_pos)
    if site_q.zone_index == site_q2.zone_index:
        return RydbergSite(
            site_q.zone_index,
            (site_q.row + site_q2.row) // 2,
            (site_q.col + site_q2.col) // 2,
        )
    midpoint = ((q_pos[0] + q2_pos[0]) / 2.0, (q_pos[1] + q2_pos[1]) / 2.0)
    return architecture.nearest_rydberg_site(*midpoint)


def initial_placement_cost(
    architecture: Architecture,
    positions: dict[int, Point],
    weighted_gates: list[tuple[float, int, int]],
) -> float:
    """Total cost of an initial placement (Eq. 2).

    Args:
        architecture: Target architecture.
        positions: Current qubit positions.
        weighted_gates: ``(weight, q, q2)`` triples for every two-qubit gate.
    """
    total = 0.0
    for weight, q, q2 in weighted_gates:
        q_pos, q2_pos = positions[q], positions[q2]
        site = nearest_gate_site(architecture, q_pos, q2_pos)
        site_pos = architecture.site_position(site)
        total += weight * gate_cost(site_pos, q_pos, q2_pos)
    return total


class IncrementalPlacementCost:
    """Eq. 2 cost maintained incrementally under qubit -> trap updates.

    Array-backed rebuild of the original dict-churning tracker.  Qubit state
    is an integer ``qubit_trap`` array indexing into a fixed *trap universe*
    (every storage trap the annealer may ever place a qubit at), and gate
    prices come from a symmetric *price table* over trap pairs: because both
    endpoints of a gate always sit at universe traps, the base cost of a
    gate is a pure function of its two trap indices.  A Metropolis move then
    re-prices the gates incident to the moved qubits with three numpy
    gathers (gate endpoints -> trap indices -> table) instead of recomputing
    grid arithmetic per gate.

    For the common single-entanglement-zone case the whole table is built in
    one broadcast pass at construction (the annealer visits far more fresh
    trap pairs per run than a lazy memo ever amortizes); otherwise it is
    NaN-sentinel lazy, filled on first gather.  Either way every entry is
    bit-identical to the scalar twin's arithmetic: the batched builder uses
    per-trap grid indices precomputed by the identical scalar round/clamp
    expression plus IEEE-754 basic operations only, and the per-move cost
    delta is accumulated as a scalar sum in reference (gate-index) order,
    keeping the acceptance sequence of the annealer bit-stable.

    State protocol: the caller owns ``qubit_trap`` and mutates it *before*
    calling :meth:`reevaluate`.  ``vectorized=False`` selects the scalar
    twin -- identical state handling and accumulation order, every price
    recomputed by scalar arithmetic with no table -- which is the
    equivalence oracle the gathered fast path is property-tested against
    (bit-identical deltas, hence bit-identical SA trajectories).
    """

    def __init__(
        self,
        architecture: Architecture,
        traps: Sequence[StorageTrap],
        qubit_trap: np.ndarray,
        weighted_gates: list[tuple[float, int, int]],
        vectorized: bool = True,
    ) -> None:
        self.architecture = architecture
        self.traps = list(traps)
        self.qubit_trap = qubit_trap
        self.gates = list(weighted_gates)
        self.vectorized = vectorized

        coords = [architecture.trap_position(trap) for trap in self.traps]
        self._tx = [c[0] for c in coords]
        self._ty = [c[1] for c in coords]

        num_gates = len(self.gates)
        self._weights = np.array([w for w, _, _ in self.gates], dtype=np.float64)
        self._gq = np.array([q for _, q, _ in self.gates], dtype=np.intp)
        self._gq2 = np.array([q2 for _, _, q2 in self.gates], dtype=np.intp)

        self.gates_of: dict[int, list[int]] = {}
        for index, (_, q, q2) in enumerate(self.gates):
            self.gates_of.setdefault(q, []).append(index)
            if q2 != q:
                self.gates_of.setdefault(q2, []).append(index)
        self._gates_of_arr = {
            q: np.array(indices, dtype=np.intp) for q, indices in self.gates_of.items()
        }
        self._no_gates = np.empty(0, dtype=np.intp)

        # With a single entanglement zone the gate's nearest site reduces to
        # pure grid arithmetic (round, clamp, midpoint) on the cached axes --
        # identical floats to nearest_gate_site, without the per-call site
        # objects.  Multi-zone architectures fall back to the general path.
        # The inlined round/clamp below must stay arithmetically identical to
        # SLMArray.nearest_trap; the equivalence tests compare this tracker
        # against initial_placement_cost and catch any drift.
        if len(architecture.entanglement_zones) == 1:
            grid = architecture.entanglement_zones[0].slms[0]
            xs, ys = architecture.site_axes(0)
            self._single_zone = (xs, ys, grid.sep[0], grid.sep[1], grid.num_col, grid.num_row)
            # Batched miss-fill support: per-trap coordinates and grid
            # indices as arrays.  col/row are computed here by the *same
            # scalar expression* as :meth:`_compute_base`, so the batched
            # fill only performs gathers and IEEE basic ops (+, -, *, /,
            # sqrt, maximum, where) on them -- bit-identical to the scalar
            # path element by element.
            self._txa = np.array(self._tx, dtype=np.float64)
            self._tya = np.array(self._ty, dtype=np.float64)
            self._cola = np.array(
                [
                    min(max(round((x - xs[0]) / grid.sep[0]), 0), grid.num_col - 1)
                    for x in self._tx
                ],
                dtype=np.intp,
            )
            self._rowa = np.array(
                [
                    min(max(round((y - ys[0]) / grid.sep[1]), 0), grid.num_row - 1)
                    for y in self._ty
                ],
                dtype=np.intp,
            )
            self._xsa = np.array(xs, dtype=np.float64)
            self._ysa = np.array(ys, dtype=np.float64)
        else:
            self._single_zone = None

        num_traps = len(self.traps)
        if (
            self.vectorized
            and self._single_zone is not None
            and num_traps * num_traps <= _FULL_TABLE_MAX_ENTRIES
        ):
            # A short annealing run visits far more fresh trap pairs than a
            # lazy memo amortizes (miss rates ~70% in practice), and numpy
            # dispatch overhead on the handful of missing pairs per move
            # costs as much as the arithmetic.  One broadcast pass over all
            # pairs up front makes every later gather a guaranteed hit.
            per_arch = _FULL_TABLE_CACHE.setdefault(architecture, {})
            universe = tuple(self.traps)
            table = per_arch.get(universe)
            if table is None:
                table = self._build_full_table()
                table.flags.writeable = False
                per_arch[universe] = table
            self._base = table
            self._full_table = True
        else:
            self._base = np.full((num_traps, num_traps), np.nan, dtype=np.float64)
            self._full_table = False

        self.gate_costs: list[float] = [0.0] * num_gates
        for index, (weight, q, q2) in enumerate(self.gates):
            self.gate_costs[index] = weight * self._fill(
                int(qubit_trap[q]), int(qubit_trap[q2])
            )
        self.total = math.fsum(self.gate_costs)

    # -- pricing --------------------------------------------------------------

    def _compute_base(self, i: int, j: int) -> float:
        """Unweighted Eq. 1 cost of a gate whose qubits sit at traps i and j.

        Pure scalar arithmetic; symmetric in (i, j) because the midpoint
        floor-division, ``max``, and float addition are all symmetric.
        """
        qx, qy = self._tx[i], self._ty[i]
        q2x, q2y = self._tx[j], self._ty[j]
        single = self._single_zone
        if single is not None:
            xs, ys, sep_x, sep_y, num_col, num_row = single
            col = min(max(round((qx - xs[0]) / sep_x), 0), num_col - 1)
            row = min(max(round((qy - ys[0]) / sep_y), 0), num_row - 1)
            col2 = min(max(round((q2x - xs[0]) / sep_x), 0), num_col - 1)
            row2 = min(max(round((q2y - ys[0]) / sep_y), 0), num_row - 1)
            site_x = xs[(col + col2) // 2]
            site_y = ys[(row + row2) // 2]
            dx = site_x - qx
            dy = site_y - qy
            cost_q = math.sqrt(math.sqrt(dx * dx + dy * dy))
            dx2 = site_x - q2x
            dy2 = site_y - q2y
            cost_q2 = math.sqrt(math.sqrt(dx2 * dx2 + dy2 * dy2))
            if abs(qy - q2y) <= ROW_TOL:
                return cost_q if cost_q >= cost_q2 else cost_q2
            return cost_q + cost_q2
        site = nearest_gate_site(self.architecture, (qx, qy), (q2x, q2y))
        site_pos = self.architecture.site_position(site)
        return gate_cost(site_pos, (qx, qy), (q2x, q2y))

    def _fill(self, i: int, j: int) -> float:
        """Memoised :meth:`_compute_base` through the symmetric price table."""
        base = self._base[i, j]
        if base == base:  # not NaN
            return float(base)
        value = self._compute_base(i, j)
        self._base[i, j] = value
        self._base[j, i] = value
        return value

    def _build_full_table(self) -> np.ndarray:
        """All-pairs price table in one broadcast pass (single-zone case).

        Identical arithmetic to :meth:`_compute_base_batch`, evaluated over
        the full (traps x traps) grid; symmetric by construction because
        every expression is symmetric under (i, j) exchange.
        """
        site_x = self._xsa[(self._cola[:, None] + self._cola[None, :]) // 2]
        site_y = self._ysa[(self._rowa[:, None] + self._rowa[None, :]) // 2]
        dx = site_x - self._txa[:, None]
        dy = site_y - self._tya[:, None]
        cost_q = np.sqrt(np.sqrt(dx * dx + dy * dy))
        dx2 = site_x - self._txa[None, :]
        dy2 = site_y - self._tya[None, :]
        cost_q2 = np.sqrt(np.sqrt(dx2 * dx2 + dy2 * dy2))
        return np.where(
            np.abs(self._tya[:, None] - self._tya[None, :]) <= ROW_TOL,
            np.maximum(cost_q, cost_q2),
            cost_q + cost_q2,
        )

    def _compute_base_batch(self, mi: np.ndarray, mj: np.ndarray) -> np.ndarray:
        """Batched :meth:`_compute_base` for the single-zone grid case.

        Bit-identical to the scalar path: the round/clamp grid indices are
        precomputed per trap by the identical scalar expression, and
        everything here is gathers plus IEEE-754 basic operations, which
        numpy and Python scalars agree on exactly.
        """
        qx, qy = self._txa[mi], self._tya[mi]
        q2x, q2y = self._txa[mj], self._tya[mj]
        site_x = self._xsa[(self._cola[mi] + self._cola[mj]) // 2]
        site_y = self._ysa[(self._rowa[mi] + self._rowa[mj]) // 2]
        dx = site_x - qx
        dy = site_y - qy
        cost_q = np.sqrt(np.sqrt(dx * dx + dy * dy))
        dx2 = site_x - q2x
        dy2 = site_y - q2y
        cost_q2 = np.sqrt(np.sqrt(dx2 * dx2 + dy2 * dy2))
        return np.where(
            np.abs(qy - q2y) <= ROW_TOL,
            np.maximum(cost_q, cost_q2),
            cost_q + cost_q2,
        )

    def _affected(self, moved_qubits: tuple[int, ...]) -> list[int]:
        """Gate indices incident to the moved qubits, in reference order."""
        if len(moved_qubits) == 1:
            return self.gates_of.get(moved_qubits[0], [])
        affected: list[int] = []
        seen: set[int] = set()
        for qubit in moved_qubits:
            for index in self.gates_of.get(qubit, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)
        return affected

    def reevaluate(self, moved_qubits: tuple[int, ...]) -> tuple[float, Callable[[], None]]:
        """Re-price the gates touching ``moved_qubits`` (``qubit_trap`` already updated).

        Returns:
            ``(delta, undo)`` where ``delta`` is the cost change and ``undo``
            restores the tracker's cached per-gate costs (the caller undoes
            the ``qubit_trap`` mutation itself).
        """
        affected = self._affected(moved_qubits)
        if self.vectorized:
            if len(moved_qubits) == 1:
                aff = self._gates_of_arr.get(moved_qubits[0], self._no_gates)
            else:
                aff = np.asarray(affected, dtype=np.intp)
            ti = self.qubit_trap[self._gq[aff]]
            tj = self.qubit_trap[self._gq2[aff]]
            base = self._base[ti, tj]
            if not self._full_table:
                missing = np.isnan(base)
                if missing.any():
                    idx = np.flatnonzero(missing)
                    if self._single_zone is not None:
                        mi, mj = ti[idx], tj[idx]
                        vals = self._compute_base_batch(mi, mj)
                        self._base[mi, mj] = vals
                        self._base[mj, mi] = vals
                        base[idx] = vals
                    else:
                        for k in idx:
                            base[k] = self._fill(int(ti[k]), int(tj[k]))
            new_costs = (self._weights[aff] * base).tolist()
        else:
            qubit_trap = self.qubit_trap
            new_costs = []
            for index in affected:
                weight, q, q2 = self.gates[index]
                new_costs.append(
                    weight * self._compute_base(int(qubit_trap[q]), int(qubit_trap[q2]))
                )

        saved = [self.gate_costs[index] for index in affected]
        delta = 0.0
        for index, new_cost in zip(affected, new_costs):
            delta += new_cost - self.gate_costs[index]
            self.gate_costs[index] = new_cost
        self.total += delta

        def undo() -> None:
            for index, old_cost in zip(affected, saved):
                self.gate_costs[index] = old_cost
            self.total -= delta

        return delta, undo


def storage_return_cost(
    trap_pos: Point,
    qubit_pos: Point,
    related_pos: Point | None,
    alpha: float = 0.1,
) -> float:
    """Cost of returning a qubit to a storage trap (Eq. 3).

    Args:
        trap_pos: Candidate storage-trap position.
        qubit_pos: The qubit's current position (in the entanglement zone).
        related_pos: Position of the qubit's related qubit (its partner in
            the next Rydberg stage), or None if it has none.
        alpha: Lookahead weighting factor.
    """
    cost = sqrt_distance(trap_pos, qubit_pos)
    if related_pos is not None:
        cost += alpha * sqrt_distance(trap_pos, related_pos)
    return cost
