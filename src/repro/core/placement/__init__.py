"""Reuse-aware placement: initial (SA), reuse matching, gate and storage placement."""

from .annealing import AnnealingResult, anneal
from .dynamic import DynamicPlacer
from .gate_placement import GatePlacementError, place_gates
from .initial import PlacementError, sa_placement, trivial_placement
from .reuse import ReuseDecision, find_reuse_matching
from .storage_placement import StoragePlacementError, place_returning_qubits

__all__ = [
    "AnnealingResult",
    "DynamicPlacer",
    "GatePlacementError",
    "PlacementError",
    "ReuseDecision",
    "StoragePlacementError",
    "anneal",
    "find_reuse_matching",
    "place_gates",
    "place_returning_qubits",
    "sa_placement",
    "trivial_placement",
]
