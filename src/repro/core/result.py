"""The unified compilation result shared by every backend.

:class:`CompileResult` is the single result type produced by ZAC and by all
baseline compilers (Enola, Atomique, NALAC, the superconducting transpiler,
and the ideal bounds).  It bundles the execution metrics and the fidelity
breakdown that every backend emits, plus the ZAC-only artifacts (the ZAIR
program, the staged circuit, and the placement plan) when available.

The type is JSON-serializable: :meth:`CompileResult.to_dict` /
:meth:`CompileResult.to_json` and :meth:`CompileResult.from_dict` /
:meth:`CompileResult.from_json` round-trip the metrics and fidelity payload,
so sweep results can be persisted to disk, sharded across workers, and merged
afterwards (:func:`save_results` / :func:`load_results` / :func:`merge_results`).
The in-memory-only artifacts (``program`` / ``staged`` / ``plan``) are not
serialized; use :meth:`repro.zair.program.ZAIRProgram.dump` for the program.

The legacy names ``repro.core.compiler.CompilationResult`` and
``repro.baselines.result.BaselineResult`` are deprecated aliases of this
class.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

from ..fidelity.model import ExecutionMetrics, FidelityBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..arch.spec import Architecture
    from ..circuits.scheduling import StagedCircuit
    from ..zair.program import ZAIRProgram
    from .model import PlacementPlan

#: Version tag written into serialized results (bump on incompatible changes).
SCHEMA_VERSION = 1


@dataclass
class CompileResult:
    """Everything produced by one compiler run, for any backend.

    Attributes:
        circuit_name: Name of the compiled circuit.
        architecture_name: Name of the target architecture / device.
        compiler_name: Name of the compiler (backend) that produced the result.
        metrics: Raw execution counts and timings.
        fidelity: Per-error-source fidelity breakdown.
        program: Compiled ZAIR program (every registered backend emits one;
            in-memory-only, like ``staged`` / ``plan``).
        staged: Preprocessed staged circuit (ZAC-family backends only).
        plan: Placement plan (ZAC-family backends only).
        architecture: The architecture the program targets (``None`` for
            fixed-coupling programs, which carry their coupling graph on the
            program itself).  In-memory-only; used to validate and replay
            ``program``.
        validated: The emitted program has already passed
            :func:`repro.zair.validate_program` (set by the registry compile
            path); consumers such as the fuzz harness skip a redundant second
            validation pass when this is set.  In-memory bookkeeping, not
            serialized.
    """

    circuit_name: str
    architecture_name: str
    compiler_name: str = ""
    metrics: ExecutionMetrics | None = None
    fidelity: FidelityBreakdown | None = None
    program: ZAIRProgram | None = None
    staged: StagedCircuit | None = None
    plan: PlacementPlan | None = None
    architecture: Architecture | None = None
    validated: bool = False

    #: Compilation phases surfaced in :meth:`summary` (in pipeline order).
    PHASES = ("preprocess", "place", "route", "schedule", "fidelity")

    # -- convenience accessors ------------------------------------------------

    def _require(self, *names: str) -> None:
        missing = [name for name in names if getattr(self, name) is None]
        if missing:
            raise ValueError(
                f"CompileResult for {self.circuit_name!r} has no {', '.join(missing)} "
                "(was the pipeline run without the schedule/fidelity passes?)"
            )

    @property
    def total_fidelity(self) -> float:
        self._require("fidelity")
        return self.fidelity.total

    @property
    def duration_us(self) -> float:
        self._require("metrics")
        return self.metrics.duration_us

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline numbers (for reports / CSV)."""
        self._require("metrics", "fidelity")
        summary = {
            "fidelity": self.fidelity.total,
            "fidelity_2q": self.fidelity.two_q_gate_with_excitation,
            "fidelity_1q": self.fidelity.one_q_gate,
            "fidelity_transfer": self.fidelity.atom_transfer,
            "fidelity_decoherence": self.fidelity.decoherence,
            "duration_us": self.metrics.duration_us,
            "num_2q_gates": self.metrics.num_2q_gates,
            "num_1q_gates": self.metrics.num_1q_gates,
            "num_transfers": self.metrics.num_transfers,
            "num_excitations": self.metrics.num_excitations,
            "num_rydberg_stages": self.metrics.num_rydberg_stages,
            "num_movements": self.metrics.num_movements,
            "num_instructions": self.metrics.num_instructions,
            "num_epochs": self.metrics.num_epochs,
            "compile_time_s": self.metrics.compile_time_s,
        }
        for phase in self.PHASES:
            summary[f"time_{phase}_s"] = self.metrics.phase_times_s.get(phase, 0.0)
        # Total wall clock of the compile: the per-phase sum when the pipeline
        # instrumented its phases, otherwise the end-to-end timer -- so sweep
        # reports can compute throughput without re-walking programs.
        phase_total = sum(self.metrics.phase_times_s.values())
        summary["time_total_s"] = phase_total if phase_total > 0.0 else self.metrics.compile_time_s
        return summary

    # -- serialization --------------------------------------------------------

    def to_dict(self, include_program: bool = False) -> dict[str, Any]:
        """Serialize the result into a JSON-compatible dictionary.

        Args:
            include_program: Also embed the ZAIR program dictionary (write-only
                payload; :meth:`from_dict` does not reconstruct it).
        """
        self._require("metrics", "fidelity")
        data: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "circuit_name": self.circuit_name,
            "architecture_name": self.architecture_name,
            "compiler_name": self.compiler_name,
            "metrics": _metrics_to_dict(self.metrics),
            "fidelity": _fidelity_to_dict(self.fidelity),
        }
        if include_program and self.program is not None:
            data["program"] = self.program.to_dict()
        return data

    def to_json(self, indent: int | None = None, include_program: bool = False) -> str:
        return json.dumps(
            self.to_dict(include_program=include_program), indent=indent, sort_keys=True
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompileResult":
        """Rebuild a result from :meth:`to_dict` output.

        The in-memory artifacts (``program`` / ``staged`` / ``plan``) are not
        part of the serialized payload and come back as ``None``.

        Raises:
            ValueError: If the payload was written by an incompatible schema.
        """
        schema = data.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"serialized CompileResult has schema {schema}, "
                f"this version reads schema {SCHEMA_VERSION}"
            )
        return cls(
            circuit_name=data["circuit_name"],
            architecture_name=data["architecture_name"],
            compiler_name=data.get("compiler_name", ""),
            metrics=_metrics_from_dict(data["metrics"]),
            fidelity=_fidelity_from_dict(data["fidelity"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "CompileResult":
        return cls.from_dict(json.loads(text))


# -- (de)serialization of the component types ---------------------------------


def _metrics_to_dict(metrics: ExecutionMetrics) -> dict[str, Any]:
    data: dict[str, Any] = {}
    for spec in fields(ExecutionMetrics):
        value = getattr(metrics, spec.name)
        if spec.name == "qubit_busy_us":
            # JSON object keys are strings; emit them that way so that
            # to_json(from_json(text)) is byte-identical to text.
            value = {str(qubit): busy for qubit, busy in sorted(value.items())}
        data[spec.name] = value
    return data


def _metrics_from_dict(data: dict[str, Any]) -> ExecutionMetrics:
    known = {spec.name for spec in fields(ExecutionMetrics)}
    kwargs = {key: value for key, value in data.items() if key in known}
    kwargs["qubit_busy_us"] = {
        int(qubit): float(busy) for qubit, busy in data.get("qubit_busy_us", {}).items()
    }
    kwargs["phase_times_s"] = dict(data.get("phase_times_s", {}))
    return ExecutionMetrics(**kwargs)


def _fidelity_to_dict(fidelity: FidelityBreakdown) -> dict[str, float]:
    return {spec.name: getattr(fidelity, spec.name) for spec in fields(FidelityBreakdown)}


def _fidelity_from_dict(data: dict[str, Any]) -> FidelityBreakdown:
    return FidelityBreakdown(
        **{spec.name: float(data[spec.name]) for spec in fields(FidelityBreakdown)}
    )


# -- persisted sweeps: save / load / merge -------------------------------------


def results_to_json(results: list[CompileResult], indent: int | None = 2) -> str:
    """Serialize a list of results (one shard of a sweep) to JSON."""
    return json.dumps([r.to_dict() for r in results], indent=indent, sort_keys=True)


def results_from_json(text: str) -> list[CompileResult]:
    """Parse a list of results serialized by :func:`results_to_json`."""
    return [CompileResult.from_dict(entry) for entry in json.loads(text)]


def save_results(path: str, results: list[CompileResult]) -> None:
    """Write one shard of sweep results to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(results_to_json(results))


def load_results(path: str) -> list[CompileResult]:
    """Read one shard of sweep results from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return results_from_json(handle.read())


def result_shard_name(digest: str) -> str:
    """Relative path of a content-addressed result shard.

    Shards are fanned out over 256 two-hex-character subdirectories so a
    large disk cache never puts tens of thousands of files in one directory:
    ``result_shard_name("abcd...") == "ab/abcd....jsonl"``.
    """
    if len(digest) < 3:
        raise ValueError(f"shard digest {digest!r} is too short")
    return f"{digest[:2]}/{digest}.jsonl"


def save_results_stream(
    path: str, results: Iterable[CompileResult], header: dict[str, Any] | None = None
) -> None:
    """Write results as JSON lines (one result per line, streamable back).

    Unlike :func:`save_results` (one JSON array, loaded wholesale), the JSONL
    layout lets :func:`iter_results` stream entries one at a time -- the disk
    compile cache and shard mergers never hold a whole shard in memory.  An
    optional ``header`` dict is written as a first line of the form
    ``{"shard_header": {...}}`` (skipped by the streaming reader, returned by
    :func:`read_shard_header`); each following line is exactly the
    :meth:`CompileResult.to_dict` payload.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header is not None:
            handle.write(json.dumps({"shard_header": header}, sort_keys=True) + "\n")
        for result in results:
            handle.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")


def read_shard_header(path: str) -> dict[str, Any] | None:
    """The ``header`` dict a shard was saved with (``None`` when absent)."""
    with open(path, encoding="utf-8") as handle:
        first = handle.readline().strip()
    if not first:
        return None
    data = json.loads(first)
    if isinstance(data, dict) and "shard_header" in data:
        return data["shard_header"]
    return None


def iter_results(path: str):
    """Stream results from a shard file, one :class:`CompileResult` at a time.

    Reads both layouts: JSONL shards written by :func:`save_results_stream`
    (the header line, when present, is skipped) and legacy JSON-array files
    written by :func:`save_results` (loaded eagerly, yielded one by one).
    """
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
        stripped = first.lstrip()
        if stripped.startswith("["):
            # Legacy array layout: no streaming possible, parse wholesale.
            text = first + handle.read()
            yield from results_from_json(text)
            return
        if stripped:
            data = json.loads(first)
            if not (isinstance(data, dict) and "shard_header" in data):
                yield CompileResult.from_dict(data)
        for line in handle:
            if line.strip():
                yield CompileResult.from_dict(json.loads(line))


def merge_results(*shards: list[CompileResult]) -> list[CompileResult]:
    """Merge result shards, dropping exact duplicates.

    Duplicates are detected on the full serialized payload, so re-merging a
    shard (or loading the same file twice) is idempotent, while runs that
    share a (circuit, compiler, architecture) key but differ in their data
    -- e.g. the same circuit under two ZAC configs, which both report
    ``compiler_name == "Zoned-ZAC"`` -- are all kept.
    """
    merged: list[CompileResult] = []
    seen: set[str] = set()
    for shard in shards:
        for result in shard:
            key = result.to_json()
            if key in seen:
                continue
            seen.add(key)
            merged.append(result)
    return merged
