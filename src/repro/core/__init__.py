"""ZAC: the reuse-aware zoned-architecture compiler (the paper's core contribution)."""

from .compiler import CompilationResult, ZACCompiler
from .config import ZACConfig
from .model import (
    LEFT,
    RIGHT,
    GatePlacementEntry,
    Location,
    Movement,
    PlacementPlan,
    StagePlan,
    location_position,
    location_qloc,
)

__all__ = [
    "CompilationResult",
    "GatePlacementEntry",
    "LEFT",
    "Location",
    "Movement",
    "PlacementPlan",
    "RIGHT",
    "StagePlan",
    "ZACCompiler",
    "ZACConfig",
    "location_position",
    "location_qloc",
]
