"""ZAC: the reuse-aware zoned-architecture compiler (the paper's core contribution)."""

from .compiler import CompilationResult, ZACCompiler
from .config import ZACConfig
from .pipeline import (
    FidelityPass,
    Pass,
    PassContext,
    PassPipeline,
    PipelineError,
    PlacePass,
    PreprocessPass,
    RoutePass,
    SchedulePass,
    default_pipeline,
)
from .result import (
    CompileResult,
    load_results,
    merge_results,
    results_from_json,
    results_to_json,
    save_results,
)
from .model import (
    LEFT,
    RIGHT,
    GatePlacementEntry,
    Location,
    Movement,
    PlacementPlan,
    StagePlan,
    location_position,
    location_qloc,
)

__all__ = [
    "CompilationResult",
    "CompileResult",
    "FidelityPass",
    "GatePlacementEntry",
    "LEFT",
    "Location",
    "Movement",
    "Pass",
    "PassContext",
    "PassPipeline",
    "PipelineError",
    "PlacePass",
    "PlacementPlan",
    "PreprocessPass",
    "RIGHT",
    "RoutePass",
    "SchedulePass",
    "StagePlan",
    "ZACCompiler",
    "ZACConfig",
    "default_pipeline",
    "load_results",
    "location_position",
    "location_qloc",
    "merge_results",
    "results_from_json",
    "results_to_json",
    "save_results",
]
