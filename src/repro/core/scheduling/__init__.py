"""Load-balancing scheduling of rearrangement jobs over multiple AODs."""

from .load_balance import JobSchedule, schedule_epoch
from .scheduler import ScheduleOutput, Scheduler

__all__ = ["JobSchedule", "ScheduleOutput", "Scheduler", "schedule_epoch"]
