"""Instruction scheduling: building the timed ZAIR program (Section VI).

The scheduler walks the preprocessed stage list in program order, emitting

* ``1qGate`` instructions (executed sequentially, conservatively),
* rearrangement jobs for the incoming movement epoch of each Rydberg stage
  (distributed over the available AODs with LPT load balancing),
* the ``rydberg`` instruction itself, and
* the outgoing movement epoch,

while accumulating the :class:`~repro.fidelity.model.ExecutionMetrics` the
fidelity model consumes: gate counts, atom transfers, idle-qubit excitations,
per-qubit busy times, and the overall makespan.

Grouped instructions are processed sequentially (movement in, gates,
movement out), which automatically respects trap and qubit dependencies; the
load balancer exploits parallelism *within* each movement epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...arch.spec import Architecture
from ...circuits.scheduling import OneQStage, RydbergStage, StagedCircuit
from ...fidelity.model import ExecutionMetrics
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ...zair.instructions import InitInst, OneQGateInst, RearrangeJob, RydbergInst
from ...zair.lowering import job_max_distance_um, job_total_distance_um
from ...zair.program import ZAIRProgram
from ..model import Location, Movement, PlacementPlan, location_qloc
from ..routing.jobs import build_jobs
from .load_balance import schedule_epoch


@dataclass
class ScheduleOutput:
    """Result of scheduling: the timed program plus its execution metrics."""

    program: ZAIRProgram
    metrics: ExecutionMetrics


class Scheduler:
    """Builds the timed ZAIR program from a placement plan."""

    def __init__(
        self,
        architecture: Architecture,
        params: NeutralAtomParams = NEUTRAL_ATOM,
        lower_jobs: bool = True,
        fast_routing: bool = True,
    ) -> None:
        self.architecture = architecture
        self.params = params
        self.lower_jobs = lower_jobs
        self.fast_routing = fast_routing
        self._route_time_s = 0.0

    def run(
        self,
        staged: StagedCircuit,
        plan: PlacementPlan,
        prebuilt_jobs: dict[tuple[int, str], list[RearrangeJob]] | None = None,
    ) -> ScheduleOutput:
        """Schedule a staged circuit according to its placement plan.

        Args:
            staged: The preprocessed circuit.
            plan: Placement plan with one entry per Rydberg stage.
            prebuilt_jobs: Rearrangement jobs already built by a routing pass,
                keyed by ``(rydberg_stage_index, "in"|"out")``.  Epochs missing
                from the mapping (or the whole mapping, when ``None``) are
                routed here on the fly.
        """
        run_start = time.perf_counter()
        self._route_time_s = 0.0
        program = ZAIRProgram(
            num_qubits=staged.num_qubits, architecture_name=self.architecture.name
        )
        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        location: dict[int, Location] = {
            q: Location.at_storage(trap) for q, trap in plan.initial.items()
        }
        program.instructions.append(
            InitInst(
                init_locs=[
                    location_qloc(self.architecture, q, loc) for q, loc in sorted(location.items())
                ]
            )
        )

        clock = 0.0
        rydberg_index = 0
        prebuilt = prebuilt_jobs or {}
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                clock = self._emit_1q_stage(program, metrics, location, stage, clock)
            elif isinstance(stage, RydbergStage):
                if rydberg_index >= len(plan.stages):
                    raise ValueError("placement plan has fewer stages than the circuit")
                stage_plan = plan.stages[rydberg_index]
                clock = self._emit_epoch(
                    program,
                    metrics,
                    location,
                    stage_plan.incoming,
                    clock,
                    jobs=prebuilt.get((rydberg_index, "in")),
                )
                clock = self._emit_rydberg(program, metrics, location, stage_plan, clock)
                clock = self._emit_epoch(
                    program,
                    metrics,
                    location,
                    stage_plan.outgoing,
                    clock,
                    jobs=prebuilt.get((rydberg_index, "out")),
                )
                rydberg_index += 1

        metrics.duration_us = clock
        total = time.perf_counter() - run_start
        metrics.phase_times_s["route"] = self._route_time_s
        metrics.phase_times_s["schedule"] = max(0.0, total - self._route_time_s)
        return ScheduleOutput(program=program, metrics=metrics)

    # -- emission helpers -----------------------------------------------------

    def _emit_1q_stage(
        self,
        program: ZAIRProgram,
        metrics: ExecutionMetrics,
        location: dict[int, Location],
        stage: OneQStage,
        clock: float,
    ) -> float:
        if not stage.gates:
            return clock
        locs = []
        unitaries = []
        for gate in stage.gates:
            qubit = gate.qubits[0]
            locs.append(location_qloc(self.architecture, qubit, location[qubit]))
            unitaries.append(tuple(gate.params) if gate.params else (0.0, 0.0, 0.0))
            metrics.qubit_busy_us[qubit] += self.params.t_1q_us
        # Conservative model: 1Q gates execute sequentially (Section VII-B).
        duration = len(stage.gates) * self.params.t_1q_us
        inst = OneQGateInst(
            locs=locs, unitaries=unitaries, begin_time=clock, end_time=clock + duration
        )
        program.instructions.append(inst)
        metrics.num_1q_gates += len(stage.gates)
        return clock + duration

    def _emit_epoch(
        self,
        program: ZAIRProgram,
        metrics: ExecutionMetrics,
        location: dict[int, Location],
        movements: list[Movement],
        clock: float,
        jobs: list[RearrangeJob] | None = None,
    ) -> float:
        if not movements:
            return clock
        if jobs is None:
            route_start = time.perf_counter()
            jobs = build_jobs(
                self.architecture, movements, lower=self.lower_jobs, fast=self.fast_routing
            )
            self._route_time_s += time.perf_counter() - route_start
        durations = [self._job_duration(job) for job in jobs]
        schedules, makespan = schedule_epoch(durations, self.architecture.num_aods)
        for job, slot in zip(jobs, schedules):
            job.aod_id = slot.aod_id
            job.begin_time = clock + slot.start
            job.end_time = clock + slot.end
        # Accumulate in program (begin-time) order so float sums match the
        # interpreter's replay of the emitted instruction stream exactly.
        for job in sorted(jobs, key=lambda j: j.begin_time):
            program.instructions.append(job)
            metrics.num_transfers += 2 * job.num_qubits
            metrics.num_movements += job.num_qubits
            metrics.total_move_distance_um += job_total_distance_um(self.architecture, job)
            for qubit in job.qubits:
                metrics.qubit_busy_us[qubit] += 2.0 * self.params.t_transfer_us
        for movement in movements:
            location[movement.qubit] = movement.destination
        return clock + makespan

    def _job_duration(self, job: RearrangeJob) -> float:
        move = job_max_distance_um(self.architecture, job)
        from ...fidelity.movement import movement_time_us

        return 2.0 * self.params.t_transfer_us + movement_time_us(move, self.params)

    def _emit_rydberg(
        self,
        program: ZAIRProgram,
        metrics: ExecutionMetrics,
        location: dict[int, Location],
        stage_plan,
        clock: float,
    ) -> float:
        """Emit the stage's Rydberg pulses, one per illuminated zone.

        On a multi-zone architecture a stage's gates may be placed across
        several entanglement zones; each zone's laser fires its own pulse
        (simultaneously -- the zones are independent), so one ``rydberg``
        instruction is emitted per zone with exactly that zone's gates.
        """
        duration = self.params.t_2q_us
        gates_by_zone: dict[int, list[tuple[int, int]]] = {}
        for entry in stage_plan.gates:
            gates_by_zone.setdefault(entry.site.zone_index, []).append(tuple(entry.qubits))
        for zone_index in sorted(gates_by_zone):
            gates = gates_by_zone[zone_index]
            inst = RydbergInst(
                zone_id=zone_index,
                gates=gates,
                begin_time=clock,
                end_time=clock + duration,
            )
            program.instructions.append(inst)
            gate_qubits = {q for gate in gates for q in gate}
            for qubit in gate_qubits:
                metrics.qubit_busy_us[qubit] += duration
            metrics.num_2q_gates += len(gates)
            metrics.num_rydberg_stages += 1
            # Idle qubits caught inside the illuminated zone suffer excitation
            # errors.
            idle_in_zone = [
                q
                for q, loc in location.items()
                if loc.in_entanglement_zone
                and loc.site is not None
                and loc.site.zone_index == zone_index
                and q not in gate_qubits
            ]
            metrics.num_excitations += len(idle_in_zone)
        return clock + duration
