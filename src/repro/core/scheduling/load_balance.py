"""Load-balanced assignment of rearrangement jobs to AODs (Section VI).

Within one movement epoch the jobs are independent (no two touch the same
qubit or trap), so assigning them to AODs is a classic identical-parallel-
machine scheduling problem.  The paper's strategy -- allocate the
longest-duration job to the earliest-available AOD -- is the LPT (longest
processing time first) heuristic implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class JobSchedule:
    """Start/end times and AOD assignment of one job within an epoch."""

    job_index: int
    aod_id: int
    start: float
    end: float


def schedule_epoch(durations: list[float], num_aods: int) -> tuple[list[JobSchedule], float]:
    """Assign jobs with the given durations to ``num_aods`` AODs using LPT.

    Args:
        durations: Duration of each job (same order as the job list).
        num_aods: Number of available AODs.

    Returns:
        ``(schedules, makespan)`` -- per-job schedules (in original job
        order) and the epoch makespan.
    """
    if num_aods <= 0:
        raise ValueError("need at least one AOD")
    if not durations:
        return [], 0.0

    order = sorted(range(len(durations)), key=lambda i: durations[i], reverse=True)
    available = [0.0] * num_aods
    schedules: dict[int, JobSchedule] = {}
    for job_index in order:
        aod = min(range(num_aods), key=lambda a: available[a])
        start = available[aod]
        end = start + durations[job_index]
        available[aod] = end
        schedules[job_index] = JobSchedule(job_index=job_index, aod_id=aod, start=start, end=end)

    makespan = max(available)
    return [schedules[i] for i in range(len(durations))], makespan
