"""Baseline compilers: monolithic (Enola, Atomique), zoned (NALAC),
superconducting (Heron / grid), and idealised upper bounds."""

from .ideal import IdealBound, idealized_result, idealized_result_legacy, maximal_reuse_count
from .lowering import BaselineProgramBuilder
from .monolithic.atomique import AtomiqueCompiler, partition_qubits
from .monolithic.enola import EnolaCompiler
from .result import BaselineResult, CompileResult
from .superconducting.coupling import grid_coupling, heavy_hex_coupling
from .superconducting.routing import RoutedCircuit, RoutingError, route
from .superconducting.transpiler import SuperconductingCompiler
from .zoned.nalac import NALACCompiler

__all__ = [
    "AtomiqueCompiler",
    "BaselineProgramBuilder",
    "BaselineResult",
    "CompileResult",
    "EnolaCompiler",
    "IdealBound",
    "NALACCompiler",
    "RoutedCircuit",
    "RoutingError",
    "SuperconductingCompiler",
    "grid_coupling",
    "heavy_hex_coupling",
    "idealized_result",
    "idealized_result_legacy",
    "maximal_reuse_count",
    "partition_qubits",
    "route",
]
