"""Shared ZAIR emission for the baseline compilers.

The movement-based baselines (Enola, NALAC) plan their schedules in terms of
:class:`~repro.core.model.Location` / :class:`~repro.core.model.Movement`
just like ZAC's scheduler; this module turns those plans into a timed
:class:`~repro.zair.program.ZAIRProgram` so the shared interpreter
(:mod:`repro.zair.interpret`) can derive their metrics and fidelity from the
same instruction stream the validator checks.

Timing follows the legacy per-backend accounting exactly: one-qubit stages
run sequentially, a movement epoch is partitioned into AOD-compatible
rearrangement jobs whose durations (pickup + move + drop-off) are
load-balanced over the available AODs, and each Rydberg pulse takes
``t_2q``.
"""

from __future__ import annotations

from ..arch.spec import Architecture
from ..circuits.scheduling import OneQStage
from ..core.model import Location, Movement, location_qloc
from ..core.routing.jobs import movements_to_job, partition_movements_staged
from ..core.scheduling.load_balance import schedule_epoch
from ..fidelity.movement import movement_time_us
from ..fidelity.params import NeutralAtomParams
from ..zair.instructions import InitInst, OneQGateInst, RearrangeJob, RydbergInst
from ..zair.lowering import job_max_distance_um
from ..zair.program import ZAIRProgram

Trap = tuple[int, int, int]


class BaselineProgramBuilder:
    """Accumulates a timed ZAIR program while a baseline walks its stages.

    Besides appending instructions, the builder tracks trap occupancy so the
    jobs of one movement epoch can be appended in a *replay-feasible* order:
    the epoch's jobs execute concurrently on the hardware, but the program
    stream is replayed sequentially by the validator, so a job dropping a
    qubit onto a trap that another job of the same epoch vacates must come
    second.
    """

    def __init__(
        self,
        architecture: Architecture,
        num_qubits: int,
        params: NeutralAtomParams,
    ) -> None:
        self.architecture = architecture
        self.params = params
        self.program = ZAIRProgram(
            num_qubits=num_qubits, architecture_name=architecture.name
        )
        self._trap_of: dict[int, Trap] = {}
        self._occupied: set[Trap] = set()

    # -- emission -------------------------------------------------------------

    def emit_init(self, location: dict[int, Location]) -> None:
        """Emit the init instruction from the initial qubit locations."""
        init_locs = [
            location_qloc(self.architecture, qubit, loc)
            for qubit, loc in sorted(location.items())
        ]
        self.program.instructions.append(InitInst(init_locs=init_locs))
        for loc in init_locs:
            self._trap_of[loc.qubit] = loc.trap
            self._occupied.add(loc.trap)

    def emit_1q_stage(
        self, stage: OneQStage, location: dict[int, Location], clock: float
    ) -> float:
        """Emit a sequential single-qubit gate stage; returns the new clock."""
        if not stage.gates:
            return clock
        locs = []
        unitaries = []
        for gate in stage.gates:
            qubit = gate.qubits[0]
            locs.append(location_qloc(self.architecture, qubit, location[qubit]))
            unitaries.append(tuple(gate.params) if gate.params else (0.0, 0.0, 0.0))
        duration = len(stage.gates) * self.params.t_1q_us
        self.program.instructions.append(
            OneQGateInst(
                locs=locs, unitaries=unitaries, begin_time=clock, end_time=clock + duration
            )
        )
        return clock + duration

    def emit_epoch(
        self, movements: list[Movement], clock: float, fast: bool = True
    ) -> float:
        """Emit one movement epoch as load-balanced rearrangement jobs."""
        if not movements:
            return clock
        groups = partition_movements_staged(self.architecture, movements, fast=fast)
        jobs = [movements_to_job(self.architecture, group, lower=False) for group in groups]
        durations = [
            2.0 * self.params.t_transfer_us
            + movement_time_us(job_max_distance_um(self.architecture, job), self.params)
            for job in jobs
        ]
        slots, makespan = schedule_epoch(durations, self.architecture.num_aods)
        for job, slot in zip(jobs, slots):
            job.aod_id = slot.aod_id
            job.begin_time = clock + slot.start
            job.end_time = clock + slot.end
        for job in self._replay_order(jobs):
            self.program.instructions.append(job)
            self._apply_job(job)
        return clock + makespan

    def emit_rydberg(
        self, pairs: list[tuple[int, int]], zone_id: int, clock: float
    ) -> float:
        """Emit one Rydberg pulse over ``zone_id``; returns the new clock."""
        duration = self.params.t_2q_us
        self.program.instructions.append(
            RydbergInst(
                zone_id=zone_id,
                gates=list(pairs),
                begin_time=clock,
                end_time=clock + duration,
            )
        )
        return clock + duration

    # -- replay-order bookkeeping ---------------------------------------------

    def _apply_job(self, job: RearrangeJob) -> None:
        for loc in job.begin_locs:
            self._occupied.discard(loc.trap)
        for loc in job.end_locs:
            self._trap_of[loc.qubit] = loc.trap
            self._occupied.add(loc.trap)

    def _job_feasible(self, job: RearrangeJob) -> bool:
        picked = {loc.trap for loc in job.begin_locs}
        for loc in job.begin_locs:
            if self._trap_of.get(loc.qubit) != loc.trap:
                return False
        for loc in job.end_locs:
            if loc.trap in self._occupied and loc.trap not in picked:
                return False
        return True

    def _replay_order(self, jobs: list[RearrangeJob]) -> list[RearrangeJob]:
        """Order an epoch's jobs so sequential replay respects occupancy.

        The staged partition already yields groups in a replay-feasible
        (planning) order, so this normally returns the jobs unchanged; the
        greedy feasibility scan is kept as a safety net for job lists built
        another way.  If no job is feasible, fall back to the given order
        and let validation report the conflict.
        """
        pending = list(jobs)
        ordered: list[RearrangeJob] = []
        # Snapshot: _apply_job during ordering, then restore before the real
        # emission loop applies them again.
        trap_backup = dict(self._trap_of)
        occupied_backup = set(self._occupied)
        while pending:
            for index, job in enumerate(pending):
                if self._job_feasible(job):
                    break
            else:
                index = 0
            job = pending.pop(index)
            self._apply_job(job)
            ordered.append(job)
        self._trap_of = trap_backup
        self._occupied = occupied_backup
        return ordered
