"""Common result type for the baseline compilers.

Baseline compilers (Enola, Atomique, NALAC, the superconducting transpiler,
and the ideal bounds) do not emit full ZAIR programs; they produce execution
metrics and a fidelity breakdown that the experiment harness consumes through
the same interface as :class:`repro.core.compiler.CompilationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fidelity.model import ExecutionMetrics, FidelityBreakdown


@dataclass
class BaselineResult:
    """Metrics and fidelity of one baseline compilation."""

    circuit_name: str
    architecture_name: str
    compiler_name: str
    metrics: ExecutionMetrics
    fidelity: FidelityBreakdown

    @property
    def total_fidelity(self) -> float:
        return self.fidelity.total

    @property
    def duration_us(self) -> float:
        return self.metrics.duration_us

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline numbers (for reports / CSV)."""
        return {
            "fidelity": self.fidelity.total,
            "fidelity_2q": self.fidelity.two_q_gate_with_excitation,
            "fidelity_1q": self.fidelity.one_q_gate,
            "fidelity_transfer": self.fidelity.atom_transfer,
            "fidelity_decoherence": self.fidelity.decoherence,
            "duration_us": self.metrics.duration_us,
            "num_2q_gates": self.metrics.num_2q_gates,
            "num_1q_gates": self.metrics.num_1q_gates,
            "num_transfers": self.metrics.num_transfers,
            "num_excitations": self.metrics.num_excitations,
            "num_rydberg_stages": self.metrics.num_rydberg_stages,
            "num_movements": self.metrics.num_movements,
            "compile_time_s": self.metrics.compile_time_s,
        }
