"""Deprecated alias module: baseline results are plain ``CompileResult``\\ s.

Baseline compilers (Enola, Atomique, NALAC, the superconducting transpiler,
and the ideal bounds) do not emit full ZAIR programs; they produce execution
metrics and a fidelity breakdown.  Since the result unification they return
the same :class:`repro.core.result.CompileResult` as the ZAC compiler, with
the program/staged/plan artifacts left as ``None``.  ``BaselineResult`` is
kept as an alias so pre-registry imports keep working.
"""

from __future__ import annotations

from ..core.result import CompileResult

#: Deprecated alias, kept for the pre-registry API.
BaselineResult = CompileResult

__all__ = ["BaselineResult", "CompileResult"]
