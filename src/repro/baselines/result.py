"""Deprecated alias module: baseline results are plain ``CompileResult``\\ s.

Baseline compilers (Enola, Atomique, NALAC, the superconducting transpiler,
and the ideal bounds) lower their schedules to ZAIR like ZAC does and return
the same :class:`repro.core.result.CompileResult`, with the emitted program
attached and the metrics/fidelity derived by the shared interpreter
(:mod:`repro.zair.interpret`).  ``BaselineResult`` is kept as an alias so
pre-registry imports keep working.
"""

from __future__ import annotations

from ..core.result import CompileResult

#: Deprecated alias, kept for the pre-registry API.
BaselineResult = CompileResult

__all__ = ["BaselineResult", "CompileResult"]
