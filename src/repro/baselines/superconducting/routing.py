"""SABRE-style SWAP routing for superconducting coupling graphs.

This plays the role of Qiskit's SabreSwap in the paper's superconducting
baseline: map program qubits onto the device, then insert SWAPs so every
two-qubit gate acts on coupled physical qubits.  The implementation follows
the SABRE recipe -- a front layer of unresolved gates, a heuristic score
combining the front layer and a lookahead window of upcoming gates, and
greedy selection of the best SWAP -- without Qiskit's additional passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ...circuits.circuit import QuantumCircuit
from ...circuits.gates import Gate

#: Weight of the lookahead (extended set) term in the SABRE score.
_LOOKAHEAD_WEIGHT = 0.5
#: Size of the lookahead window.
_LOOKAHEAD_SIZE = 20


class RoutingError(RuntimeError):
    """Raised when a circuit cannot be routed onto the coupling graph."""


@dataclass
class RoutedCircuit:
    """Result of routing: the physical circuit plus bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    num_swaps: int = 0
    swap_depth_overhead: int = 0
    routed_2q_gates: list[tuple[int, int]] = field(default_factory=list)


def _device_path_order(coupling: nx.Graph) -> list[int]:
    """A path-like ordering of device qubits (greedy DFS preferring low degree).

    Consecutive entries are adjacent whenever possible, so chain-structured
    interaction graphs map with few or no SWAPs.
    """
    start = min(coupling.nodes, key=lambda n: (coupling.degree(n), n))
    order: list[int] = []
    visited: set[int] = set()
    current = start
    while True:
        order.append(current)
        visited.add(current)
        neighbours = [n for n in coupling.neighbors(current) if n not in visited]
        if neighbours:
            current = min(neighbours, key=lambda n: (coupling.degree(n), n))
            continue
        remaining = [n for n in coupling.nodes if n not in visited]
        if not remaining:
            break
        # Jump to the unvisited device qubit closest to the current one.
        lengths = nx.single_source_shortest_path_length(coupling, current)
        current = min(remaining, key=lambda n: (lengths.get(n, 10**9), n))
    return order


def _program_chain_order(circuit: QuantumCircuit) -> list[int]:
    """Order program qubits so strongly-interacting qubits are consecutive."""
    interaction = circuit.interaction_graph()
    order: list[int] = []
    visited: set[int] = set()
    seeds = sorted(
        range(circuit.num_qubits),
        key=lambda q: -interaction.degree(q, weight="weight"),
    )
    for seed in seeds:
        if seed in visited:
            continue
        stack = [seed]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            neighbours = sorted(
                (n for n in interaction.neighbors(node) if n not in visited),
                key=lambda n: -interaction[node][n]["weight"],
            )
            stack.extend(reversed(neighbours))
    return order


def _initial_layout(circuit: QuantumCircuit, coupling: nx.Graph) -> dict[int, int]:
    """Interaction-aware initial layout.

    Program qubits are ordered by a DFS of the interaction graph and placed
    along a path-like ordering of the device qubits, so chains and
    star-centres land on contiguous hardware regions.
    """
    program_order = _program_chain_order(circuit)
    device_order = _device_path_order(coupling)
    if len(device_order) < circuit.num_qubits:
        raise RoutingError(
            f"device has {len(device_order)} qubits, circuit needs {circuit.num_qubits}"
        )
    return {p: device_order[i] for i, p in enumerate(program_order)}


def route(circuit: QuantumCircuit, coupling: nx.Graph) -> RoutedCircuit:
    """Route ``circuit`` onto ``coupling``, inserting SWAP gates as needed.

    The input should already be expressed with one- and two-qubit gates only
    (three-qubit gates must be decomposed first).

    Returns:
        A :class:`RoutedCircuit` whose circuit acts on *physical* qubit
        indices; SWAPs appear as explicit ``swap`` gates.
    """
    for gate in circuit:
        if gate.num_qubits > 2:
            raise RoutingError("route expects a circuit of 1- and 2-qubit gates")

    layout = _initial_layout(circuit, coupling)  # program -> physical
    phys_of = dict(layout)
    distances = dict(nx.all_pairs_shortest_path_length(coupling))

    num_physical = coupling.number_of_nodes()
    routed = QuantumCircuit(num_physical, name=f"{circuit.name}_routed")

    gates = list(circuit.gates)
    # Dependency structure: per program qubit, the queue of gate indices.
    dag_preds: list[int] = [0] * len(gates)
    successors: list[list[int]] = [[] for _ in gates]
    last_on_qubit: dict[int, int] = {}
    for index, gate in enumerate(gates):
        for q in gate.qubits:
            if q in last_on_qubit:
                successors[last_on_qubit[q]].append(index)
                dag_preds[index] += 1
            last_on_qubit[q] = index

    ready = [i for i, count in enumerate(dag_preds) if count == 0]
    front: list[int] = []
    executed = [False] * len(gates)
    num_swaps = 0
    routed_2q: list[tuple[int, int]] = []
    swaps_since_progress = 0
    # After this many swaps without executing a gate, force progress by
    # routing the first blocked gate straight along a shortest path (prevents
    # the known SABRE oscillation livelock).
    force_threshold = 2 * max(max(d.values()) for d in distances.values())

    def executable(index: int) -> bool:
        gate = gates[index]
        if gate.num_qubits == 1:
            return True
        a, b = (phys_of[q] for q in gate.qubits)
        return coupling.has_edge(a, b)

    def execute(index: int) -> None:
        gate = gates[index]
        physical = tuple(phys_of[q] for q in gate.qubits)
        routed.append(Gate(gate.name, physical, gate.params))
        if gate.num_qubits == 2:
            routed_2q.append(physical)
        executed[index] = True
        for successor in successors[index]:
            dag_preds[successor] -= 1
            if dag_preds[successor] == 0:
                ready.append(successor)

    def front_score(mapping: dict[int, int], gate_indices: list[int]) -> float:
        total = 0.0
        for index in gate_indices:
            gate = gates[index]
            if gate.num_qubits != 2:
                continue
            a, b = (mapping[q] for q in gate.qubits)
            total += distances[a][b]
        return total

    while ready or front:
        # Drain everything executable.
        progress = True
        drained_any = False
        while progress:
            progress = False
            still_ready = []
            for index in ready:
                if executable(index):
                    execute(index)
                    progress = True
                    drained_any = True
                else:
                    still_ready.append(index)
            ready[:] = still_ready
        if drained_any:
            swaps_since_progress = 0
        if not ready:
            break

        # All remaining ready gates are blocked two-qubit gates; pick a SWAP.
        front = [i for i in ready if gates[i].num_qubits == 2]
        ready_set = set(ready)
        lookahead = []
        for i in range(len(gates)):
            if not executed[i] and i not in ready_set:
                lookahead.append(i)
                if len(lookahead) >= _LOOKAHEAD_SIZE:
                    break

        inverse = {phys: prog for prog, phys in phys_of.items()}

        def apply_swap(a: int, b: int) -> None:
            nonlocal num_swaps
            routed.append(Gate("swap", (a, b)))
            routed_2q.append((a, b))
            num_swaps += 1
            prog_a, prog_b = inverse.get(a), inverse.get(b)
            if prog_a is not None:
                phys_of[prog_a] = b
            if prog_b is not None:
                phys_of[prog_b] = a
            if prog_a is not None:
                inverse[b] = prog_a
            else:
                inverse.pop(b, None)
            if prog_b is not None:
                inverse[a] = prog_b
            else:
                inverse.pop(a, None)

        if swaps_since_progress >= force_threshold:
            # Oscillation guard: route the first blocked gate directly.
            gate = gates[front[0]]
            source, target = (phys_of[q] for q in gate.qubits)
            path = nx.shortest_path(coupling, source, target)
            for a, b in zip(path, path[1:-1]):
                apply_swap(a, b)
            swaps_since_progress = 0
            continue

        candidate_swaps: set[tuple[int, int]] = set()
        for index in front:
            for q in gates[index].qubits:
                phys = phys_of[q]
                for neighbour in coupling.neighbors(phys):
                    candidate_swaps.add(tuple(sorted((phys, neighbour))))

        def front_score_swapped(
            gate_indices: list[int], prog_a, prog_b, a: int, b: int
        ) -> float:
            """front_score under "swap a<->b", without copying the mapping.

            Iterates the same gates in the same order and sums the same
            distance values as building a trial dict would, so scores (and
            therefore swap choices) are bit-identical to the reference
            formulation.
            """
            total = 0.0
            for index in gate_indices:
                gate = gates[index]
                if gate.num_qubits != 2:
                    continue
                qa, qb = gate.qubits
                x = b if qa == prog_a else (a if qa == prog_b else phys_of[qa])
                y = b if qb == prog_a else (a if qb == prog_b else phys_of[qb])
                total += distances[x][y]
            return total

        best_swap = None
        best_score = float("inf")
        for a, b in candidate_swaps:
            prog_a, prog_b = inverse.get(a), inverse.get(b)
            score = front_score_swapped(
                front, prog_a, prog_b, a, b
            ) + _LOOKAHEAD_WEIGHT * front_score_swapped(lookahead, prog_a, prog_b, a, b)
            if score < best_score:
                best_score = score
                best_swap = (a, b)

        if best_swap is None:
            raise RoutingError("router made no progress (disconnected coupling graph?)")

        apply_swap(*best_swap)
        swaps_since_progress += 1

    if not all(executed):
        raise RoutingError("router failed to execute all gates")

    return RoutedCircuit(
        circuit=routed,
        initial_layout=layout,
        final_layout=dict(phys_of),
        num_swaps=num_swaps,
        routed_2q_gates=routed_2q,
    )
