"""Superconducting-qubit baseline: coupling graphs, SABRE-style routing, transpiler."""

from .coupling import grid_coupling, heavy_hex_coupling, largest_connected_subgraph
from .routing import RoutedCircuit, RoutingError, route
from .transpiler import SuperconductingCompiler

__all__ = [
    "RoutedCircuit",
    "RoutingError",
    "SuperconductingCompiler",
    "grid_coupling",
    "heavy_hex_coupling",
    "largest_connected_subgraph",
    "route",
]
