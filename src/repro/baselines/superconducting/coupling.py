"""Coupling graphs of the superconducting baseline machines (Section VII-A).

* IBM Heron (ibm_torino): a 127-qubit heavy-hexagon lattice.
* Google-style grid: an 11 x 11 square lattice (121 qubits).
"""

from __future__ import annotations

import networkx as nx


def grid_coupling(rows: int = 11, cols: int = 11) -> nx.Graph:
    """Square-lattice coupling graph (Google Sycamore-style)."""
    graph = nx.Graph()
    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            graph.add_node(node(r, c))
            if c + 1 < cols:
                graph.add_edge(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(node(r, c), node(r + 1, c))
    return graph


def heavy_hex_coupling(distance: int = 7) -> nx.Graph:
    """Heavy-hexagon coupling graph in the IBM style.

    The construction follows IBM's heavy-hex layout: rows of data qubits
    connected by alternating bridge qubits.  ``distance = 7`` yields the
    127-qubit ibm_torino / ibm_washington topology.
    """
    # Row lengths of the 127-qubit heavy-hex device: 7 long rows of 15 qubits
    # interleaved with 6 bridge rows of 4 qubits -> 7*15 + 6*4 = 129; IBM's
    # actual device trims 2 qubits, but the extra pair does not change routing
    # behaviour.  We build the canonical pattern parametrically.
    num_long_rows = distance
    long_row_len = 2 * distance + 1
    graph = nx.Graph()
    index = 0
    long_rows: list[list[int]] = []
    bridge_rows: list[list[int]] = []
    for row in range(num_long_rows):
        row_nodes = list(range(index, index + long_row_len))
        index += long_row_len
        long_rows.append(row_nodes)
        graph.add_nodes_from(row_nodes)
        for a, b in zip(row_nodes, row_nodes[1:]):
            graph.add_edge(a, b)
        if row < num_long_rows - 1:
            offset = 0 if row % 2 == 0 else 2
            columns = list(range(offset, long_row_len, 4))
            bridge_nodes = list(range(index, index + len(columns)))
            index += len(bridge_nodes)
            bridge_rows.append(bridge_nodes)
            graph.add_nodes_from(bridge_nodes)

    # Connect bridges: even rows attach at columns 0, 4, 8, ...; odd rows at 2, 6, 10, ...
    for row, bridges in enumerate(bridge_rows):
        offset = 0 if row % 2 == 0 else 2
        columns = list(range(offset, long_row_len, 4))
        for bridge, col in zip(bridges, columns):
            graph.add_edge(long_rows[row][col], bridge)
            graph.add_edge(bridge, long_rows[row + 1][col])
    return graph


def largest_connected_subgraph(graph: nx.Graph) -> nx.Graph:
    """The largest connected component (defensive; both presets are connected)."""
    if nx.is_connected(graph):
        return graph
    nodes = max(nx.connected_components(graph), key=len)
    return graph.subgraph(nodes).copy()
