"""Superconducting baseline transpiler: decompose, route, schedule, estimate.

Mirrors the paper's superconducting baseline: circuits are compiled with a
SABRE-style router onto either the IBM Heron heavy-hexagon device or a
Google-style 11x11 grid, scheduled ASAP with the durations of Table I, and
evaluated with the superconducting fidelity model.
"""

from __future__ import annotations

import time
from collections import defaultdict

import networkx as nx

from ...circuits.circuit import QuantumCircuit
from ...circuits.synthesis import decompose_to_cz, merge_single_qubit_runs
from ...fidelity.model import FidelityBreakdown
from ...fidelity.params import SC_GRID, SC_HERON, SuperconductingParams
from ...fidelity.sc_model import SCExecutionMetrics, estimate_sc_fidelity
from ...zair.instructions import FixedGate, GateLayerInst
from ...zair.interpret import interpret_program
from ...zair.program import ZAIRProgram
from ..result import BaselineResult
from .coupling import grid_coupling, heavy_hex_coupling
from .routing import route


class SuperconductingCompiler:
    """Route and schedule a circuit on a superconducting coupling graph."""

    def __init__(
        self,
        coupling: nx.Graph,
        params: SuperconductingParams,
        name: str,
    ) -> None:
        self.coupling = coupling
        self.params = params
        self.name = name

    @classmethod
    def heron(cls) -> "SuperconductingCompiler":
        """IBM Heron heavy-hexagon baseline (127 qubits)."""
        return cls(heavy_hex_coupling(7), SC_HERON, "SC-Heron")

    @classmethod
    def grid(cls) -> "SuperconductingCompiler":
        """Google-style 11x11 grid baseline."""
        return cls(grid_coupling(11, 11), SC_GRID, "SC-Grid")

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        """Route and ASAP-schedule the circuit, lowering to fixed-coupling ZAIR.

        The routed schedule is emitted as gate-layer instructions carrying
        the coupling graph; metrics and fidelity are derived by replaying
        the program under the superconducting model.
        """
        start = time.perf_counter()
        # Native-gate resynthesis (CZ + merged 1Q gates), as Qiskit O3 would do.
        native = merge_single_qubit_runs(decompose_to_cz(circuit))
        routed = route(native, self.coupling)

        program = self._lower(routed.circuit)
        replay = interpret_program(program, params=self.params)
        replay.metrics.compile_time_s = time.perf_counter() - start
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=self.name,
            compiler_name=self.name,
            metrics=replay.metrics,
            fidelity=replay.fidelity,
            program=program,
        )

    def compile_legacy(self, circuit: QuantumCircuit) -> BaselineResult:
        """Hand-accumulated metrics path (conformance oracle for ``compile``)."""
        start = time.perf_counter()
        native = merge_single_qubit_runs(decompose_to_cz(circuit))
        routed = route(native, self.coupling)

        metrics = self._schedule(routed.circuit)
        metrics.compile_time_s = time.perf_counter() - start
        breakdown = estimate_sc_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=self.name,
            compiler_name=self.name,
            metrics=self._to_neutral_metrics(metrics),
            fidelity=breakdown,
        )

    # -- ZAIR lowering ---------------------------------------------------------

    def _lower(self, routed: QuantumCircuit) -> ZAIRProgram:
        """ASAP-schedule the routed circuit into dependency-layered ZAIR.

        Gates are grouped into dependency levels (two gates share a level
        only if they act on disjoint qubits); the per-gate begin times and
        durations follow the same ASAP recurrence as :meth:`_schedule`, so
        the replayed schedule matches the legacy accounting exactly.
        """
        program = ZAIRProgram(
            num_qubits=routed.num_qubits,
            architecture_name=self.name,
            coupling_edges=sorted(tuple(sorted(edge)) for edge in self.coupling.edges),
        )
        finish: dict[int, float] = defaultdict(float)
        level_of: dict[int, int] = defaultdict(int)
        layers: list[list[FixedGate]] = []
        for gate in routed:
            if gate.num_qubits == 1:
                kind, duration = "1q", self.params.t_1q_us
            elif gate.name == "swap":
                kind, duration = "swap", 3.0 * self.params.t_2q_us
            else:
                kind, duration = "2q", self.params.t_2q_us
            begin = max(finish[q] for q in gate.qubits)
            level = max(level_of[q] for q in gate.qubits)
            for q in gate.qubits:
                finish[q] = begin + duration
                level_of[q] = level + 1
            while len(layers) <= level:
                layers.append([])
            layers[level].append(
                FixedGate(
                    kind=kind,
                    qubits=tuple(gate.qubits),
                    begin_time=begin,
                    duration_us=duration,
                )
            )
        for layer in layers:
            program.instructions.append(
                GateLayerInst(
                    gates=layer,
                    begin_time=min(g.begin_time for g in layer),
                    end_time=max(g.end_time for g in layer),
                )
            )
        return program

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, routed: QuantumCircuit) -> SCExecutionMetrics:
        """ASAP schedule with per-gate durations; SWAPs count as three 2Q gates."""
        finish: dict[int, float] = defaultdict(float)
        busy: dict[int, float] = defaultdict(float)
        num_1q = 0
        num_2q = 0
        for gate in routed:
            if gate.num_qubits == 1:
                duration = self.params.t_1q_us
                num_1q += 1
            elif gate.name == "swap":
                duration = 3.0 * self.params.t_2q_us
                num_2q += 3
            else:
                duration = self.params.t_2q_us
                num_2q += 1
            start = max(finish[q] for q in gate.qubits)
            for q in gate.qubits:
                finish[q] = start + duration
                busy[q] += duration
        used_qubits = set(busy)
        makespan = max(finish.values(), default=0.0)
        metrics = SCExecutionMetrics(num_qubits=len(used_qubits))
        metrics.num_1q_gates = num_1q
        metrics.num_2q_gates = num_2q
        metrics.duration_us = makespan
        # Re-index busy times densely (only used qubits decohere meaningfully).
        metrics.qubit_busy_us = {
            index: busy[q] for index, q in enumerate(sorted(used_qubits))
        }
        return metrics

    @staticmethod
    def _to_neutral_metrics(metrics: SCExecutionMetrics):
        """Adapt SC metrics into the common ExecutionMetrics container."""
        from ...fidelity.model import ExecutionMetrics

        out = ExecutionMetrics(num_qubits=metrics.num_qubits)
        out.num_1q_gates = metrics.num_1q_gates
        out.num_2q_gates = metrics.num_2q_gates
        out.duration_us = metrics.duration_us
        out.qubit_busy_us = dict(metrics.qubit_busy_us)
        out.compile_time_s = metrics.compile_time_s
        return out


def estimate_sc_breakdown(
    metrics: SCExecutionMetrics, params: SuperconductingParams
) -> FidelityBreakdown:
    """Convenience re-export of the SC fidelity model."""
    return estimate_sc_fidelity(metrics, params)
