"""Enola-style compiler for the monolithic architecture (Tan et al. 2024).

Enola targets the monolithic (single-zone) dynamically field-programmable
qubit array: every qubit sits inside the region illuminated by the global
Rydberg laser.  Its pipeline is

1. schedule the entangling gates into a near-optimal number of Rydberg
   stages (here: the same dependency-respecting ASAP staging ZAC uses, which
   is optimal for the benchmark circuits' dependency structure),
2. between stages, move one qubit of each gate next to its partner, grouping
   compatible movements into parallel rearrangement rounds with a
   maximal-independent-set heuristic.

Because the Rydberg laser covers the whole array, every idle qubit is
excited at every stage -- the dominant error source the zoned architecture
eliminates (paper Fig. 1c).
"""

from __future__ import annotations

import time

from ...arch.spec import Architecture, RydbergSite
from ...arch.presets import monolithic_architecture
from ...circuits.circuit import QuantumCircuit
from ...circuits.scheduling import OneQStage, RydbergStage, preprocess
from ...core.model import LEFT, RIGHT, Location, Movement
from ...core.routing.jobs import partition_movements_staged
from ...core.scheduling.load_balance import schedule_epoch
from ...fidelity.model import ExecutionMetrics, estimate_fidelity
from ...fidelity.movement import movement_time_us
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ...zair.interpret import interpret_program
from ..lowering import BaselineProgramBuilder
from ..result import BaselineResult


class EnolaCompiler:
    """Movement-based monolithic-array compiler with global Rydberg exposure."""

    name = "Monolithic-Enola"

    def __init__(
        self,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.params = params
        self.architecture = architecture or monolithic_architecture()

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        """Compile a circuit for the monolithic architecture.

        The schedule is lowered to ZAIR and all reported numbers are derived
        by replaying the program through the shared interpreter.
        """
        start = time.perf_counter()
        staged = preprocess(circuit)
        arch = self._sized_architecture(staged.num_qubits)

        location = self._initial_locations(arch, staged.num_qubits)
        builder = BaselineProgramBuilder(arch, staged.num_qubits, self.params)
        builder.emit_init(location)

        clock = 0.0
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                clock = builder.emit_1q_stage(stage, location, clock)
            elif isinstance(stage, RydbergStage):
                movements = self._plan_stage_movements(arch, stage, location)
                clock = builder.emit_epoch(movements, clock)
                clock = builder.emit_rydberg(list(stage.pairs), 0, clock)

        program = builder.program
        replay = interpret_program(program, architecture=arch, params=self.params)
        replay.metrics.compile_time_s = time.perf_counter() - start
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=arch.name,
            compiler_name=self.name,
            metrics=replay.metrics,
            fidelity=replay.fidelity,
            program=program,
            architecture=arch,
        )

    def compile_legacy(self, circuit: QuantumCircuit) -> BaselineResult:
        """Hand-accumulated metrics path (conformance oracle for ``compile``)."""
        start = time.perf_counter()
        staged = preprocess(circuit)
        arch = self._sized_architecture(staged.num_qubits)

        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        location = self._initial_locations(arch, staged.num_qubits)
        clock = 0.0
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                clock = self._run_1q_stage(stage, metrics, clock)
            elif isinstance(stage, RydbergStage):
                clock = self._run_rydberg_stage(arch, stage, location, metrics, clock)

        metrics.duration_us = clock
        metrics.compile_time_s = time.perf_counter() - start
        fidelity = estimate_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=arch.name,
            compiler_name=self.name,
            metrics=metrics,
            fidelity=fidelity,
        )

    # -- helpers --------------------------------------------------------------

    def _sized_architecture(self, num_qubits: int) -> Architecture:
        """Grow the default 10x10-site array if the circuit needs more traps."""
        arch = self.architecture
        if num_qubits <= arch.num_rydberg_sites:
            return arch
        side = 1
        while side * side < num_qubits:
            side += 1
        return monolithic_architecture(num_site_rows=side, num_site_cols=side)

    def _initial_locations(self, arch: Architecture, num_qubits: int) -> dict[int, Location]:
        """One qubit per Rydberg site (DPQA style): qubit i sits in the left trap of site i.

        Every two-qubit gate therefore requires at least one qubit movement to
        bring the pair into the same site, matching the movement structure of
        the monolithic dynamically field-programmable qubit array.
        """
        rows, cols = arch.site_shape(0)
        locations: dict[int, Location] = {}
        for qubit in range(num_qubits):
            site = RydbergSite(0, qubit // cols, qubit % cols)
            locations[qubit] = Location.at_site(site, LEFT)
        return locations

    def _run_1q_stage(self, stage: OneQStage, metrics: ExecutionMetrics, clock: float) -> float:
        duration = len(stage.gates) * self.params.t_1q_us
        for gate in stage.gates:
            metrics.qubit_busy_us[gate.qubits[0]] += self.params.t_1q_us
        metrics.num_1q_gates += len(stage.gates)
        return clock + duration

    def _run_rydberg_stage(
        self,
        arch: Architecture,
        stage: RydbergStage,
        location: dict[int, Location],
        metrics: ExecutionMetrics,
        clock: float,
    ) -> float:
        movements = self._plan_stage_movements(arch, stage, location)

        if movements:
            groups = partition_movements_staged(arch, movements)
            durations = []
            for group in groups:
                longest = max(m.distance_um(arch) for m in group)
                durations.append(2.0 * self.params.t_transfer_us + movement_time_us(longest, self.params))
                for move in group:
                    metrics.num_transfers += 2
                    metrics.num_movements += 1
                    metrics.total_move_distance_um += move.distance_um(arch)
                    metrics.qubit_busy_us[move.qubit] += 2.0 * self.params.t_transfer_us
            _, makespan = schedule_epoch(durations, arch.num_aods)
            clock += makespan
            for move in movements:
                location[move.qubit] = move.destination

        # Global Rydberg pulse: every qubit is illuminated.
        gate_qubits = stage.qubits
        for qubit in gate_qubits:
            metrics.qubit_busy_us[qubit] += self.params.t_2q_us
        metrics.num_2q_gates += len(stage.gates)
        metrics.num_excitations += metrics.num_qubits - len(gate_qubits)
        metrics.num_rydberg_stages += 1
        return clock + self.params.t_2q_us

    def _plan_stage_movements(
        self,
        arch: Architecture,
        stage: RydbergStage,
        location: dict[int, Location],
    ) -> list[Movement]:
        """Bring the second qubit of each gate next to the first.

        If the partner trap of the anchor qubit is occupied by a third qubit,
        that qubit is first evicted to the nearest free trap.
        """
        occupied: dict[tuple[int, int, int, int], int] = {}
        for qubit, loc in location.items():
            assert loc.site is not None
            occupied[(loc.site.zone_index, loc.site.row, loc.site.col, loc.side)] = qubit

        movements: list[Movement] = []
        # Traps already involved in this epoch's movements.  Evictions only
        # target traps untouched so far, so the epoch's trap-dependency graph
        # stays acyclic and the emitted jobs replay in *some* sequential order.
        touched: set[tuple[int, int, int, int]] = set()

        # (key, position) of every trap, in the same row/col/side enumeration
        # order the eviction search has always used; computed once per
        # architecture (the per-candidate RydbergSite construction and
        # position method calls used to dominate eviction planning).
        trap_table = self._trap_table(arch)

        def nearest_free_trap(pos: tuple[float, float]) -> tuple[int, int, int, int]:
            px, py = pos
            best_key = None
            best_d2 = float("inf")
            for key, (tx, ty) in trap_table:
                if key in occupied or key in touched:
                    continue
                d2 = (tx - px) ** 2 + (ty - py) ** 2
                if d2 < best_d2:
                    best_d2 = d2
                    best_key = key
            if best_key is None:
                raise ValueError("no free trap available for eviction")
            return best_key

        def relocate(qubit: int, target: tuple[int, int, int, int]) -> None:
            loc = location[qubit]
            assert loc.site is not None
            source_key = (loc.site.zone_index, loc.site.row, loc.site.col, loc.side)
            destination = Location.at_site(RydbergSite(target[0], target[1], target[2]), target[3])
            movements.append(Movement(qubit, loc, destination))
            del occupied[source_key]
            occupied[target] = qubit
            touched.add(source_key)
            touched.add(target)
            location[qubit] = destination

        for q, q2 in stage.pairs:
            loc_q, loc_q2 = location[q], location[q2]
            assert loc_q.site is not None and loc_q2.site is not None
            if loc_q.site == loc_q2.site:
                continue
            # Anchor q at its site; bring q2 to the opposite trap of that site.
            target = (
                loc_q.site.zone_index,
                loc_q.site.row,
                loc_q.site.col,
                RIGHT - loc_q.side,
            )
            blocker = occupied.get(target)
            if blocker is not None and blocker != q2:
                blocker_pos = (
                    arch.site_position(location[blocker].site)
                    if location[blocker].side == LEFT
                    else arch.site_partner_position(location[blocker].site)
                )
                relocate(blocker, nearest_free_trap(blocker_pos))
            relocate(q2, target)
        return movements

    def _trap_table(
        self, arch: Architecture
    ) -> list[tuple[tuple[int, int, int, int], tuple[float, float]]]:
        """(trap key, physical position) for every zone-0 trap, cached per arch."""
        cache = getattr(self, "_trap_table_cache", None)
        if cache is not None and cache[0] is arch:
            return cache[1]
        rows, cols = arch.site_shape(0)
        table = []
        for row in range(rows):
            for col in range(cols):
                site = RydbergSite(0, row, col)
                left_pos = arch.site_position(site)
                right_pos = arch.site_partner_position(site)
                table.append(((0, row, col, LEFT), left_pos))
                table.append(((0, row, col, RIGHT), right_pos))
        self._trap_table_cache = (arch, table)
        return table

    @staticmethod
    def _trap_distance(
        arch: Architecture, trap: tuple[int, int, int, int], pos: tuple[float, float]
    ) -> float:
        site = RydbergSite(trap[0], trap[1], trap[2])
        trap_pos = arch.site_position(site) if trap[3] == LEFT else arch.site_partner_position(site)
        return (trap_pos[0] - pos[0]) ** 2 + (trap_pos[1] - pos[1]) ** 2
