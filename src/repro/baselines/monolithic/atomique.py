"""Atomique-style compiler for the monolithic architecture (Wang et al. 2024).

Atomique splits the qubits between a static SLM array and a mobile AOD array.
Two-qubit gates between the arrays ("inter-array") are executed by moving the
whole AOD array so the pairs coincide; gates within one array ("intra-array")
first require a SWAP with a qubit of the other array, adding three extra CZ
gates each.  Atomique performs no per-qubit atom transfers -- the AOD array
moves as a whole -- so its transfer fidelity is 1, but it pays for the SWAP
overhead and, like every monolithic compiler, for Rydberg excitation of every
idle qubit at every stage.
"""

from __future__ import annotations

import time

from ...arch.spec import Architecture
from ...arch.presets import D_OMEGA, monolithic_architecture
from ...circuits.circuit import QuantumCircuit
from ...circuits.scheduling import OneQStage, RydbergStage, preprocess
from ...fidelity.model import ExecutionMetrics, estimate_fidelity
from ...fidelity.movement import movement_time_us
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ...zair.instructions import ArrayMoveInst, FixedGate, GateLayerInst, GlobalPulseInst
from ...zair.interpret import interpret_program
from ...zair.program import ZAIRProgram
from ..result import BaselineResult


def partition_qubits(circuit: QuantumCircuit, sweeps: int = 3) -> tuple[set[int], set[int]]:
    """Split qubits into (SLM, AOD) halves, maximising inter-array gates.

    A greedy local-search max-cut on the weighted interaction graph: start
    from an even split and repeatedly move the vertex with the largest gain.
    """
    graph = circuit.interaction_graph()
    qubits = list(range(circuit.num_qubits))
    slm = set(qubits[::2])
    aod = set(qubits[1::2])

    def gain(q: int) -> float:
        """Cut-weight change if ``q`` switches sides."""
        same, other = (slm, aod) if q in slm else (aod, slm)
        cut_now = sum(graph[q][n]["weight"] for n in graph.neighbors(q) if n in other)
        cut_after = sum(graph[q][n]["weight"] for n in graph.neighbors(q) if n in same)
        return cut_after - cut_now

    for _ in range(sweeps):
        improved = False
        for q in qubits:
            if gain(q) > 0 and len(slm if q in slm else aod) > 1:
                if q in slm:
                    slm.discard(q)
                    aod.add(q)
                else:
                    aod.discard(q)
                    slm.add(q)
                improved = True
        if not improved:
            break
    return slm, aod


class AtomiqueCompiler:
    """Hybrid SLM/AOD monolithic compiler with SWAP-based intra-array routing."""

    name = "Monolithic-Atomique"

    #: Extra CZ gates incurred by one intra-array SWAP insertion.
    SWAP_CZ_OVERHEAD = 3
    #: Extra 1Q gates incurred by one SWAP (Hadamard conjugations).
    SWAP_1Q_OVERHEAD = 4

    def __init__(
        self,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.params = params
        self.architecture = architecture or monolithic_architecture()

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        """Compile by lowering the analytic Atomique model to abstract ZAIR.

        Qubit positions are not tracked (the AOD array translates as one
        body), so the program uses the index-addressed instructions: 1Q
        layers, whole-array moves, and global Rydberg pulses.  Metrics and
        fidelity are derived by the shared interpreter.
        """
        start = time.perf_counter()
        staged = preprocess(circuit)
        slm, aod = partition_qubits(circuit)

        program = ZAIRProgram(
            num_qubits=staged.num_qubits, architecture_name=self.architecture.name
        )
        array_move_um = 2.0 * D_OMEGA
        clock = 0.0
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                clock = self._emit_1q_stage(program, stage, clock)
            elif isinstance(stage, RydbergStage):
                clock = self._emit_rydberg_stage(
                    program, stage, slm, array_move_um, clock
                )

        replay = interpret_program(program, params=self.params)
        replay.metrics.compile_time_s = time.perf_counter() - start
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=self.architecture.name,
            compiler_name=self.name,
            metrics=replay.metrics,
            fidelity=replay.fidelity,
            program=program,
        )

    def compile_legacy(self, circuit: QuantumCircuit) -> BaselineResult:
        """Hand-accumulated metrics path (conformance oracle for ``compile``)."""
        start = time.perf_counter()
        staged = preprocess(circuit)
        slm, aod = partition_qubits(circuit)

        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        # Whole-array moves span a few site pitches on average; use the array
        # pitch as the characteristic distance of one AOD translation.
        array_move_um = 2.0 * D_OMEGA
        clock = 0.0

        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                duration = len(stage.gates) * self.params.t_1q_us
                for gate in stage.gates:
                    metrics.qubit_busy_us[gate.qubits[0]] += self.params.t_1q_us
                metrics.num_1q_gates += len(stage.gates)
                clock += duration
            elif isinstance(stage, RydbergStage):
                clock = self._run_rydberg_stage(
                    stage, slm, metrics, array_move_um, clock
                )

        metrics.duration_us = clock
        metrics.compile_time_s = time.perf_counter() - start
        fidelity = estimate_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=self.architecture.name,
            compiler_name=self.name,
            metrics=metrics,
            fidelity=fidelity,
        )

    # -- ZAIR emission ---------------------------------------------------------

    def _emit_1q_stage(
        self, program: ZAIRProgram, stage: OneQStage, clock: float
    ) -> float:
        if not stage.gates:
            return clock
        gates = [
            FixedGate(
                kind="1q",
                qubits=(gate.qubits[0],),
                begin_time=clock + index * self.params.t_1q_us,
                duration_us=self.params.t_1q_us,
            )
            for index, gate in enumerate(stage.gates)
        ]
        duration = len(stage.gates) * self.params.t_1q_us
        program.instructions.append(
            GateLayerInst(gates=gates, begin_time=clock, end_time=clock + duration)
        )
        return clock + duration

    def _emit_rydberg_stage(
        self,
        program: ZAIRProgram,
        stage: RydbergStage,
        slm: set[int],
        array_move_um: float,
        clock: float,
    ) -> float:
        inter = [g for g in stage.pairs if (g[0] in slm) != (g[1] in slm)]
        intra = [g for g in stage.pairs if (g[0] in slm) == (g[1] in slm)]
        num_pulses = 1 + (self.SWAP_CZ_OVERHEAD if intra else 0)
        move_time = movement_time_us(array_move_um, self.params)
        active = sorted(stage.qubits)

        for pulse in range(num_pulses):
            program.instructions.append(
                ArrayMoveInst(
                    distance_um=array_move_um,
                    begin_time=clock,
                    end_time=clock + move_time,
                )
            )
            clock += move_time
            # Pulse 0 runs the logical gates; the extra pulses are the CZ
            # stages of the SWAP insertions (plus their 1Q conjugations,
            # folded into the first extra pulse).
            gates = inter + intra if pulse == 0 else list(intra)
            program.instructions.append(
                GlobalPulseInst(
                    gates=gates,
                    active_qubits=active,
                    extra_1q_gates=(
                        self.SWAP_1Q_OVERHEAD * len(intra) if pulse == 1 else 0
                    ),
                    begin_time=clock,
                    end_time=clock + self.params.t_2q_us,
                )
            )
            clock += self.params.t_2q_us
        return clock

    def _run_rydberg_stage(
        self,
        stage: RydbergStage,
        slm: set[int],
        metrics: ExecutionMetrics,
        array_move_um: float,
        clock: float,
    ) -> float:
        inter = [g for g in stage.pairs if (g[0] in slm) != (g[1] in slm)]
        intra = [g for g in stage.pairs if (g[0] in slm) == (g[1] in slm)]

        # Intra-array gates become inter-array after a SWAP with the other
        # array, costing three CZ stages and their excitations.
        extra_stages = self.SWAP_CZ_OVERHEAD if intra else 0
        num_pulses = 1 + extra_stages

        # One whole-array AOD translation per Rydberg pulse.
        move_time = movement_time_us(array_move_um, self.params)
        clock += num_pulses * move_time

        gate_qubits = stage.qubits
        for _ in range(num_pulses):
            metrics.num_excitations += metrics.num_qubits - len(gate_qubits)
        metrics.num_2q_gates += len(inter) + len(intra) * (1 + self.SWAP_CZ_OVERHEAD)
        metrics.num_1q_gates += len(intra) * self.SWAP_1Q_OVERHEAD
        metrics.num_rydberg_stages += num_pulses
        for qubit in gate_qubits:
            metrics.qubit_busy_us[qubit] += num_pulses * self.params.t_2q_us
        return clock + num_pulses * self.params.t_2q_us
