"""Atomique-style compiler for the monolithic architecture (Wang et al. 2024).

Atomique splits the qubits between a static SLM array and a mobile AOD array.
Two-qubit gates between the arrays ("inter-array") are executed by moving the
whole AOD array so the pairs coincide; gates within one array ("intra-array")
first require a SWAP with a qubit of the other array, adding three extra CZ
gates each.  Atomique performs no per-qubit atom transfers -- the AOD array
moves as a whole -- so its transfer fidelity is 1, but it pays for the SWAP
overhead and, like every monolithic compiler, for Rydberg excitation of every
idle qubit at every stage.
"""

from __future__ import annotations

import time

import networkx as nx

from ...arch.spec import Architecture
from ...arch.presets import D_OMEGA, monolithic_architecture
from ...circuits.circuit import QuantumCircuit
from ...circuits.scheduling import OneQStage, RydbergStage, preprocess
from ...fidelity.model import ExecutionMetrics, estimate_fidelity
from ...fidelity.movement import movement_time_us
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ..result import BaselineResult


def partition_qubits(circuit: QuantumCircuit, sweeps: int = 3) -> tuple[set[int], set[int]]:
    """Split qubits into (SLM, AOD) halves, maximising inter-array gates.

    A greedy local-search max-cut on the weighted interaction graph: start
    from an even split and repeatedly move the vertex with the largest gain.
    """
    graph = circuit.interaction_graph()
    qubits = list(range(circuit.num_qubits))
    slm = set(qubits[::2])
    aod = set(qubits[1::2])

    def gain(q: int) -> float:
        """Cut-weight change if ``q`` switches sides."""
        same, other = (slm, aod) if q in slm else (aod, slm)
        cut_now = sum(graph[q][n]["weight"] for n in graph.neighbors(q) if n in other)
        cut_after = sum(graph[q][n]["weight"] for n in graph.neighbors(q) if n in same)
        return cut_after - cut_now

    for _ in range(sweeps):
        improved = False
        for q in qubits:
            if gain(q) > 0 and len(slm if q in slm else aod) > 1:
                if q in slm:
                    slm.discard(q)
                    aod.add(q)
                else:
                    aod.discard(q)
                    slm.add(q)
                improved = True
        if not improved:
            break
    return slm, aod


class AtomiqueCompiler:
    """Hybrid SLM/AOD monolithic compiler with SWAP-based intra-array routing."""

    name = "Monolithic-Atomique"

    #: Extra CZ gates incurred by one intra-array SWAP insertion.
    SWAP_CZ_OVERHEAD = 3
    #: Extra 1Q gates incurred by one SWAP (Hadamard conjugations).
    SWAP_1Q_OVERHEAD = 4

    def __init__(
        self,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.params = params
        self.architecture = architecture or monolithic_architecture()

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        start = time.perf_counter()
        staged = preprocess(circuit)
        slm, aod = partition_qubits(circuit)

        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        # Whole-array moves span a few site pitches on average; use the array
        # pitch as the characteristic distance of one AOD translation.
        array_move_um = 2.0 * D_OMEGA
        clock = 0.0

        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                duration = len(stage.gates) * self.params.t_1q_us
                for gate in stage.gates:
                    metrics.qubit_busy_us[gate.qubits[0]] += self.params.t_1q_us
                metrics.num_1q_gates += len(stage.gates)
                clock += duration
            elif isinstance(stage, RydbergStage):
                clock = self._run_rydberg_stage(
                    stage, slm, metrics, array_move_um, clock
                )

        metrics.duration_us = clock
        metrics.compile_time_s = time.perf_counter() - start
        fidelity = estimate_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=self.architecture.name,
            compiler_name=self.name,
            metrics=metrics,
            fidelity=fidelity,
        )

    def _run_rydberg_stage(
        self,
        stage: RydbergStage,
        slm: set[int],
        metrics: ExecutionMetrics,
        array_move_um: float,
        clock: float,
    ) -> float:
        inter = [g for g in stage.pairs if (g[0] in slm) != (g[1] in slm)]
        intra = [g for g in stage.pairs if (g[0] in slm) == (g[1] in slm)]

        # Intra-array gates become inter-array after a SWAP with the other
        # array, costing three CZ stages and their excitations.
        extra_stages = self.SWAP_CZ_OVERHEAD if intra else 0
        num_pulses = 1 + extra_stages

        # One whole-array AOD translation per Rydberg pulse.
        move_time = movement_time_us(array_move_um, self.params)
        clock += num_pulses * move_time

        gate_qubits = stage.qubits
        for _ in range(num_pulses):
            metrics.num_excitations += metrics.num_qubits - len(gate_qubits)
        metrics.num_2q_gates += len(inter) + len(intra) * (1 + self.SWAP_CZ_OVERHEAD)
        metrics.num_1q_gates += len(intra) * self.SWAP_1Q_OVERHEAD
        metrics.num_rydberg_stages += num_pulses
        for qubit in gate_qubits:
            metrics.qubit_busy_us[qubit] += num_pulses * self.params.t_2q_us
        return clock + num_pulses * self.params.t_2q_us
