"""Compilers targeting the monolithic (single-zone) neutral-atom architecture."""

from .atomique import AtomiqueCompiler
from .enola import EnolaCompiler

__all__ = ["AtomiqueCompiler", "EnolaCompiler"]
