"""Baseline compilers targeting zoned architectures."""

from .nalac import NALACCompiler

__all__ = ["NALACCompiler"]
