"""NALAC-style compiler for zoned architectures (Stade et al. 2024).

NALAC routes logical entangling gates on zoned architectures by moving two
rows of qubits from the storage zone into the entanglement zone and sliding
them past each other.  Its characteristic trade-offs relative to ZAC
(Section II and Section VII-C):

* gate placement is restricted to a **single row** of the entanglement zone,
  so stages with more gates than that row has sites must be split across
  several Rydberg pulses;
* qubit reuse is aggressive -- a qubit needed by an upcoming stage is left in
  the entanglement zone even when it idles through intermediate pulses -- so
  idle qubits accumulate **Rydberg excitation errors**;
* placement is a greedy, single-stage heuristic (first-fit left to right),
  which lengthens movement distances for larger circuits.
"""

from __future__ import annotations

import time

from ...arch.spec import Architecture, RydbergSite, StorageTrap
from ...arch.presets import reference_zoned_architecture
from ...circuits.circuit import QuantumCircuit
from ...circuits.scheduling import OneQStage, RydbergStage, preprocess
from ...core.model import LEFT, RIGHT, Location, Movement
from ...core.placement.initial import trivial_placement
from ...core.routing.jobs import partition_movements
from ...core.scheduling.load_balance import schedule_epoch
from ...fidelity.model import ExecutionMetrics, estimate_fidelity
from ...fidelity.movement import movement_time_us
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ..result import BaselineResult


class NALACCompiler:
    """Zoned-architecture baseline with single-row gate placement and greedy reuse."""

    name = "Zoned-NALAC"

    def __init__(
        self,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.architecture = architecture or reference_zoned_architecture()
        self.params = params

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        start = time.perf_counter()
        staged = preprocess(circuit)
        arch = self.architecture

        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        initial = trivial_placement(arch, staged.num_qubits)
        location: dict[int, Location] = {
            q: Location.at_storage(t) for q, t in initial.items()
        }
        home: dict[int, StorageTrap] = dict(initial)

        rydberg_pairs = [s.pairs for s in staged.rydberg_stages]
        clock = 0.0
        rydberg_index = 0
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                duration = len(stage.gates) * self.params.t_1q_us
                for gate in stage.gates:
                    metrics.qubit_busy_us[gate.qubits[0]] += self.params.t_1q_us
                metrics.num_1q_gates += len(stage.gates)
                clock += duration
            elif isinstance(stage, RydbergStage):
                future = rydberg_pairs[rydberg_index + 1 :]
                clock = self._run_rydberg_stage(
                    arch, stage, location, home, future, metrics, clock
                )
                rydberg_index += 1

        # Final drain: everything left in the entanglement zone returns home.
        clock += self._return_qubits(
            arch,
            [q for q, loc in location.items() if loc.in_entanglement_zone],
            location,
            home,
            metrics,
        )

        metrics.duration_us = clock
        metrics.compile_time_s = time.perf_counter() - start
        fidelity = estimate_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=arch.name,
            compiler_name=self.name,
            metrics=metrics,
            fidelity=fidelity,
        )

    # -- stage handling --------------------------------------------------------

    def _run_rydberg_stage(
        self,
        arch: Architecture,
        stage: RydbergStage,
        location: dict[int, Location],
        home: dict[int, StorageTrap],
        future_stages: list[list[tuple[int, int]]],
        metrics: ExecutionMetrics,
        clock: float,
    ) -> float:
        _, cols = arch.site_shape(0)
        pairs = list(stage.pairs)
        # Single-row placement: split the stage into chunks of at most one row.
        chunks = [pairs[i : i + cols] for i in range(0, len(pairs), cols)]

        # Qubits needed in the next stage are kept in the zone (greedy reuse).
        lookahead_qubits: set[int] = set()
        for future in future_stages[:1]:
            for q, q2 in future:
                lookahead_qubits.add(q)
                lookahead_qubits.add(q2)

        for chunk in chunks:
            clock = self._run_chunk(arch, chunk, location, metrics, clock)
            # Idle qubits currently parked in the zone are excited by this pulse.
            chunk_qubits = {q for g in chunk for q in g}
            idle_in_zone = [
                q
                for q, loc in location.items()
                if loc.in_entanglement_zone and q not in chunk_qubits
            ]
            metrics.num_excitations += len(idle_in_zone)

        # NALAC reuses at the granularity of Rydberg-site pairs: a qubit stays
        # in the zone if it -- or the qubit sharing its site -- is needed in the
        # next stage.  The idle partner is exposed to the Rydberg laser there.
        keep: set[int] = set()
        site_occupants: dict[tuple[int, int, int], list[int]] = {}
        for qubit, loc in location.items():
            if loc.in_entanglement_zone and loc.site is not None:
                key = (loc.site.zone_index, loc.site.row, loc.site.col)
                site_occupants.setdefault(key, []).append(qubit)
        for occupants in site_occupants.values():
            if any(q in lookahead_qubits for q in occupants):
                keep.update(occupants)
        leaving = [
            q
            for q, loc in location.items()
            if loc.in_entanglement_zone and q not in keep
        ]
        clock += self._return_qubits(arch, leaving, location, home, metrics)
        return clock

    def _run_chunk(
        self,
        arch: Architecture,
        chunk: list[tuple[int, int]],
        location: dict[int, Location],
        metrics: ExecutionMetrics,
        clock: float,
    ) -> float:
        # Greedy first-fit placement of the chunk's gates into row 0, left to right.
        movements: list[Movement] = []
        occupied_cols = {
            loc.site.col
            for loc in location.values()
            if loc.in_entanglement_zone and loc.site is not None and loc.site.row == 0
        }
        next_col = 0
        for q, q2 in chunk:
            loc_q, loc_q2 = location[q], location[q2]
            # If one operand already sits in row 0, reuse its site.
            anchor = None
            if loc_q.in_entanglement_zone and loc_q.site.row == 0:
                anchor = (q, q2)
            elif loc_q2.in_entanglement_zone and loc_q2.site.row == 0:
                anchor = (q2, q)
            if anchor is not None:
                stay, move = anchor
                site = location[stay].site
                target_side = RIGHT - location[stay].side
                destination = Location.at_site(site, target_side)
                if location[move] != destination:
                    movements.append(Movement(move, location[move], destination))
                    location[move] = destination
                continue
            while next_col in occupied_cols:
                next_col += 1
            site = RydbergSite(0, 0, min(next_col, arch.site_shape(0)[1] - 1))
            occupied_cols.add(next_col)
            for qubit, side in ((q, LEFT), (q2, RIGHT)):
                destination = Location.at_site(site, side)
                if location[qubit] != destination:
                    movements.append(Movement(qubit, location[qubit], destination))
                    location[qubit] = destination

        clock += self._execute_movements(arch, movements, metrics)

        gate_qubits = {q for g in chunk for q in g}
        for qubit in gate_qubits:
            metrics.qubit_busy_us[qubit] += self.params.t_2q_us
        metrics.num_2q_gates += len(chunk)
        metrics.num_rydberg_stages += 1
        return clock + self.params.t_2q_us

    # -- movement helpers ------------------------------------------------------

    def _execute_movements(
        self, arch: Architecture, movements: list[Movement], metrics: ExecutionMetrics
    ) -> float:
        if not movements:
            return 0.0
        groups = partition_movements(arch, movements)
        durations = []
        for group in groups:
            longest = max(m.distance_um(arch) for m in group)
            durations.append(
                2.0 * self.params.t_transfer_us + movement_time_us(longest, self.params)
            )
            for move in group:
                metrics.num_transfers += 2
                metrics.num_movements += 1
                metrics.total_move_distance_um += move.distance_um(arch)
                metrics.qubit_busy_us[move.qubit] += 2.0 * self.params.t_transfer_us
        _, makespan = schedule_epoch(durations, arch.num_aods)
        return makespan

    def _return_qubits(
        self,
        arch: Architecture,
        qubits: list[int],
        location: dict[int, Location],
        home: dict[int, StorageTrap],
        metrics: ExecutionMetrics,
    ) -> float:
        movements = []
        for qubit in qubits:
            destination = Location.at_storage(home[qubit])
            movements.append(Movement(qubit, location[qubit], destination))
            location[qubit] = destination
        return self._execute_movements(arch, movements, metrics)
