"""NALAC-style compiler for zoned architectures (Stade et al. 2024).

NALAC routes logical entangling gates on zoned architectures by moving two
rows of qubits from the storage zone into the entanglement zone and sliding
them past each other.  Its characteristic trade-offs relative to ZAC
(Section II and Section VII-C):

* gate placement is restricted to a **single row** of the entanglement zone,
  so stages with more gates than that row has sites must be split across
  several Rydberg pulses;
* qubit reuse is aggressive -- a qubit needed by an upcoming stage is left in
  the entanglement zone even when it idles through intermediate pulses -- so
  idle qubits accumulate **Rydberg excitation errors**;
* placement is a greedy, single-stage heuristic (first-fit left to right),
  which lengthens movement distances for larger circuits.
"""

from __future__ import annotations

import time

from ...arch.spec import Architecture, RydbergSite, StorageTrap
from ...arch.presets import reference_zoned_architecture
from ...circuits.circuit import QuantumCircuit
from ...circuits.scheduling import OneQStage, RydbergStage, preprocess
from ...core.model import LEFT, RIGHT, Location, Movement
from ...core.placement.initial import trivial_placement
from ...core.routing.jobs import partition_movements_staged
from ...core.scheduling.load_balance import schedule_epoch
from ...fidelity.model import ExecutionMetrics, estimate_fidelity
from ...fidelity.movement import movement_time_us
from ...fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ...zair.interpret import interpret_program
from ..lowering import BaselineProgramBuilder
from ..result import BaselineResult


class NALACCompiler:
    """Zoned-architecture baseline with single-row gate placement and greedy reuse."""

    name = "Zoned-NALAC"

    def __init__(
        self,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.architecture = architecture or reference_zoned_architecture()
        self.params = params

    def compile(self, circuit: QuantumCircuit) -> BaselineResult:
        """Compile by lowering the NALAC schedule to ZAIR.

        Both this path and :meth:`compile_legacy` consume the same stage
        event stream (:meth:`_events`), so the planned schedule is identical
        by construction; here the events become instructions and all
        reported numbers are derived by the shared interpreter.
        """
        start = time.perf_counter()
        staged = preprocess(circuit)
        arch = self.architecture

        initial = trivial_placement(arch, staged.num_qubits)
        location: dict[int, Location] = {
            q: Location.at_storage(t) for q, t in initial.items()
        }
        builder = BaselineProgramBuilder(arch, staged.num_qubits, self.params)
        builder.emit_init(location)

        clock = 0.0
        for kind, payload in self._events(staged, location, dict(initial)):
            if kind == "1q":
                clock = builder.emit_1q_stage(payload, location, clock)
            elif kind == "epoch":
                clock = builder.emit_epoch(payload, clock)
            else:  # pulse
                clock = builder.emit_rydberg(payload, 0, clock)

        program = builder.program
        replay = interpret_program(program, architecture=arch, params=self.params)
        replay.metrics.compile_time_s = time.perf_counter() - start
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=arch.name,
            compiler_name=self.name,
            metrics=replay.metrics,
            fidelity=replay.fidelity,
            program=program,
            architecture=arch,
        )

    def compile_legacy(self, circuit: QuantumCircuit) -> BaselineResult:
        """Hand-accumulated metrics path (conformance oracle for ``compile``)."""
        start = time.perf_counter()
        staged = preprocess(circuit)
        arch = self.architecture

        metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
        metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}

        initial = trivial_placement(arch, staged.num_qubits)
        location: dict[int, Location] = {
            q: Location.at_storage(t) for q, t in initial.items()
        }

        clock = 0.0
        for kind, payload in self._events(staged, location, dict(initial)):
            if kind == "1q":
                duration = len(payload.gates) * self.params.t_1q_us
                for gate in payload.gates:
                    metrics.qubit_busy_us[gate.qubits[0]] += self.params.t_1q_us
                metrics.num_1q_gates += len(payload.gates)
                clock += duration
            elif kind == "epoch":
                clock += self._execute_movements(arch, payload, metrics)
            else:  # pulse
                chunk_qubits = {q for g in payload for q in g}
                # Idle qubits parked in the zone are excited by this pulse.
                idle_in_zone = [
                    q
                    for q, loc in location.items()
                    if loc.in_entanglement_zone and q not in chunk_qubits
                ]
                metrics.num_excitations += len(idle_in_zone)
                for qubit in chunk_qubits:
                    metrics.qubit_busy_us[qubit] += self.params.t_2q_us
                metrics.num_2q_gates += len(payload)
                metrics.num_rydberg_stages += 1
                clock += self.params.t_2q_us

        metrics.duration_us = clock
        metrics.compile_time_s = time.perf_counter() - start
        fidelity = estimate_fidelity(metrics, self.params)
        return BaselineResult(
            circuit_name=circuit.name,
            architecture_name=arch.name,
            compiler_name=self.name,
            metrics=metrics,
            fidelity=fidelity,
        )

    # -- stage planning --------------------------------------------------------

    def _events(
        self,
        staged,
        location: dict[int, Location],
        home: dict[int, StorageTrap],
    ):
        """Yield the schedule as ``("1q", stage)`` / ``("epoch", movements)`` /
        ``("pulse", pairs)`` events, mutating ``location`` as qubits move.

        Consumers must process each event before advancing the generator:
        the pulse excitation accounting reads ``location`` at yield time.
        """
        arch = self.architecture
        rydberg_pairs = [s.pairs for s in staged.rydberg_stages]
        rydberg_index = 0
        for stage in staged.stages:
            if isinstance(stage, OneQStage):
                yield ("1q", stage)
            elif isinstance(stage, RydbergStage):
                future = rydberg_pairs[rydberg_index + 1 :]
                yield from self._stage_events(arch, stage, location, home, future)
                rydberg_index += 1
        # Final drain: everything left in the entanglement zone returns home.
        leftover = [q for q, loc in location.items() if loc.in_entanglement_zone]
        movements = self._plan_returns(leftover, location, home)
        if movements:
            yield ("epoch", movements)

    def _stage_events(
        self,
        arch: Architecture,
        stage: RydbergStage,
        location: dict[int, Location],
        home: dict[int, StorageTrap],
        future_stages: list[list[tuple[int, int]]],
    ):
        # Qubits needed in the next stage are kept in the zone (greedy reuse).
        lookahead_qubits: set[int] = set()
        for future in future_stages[:1]:
            for q, q2 in future:
                lookahead_qubits.add(q)
                lookahead_qubits.add(q2)

        # Single-row placement: each pulse takes as many gates as the gate
        # row has free sites, so stages wider than the (remaining) row split
        # across several Rydberg pulses.
        pending = list(stage.pairs)
        while pending:
            chunk, movements = self._plan_chunk(arch, pending, location, home)
            pending = pending[len(chunk) :]
            if movements:
                yield ("epoch", movements)
            yield ("pulse", chunk)

        # NALAC reuses at the granularity of Rydberg-site pairs: a qubit stays
        # in the zone if it -- or the qubit sharing its site -- is needed in the
        # next stage.  The idle partner is exposed to the Rydberg laser there.
        keep: set[int] = set()
        site_occupants: dict[tuple[int, int, int], list[int]] = {}
        for qubit, loc in location.items():
            if loc.in_entanglement_zone and loc.site is not None:
                key = (loc.site.zone_index, loc.site.row, loc.site.col)
                site_occupants.setdefault(key, []).append(qubit)
        for occupants in site_occupants.values():
            if any(q in lookahead_qubits for q in occupants):
                keep.update(occupants)
        leaving = [
            q
            for q, loc in location.items()
            if loc.in_entanglement_zone and q not in keep
        ]
        movements = self._plan_returns(leaving, location, home)
        if movements:
            yield ("epoch", movements)

    def _plan_chunk(
        self,
        arch: Architecture,
        pending: list[tuple[int, int]],
        location: dict[int, Location],
        home: dict[int, StorageTrap],
    ) -> tuple[list[tuple[int, int]], list[Movement]]:
        """Greedy first-fit placement of one pulse's gates into row 0.

        Consumes a prefix of ``pending``: gates are placed left to right
        until the gate row runs out of free sites (gates anchored on a
        reused row-0 qubit don't consume a new column); the remaining gates
        form later pulses.  Returns ``(chunk, movements)``.

        A trap needed by an incoming qubit may be held by a parked qubit (the
        idle partner of a previously reused site, or an overflow leftover).
        Faithful to NALAC's aggressive reuse, such blockers stay inside the
        entanglement zone -- they are parked on the nearest free trap (above
        the single gate row), where they keep accumulating Rydberg-excitation
        errors -- and only fall back to their home storage trap when the zone
        is full.  Either way the planned schedule never stacks two qubits on
        one trap.
        """
        movements: list[Movement] = []
        occupant: dict[tuple[int, int, int, int], int] = {}
        for qubit, loc in location.items():
            if loc.in_entanglement_zone and loc.site is not None:
                occupant[
                    (loc.site.zone_index, loc.site.row, loc.site.col, loc.side)
                ] = qubit
        # Zone traps vacated by this epoch's movements.  Parking only targets
        # traps untouched so far, keeping the epoch's trap-dependency graph
        # acyclic (see the same invariant in Enola's movement planning).
        vacated: set[tuple[int, int, int, int]] = set()

        def move_qubit(qubit: int, destination: Location) -> None:
            source = location[qubit]
            if source == destination:
                return
            if source.in_entanglement_zone and source.site is not None:
                key = (source.site.zone_index, source.site.row, source.site.col, source.side)
                occupant.pop(key, None)
                vacated.add(key)
            movements.append(Movement(qubit, source, destination))
            if destination.in_entanglement_zone and destination.site is not None:
                occupant[
                    (
                        destination.site.zone_index,
                        destination.site.row,
                        destination.site.col,
                        destination.side,
                    )
                ] = qubit
            location[qubit] = destination

        def parking_spot(near_col: int) -> Location | None:
            """First free zone trap above the gate row, nearest ``near_col``."""
            rows, cols = arch.site_shape(0)
            for row in range(1, rows):
                for offset in range(cols):
                    for col in (near_col - offset, near_col + offset):
                        if not 0 <= col < cols:
                            continue
                        for side in (LEFT, RIGHT):
                            key = (0, row, col, side)
                            if key not in occupant and key not in vacated:
                                return Location.at_site(RydbergSite(0, row, col), side)
            return None

        def ensure_free(site: RydbergSite, side: int, gate: tuple[int, int]) -> None:
            blocker = occupant.get((site.zone_index, site.row, site.col, side))
            if blocker is None or blocker in gate:
                return
            spot = parking_spot(site.col)
            if spot is None:
                spot = Location.at_storage(home[blocker])
            move_qubit(blocker, spot)

        _, cols = arch.site_shape(0)
        occupied_cols = {
            loc.site.col
            for loc in location.values()
            if loc.in_entanglement_zone and loc.site is not None and loc.site.row == 0
        }
        chunk: list[tuple[int, int]] = []
        next_col = 0
        for q, q2 in pending:
            loc_q, loc_q2 = location[q], location[q2]
            # If one operand already sits in row 0, reuse its site (no new column).
            anchor = None
            if loc_q.in_entanglement_zone and loc_q.site.row == 0:
                anchor = (q, q2)
            elif loc_q2.in_entanglement_zone and loc_q2.site.row == 0:
                anchor = (q2, q)
            if anchor is not None:
                stay, move = anchor
                site = location[stay].site
                target_side = RIGHT - location[stay].side
                ensure_free(site, target_side, (q, q2))
                move_qubit(move, Location.at_site(site, target_side))
                chunk.append((q, q2))
                continue
            while next_col in occupied_cols:
                next_col += 1
            if next_col >= cols:
                if chunk:
                    break  # the gate row is full; later pulses take the rest
                # Even an empty pulse has no free column (parked reuse qubits
                # fill the row): clear the leftmost column.  The operands
                # cannot sit in row 0 here (they would have anchored), so
                # ensure_free never touches them.
                next_col = 0
            site = RydbergSite(0, 0, next_col)
            occupied_cols.add(next_col)
            for qubit, side in ((q, LEFT), (q2, RIGHT)):
                ensure_free(site, side, (q, q2))
                move_qubit(qubit, Location.at_site(site, side))
            chunk.append((q, q2))
        return chunk, movements

    def _plan_returns(
        self,
        qubits: list[int],
        location: dict[int, Location],
        home: dict[int, StorageTrap],
    ) -> list[Movement]:
        movements = []
        for qubit in qubits:
            destination = Location.at_storage(home[qubit])
            movements.append(Movement(qubit, location[qubit], destination))
            location[qubit] = destination
        return movements

    # -- movement execution (legacy accounting) --------------------------------

    def _execute_movements(
        self, arch: Architecture, movements: list[Movement], metrics: ExecutionMetrics
    ) -> float:
        if not movements:
            return 0.0
        groups = partition_movements_staged(arch, movements)
        durations = []
        for group in groups:
            longest = max(m.distance_um(arch) for m in group)
            durations.append(
                2.0 * self.params.t_transfer_us + movement_time_us(longest, self.params)
            )
            for move in group:
                metrics.num_transfers += 2
                metrics.num_movements += 1
                metrics.total_move_distance_um += move.distance_um(arch)
                metrics.qubit_busy_us[move.qubit] += 2.0 * self.params.t_transfer_us
        _, makespan = schedule_epoch(durations, arch.num_aods)
        return makespan
