"""Idealised upper bounds for the optimality study (paper Section VII-F).

The bounds are constructed *on top of* a ZAC compilation result, replacing
parts of it with their best-case counterparts:

* **Perfect movement** -- every movement of an epoch is compatible, so each
  movement epoch needs a single rearrangement instruction whose duration is
  one pickup, one move over the epoch's actual longest distance, and one
  drop-off.
* **Perfect placement** -- additionally, the distance between a storage trap
  and a Rydberg site is always the zone separation ``d_sep``, so every
  rearrangement instruction has the minimum possible duration
  ``2 * T_tran + sqrt(d_sep / a)``.
* **Perfect reuse** -- additionally, the number of reused qubits reaches the
  maximum-cardinality bound between every pair of consecutive stages, and
  each additional reuse (relative to what ZAC achieved) saves the two atom
  transfers of the qubit's round trip to storage.

Because everything else (gate counts, excitations, the achieved reuse) is
inherited from the ZAC run, each bound dominates the ZAC fidelity by
construction, and the ratio ZAC / bound is the paper's optimality gap.
"""

from __future__ import annotations

import networkx as nx

from ..arch.spec import Architecture
from ..circuits.scheduling import OneQStage, RydbergStage
from ..core.compiler import CompilationResult
from ..core.model import Location, Movement, location_qloc
from ..fidelity.model import ExecutionMetrics, estimate_fidelity
from ..fidelity.movement import movement_time_us
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from ..zair.instructions import RydbergInst, TransferEpochInst
from ..zair.interpret import interpret_program
from ..zair.program import ZAIRProgram
from .lowering import BaselineProgramBuilder
from .result import BaselineResult

PERFECT_MOVEMENT = "perfect_movement"
PERFECT_PLACEMENT = "perfect_placement"
PERFECT_REUSE = "perfect_reuse"

_MODE_NAMES = {
    PERFECT_MOVEMENT: "Perfect Movement",
    PERFECT_PLACEMENT: "Perfect Placement",
    PERFECT_REUSE: "Perfect Reuse",
}


def maximal_reuse_count(stages: list[list[tuple[int, int]]]) -> int:
    """Maximum total number of reuses across all consecutive stage pairs.

    For each pair of consecutive Rydberg stages, the maximum number of qubits
    that can stay in the entanglement zone equals the maximum-cardinality
    matching of the gate-level reuse bipartite graph (Section V-B.1).
    """
    total = 0
    for prev, nxt in zip(stages, stages[1:]):
        graph = nx.Graph()
        prev_nodes = [("p", i) for i in range(len(prev))]
        graph.add_nodes_from(prev_nodes, bipartite=0)
        graph.add_nodes_from((("n", j) for j in range(len(nxt))), bipartite=1)
        for i, gate in enumerate(prev):
            for j, other in enumerate(nxt):
                if set(gate) & set(other):
                    graph.add_edge(("p", i), ("n", j))
        if graph.number_of_edges():
            matching = nx.bipartite.hopcroft_karp_matching(graph, top_nodes=prev_nodes)
            total += sum(1 for node in matching if node[0] == "p")
    return total


def idealized_result(
    zac_result: CompilationResult,
    architecture: Architecture,
    mode: str,
    params: NeutralAtomParams = NEUTRAL_ATOM,
) -> BaselineResult:
    """Recompute a ZAC result's metrics under one of the ideal scenarios.

    The idealised schedule is lowered to a ZAIR program whose movement
    epochs are abstract :class:`~repro.zair.instructions.TransferEpochInst`
    instructions (the bounds assume every movement of an epoch is
    compatible, which a concrete per-AOD job could not express), and the
    reported numbers are derived by the shared interpreter.
    """
    if mode not in _MODE_NAMES:
        raise ValueError(f"unknown ideal mode {mode!r}")

    program = _lower_idealized(zac_result, architecture, mode, params)
    replay = interpret_program(program, architecture=architecture, params=params)
    replay.metrics.compile_time_s = zac_result.metrics.compile_time_s
    return BaselineResult(
        circuit_name=zac_result.circuit_name,
        architecture_name=architecture.name,
        compiler_name=_MODE_NAMES[mode],
        metrics=replay.metrics,
        fidelity=replay.fidelity,
        program=program,
        architecture=architecture,
    )


def _lower_idealized(
    zac_result: CompilationResult,
    architecture: Architecture,
    mode: str,
    params: NeutralAtomParams,
) -> ZAIRProgram:
    """Build the idealised ZAIR program from a ZAC compilation."""
    staged = zac_result.staged
    plan = zac_result.plan
    builder = BaselineProgramBuilder(architecture, staged.num_qubits, params)
    program = builder.program
    location: dict[int, Location] = {
        q: Location.at_storage(trap) for q, trap in plan.initial.items()
    }
    builder.emit_init(location)

    min_epoch_us = 2.0 * params.t_transfer_us + movement_time_us(
        architecture.zone_separation, params
    )

    def epoch_duration(movements: list[Movement]) -> float:
        if mode == PERFECT_MOVEMENT:
            longest = max(m.distance_um(architecture) for m in movements)
            return 2.0 * params.t_transfer_us + movement_time_us(longest, params)
        return min_epoch_us

    def emit_epoch(movements: list[Movement], clock: float) -> float:
        if not movements:
            return clock
        duration = epoch_duration(movements)
        begin_locs = [location_qloc(architecture, m.qubit, m.source) for m in movements]
        for movement in movements:
            location[movement.qubit] = movement.destination
        end_locs = [
            location_qloc(architecture, m.qubit, m.destination) for m in movements
        ]
        program.instructions.append(
            TransferEpochInst(
                begin_locs=begin_locs,
                end_locs=end_locs,
                begin_time=clock,
                end_time=clock + duration,
            )
        )
        return clock + duration

    clock = 0.0
    rydberg_index = 0
    for stage in staged.stages:
        if isinstance(stage, OneQStage):
            clock = builder.emit_1q_stage(stage, location, clock)
        elif isinstance(stage, RydbergStage):
            stage_plan = plan.stages[rydberg_index]
            clock = emit_epoch(stage_plan.incoming, clock)
            # One (simultaneous) pulse per illuminated zone, as the scheduler
            # emits for ZAC itself.
            gates_by_zone: dict[int, list[tuple[int, int]]] = {}
            for entry in stage_plan.gates:
                gates_by_zone.setdefault(entry.site.zone_index, []).append(
                    tuple(entry.qubits)
                )
            for zone_index in sorted(gates_by_zone):
                program.instructions.append(
                    RydbergInst(
                        zone_id=zone_index,
                        gates=gates_by_zone[zone_index],
                        begin_time=clock,
                        end_time=clock + params.t_2q_us,
                    )
                )
            clock += params.t_2q_us
            clock = emit_epoch(stage_plan.outgoing, clock)
            rydberg_index += 1

    if mode == PERFECT_REUSE:
        stage_pairs = [s.pairs for s in staged.rydberg_stages]
        max_reuse = maximal_reuse_count(stage_pairs)
        extra = max(0, max_reuse - plan.num_reuses)
        # Each extra reuse saves the two transfers of the round trip to
        # storage; credit them against the emitted epochs, last first.
        credit = 2 * extra
        for inst in reversed(program.instructions):
            if credit <= 0:
                break
            if isinstance(inst, TransferEpochInst):
                take = min(credit, inst.num_transfers)
                inst.transfer_count = inst.num_transfers - take
                credit -= take
    return program


def idealized_result_legacy(
    zac_result: CompilationResult,
    architecture: Architecture,
    mode: str,
    params: NeutralAtomParams = NEUTRAL_ATOM,
) -> BaselineResult:
    """Hand-accumulated metrics path (conformance oracle for
    :func:`idealized_result`)."""
    if mode not in _MODE_NAMES:
        raise ValueError(f"unknown ideal mode {mode!r}")

    staged = zac_result.staged
    plan = zac_result.plan

    metrics = ExecutionMetrics(num_qubits=staged.num_qubits)
    metrics.qubit_busy_us = {q: 0.0 for q in range(staged.num_qubits)}
    metrics.num_excitations = zac_result.metrics.num_excitations
    metrics.num_rydberg_stages = zac_result.metrics.num_rydberg_stages
    metrics.compile_time_s = zac_result.metrics.compile_time_s

    min_epoch_us = 2.0 * params.t_transfer_us + movement_time_us(
        architecture.zone_separation, params
    )

    def epoch_duration(movements: list[Movement]) -> float:
        if not movements:
            return 0.0
        if mode == PERFECT_MOVEMENT:
            longest = max(m.distance_um(architecture) for m in movements)
            return 2.0 * params.t_transfer_us + movement_time_us(longest, params)
        return min_epoch_us

    clock = 0.0
    rydberg_index = 0
    for stage in staged.stages:
        if isinstance(stage, OneQStage):
            clock += len(stage.gates) * params.t_1q_us
            for gate in stage.gates:
                metrics.qubit_busy_us[gate.qubits[0]] += params.t_1q_us
            metrics.num_1q_gates += len(stage.gates)
        elif isinstance(stage, RydbergStage):
            stage_plan = plan.stages[rydberg_index]
            for movements in (stage_plan.incoming, stage_plan.outgoing):
                clock += epoch_duration(movements)
                for move in movements:
                    metrics.num_transfers += 2
                    metrics.num_movements += 1
                    metrics.qubit_busy_us[move.qubit] += 2.0 * params.t_transfer_us
            for qubit in {q for g in stage_plan.gates for q in g.qubits}:
                metrics.qubit_busy_us[qubit] += params.t_2q_us
            metrics.num_2q_gates += len(stage_plan.gates)
            clock += params.t_2q_us
            rydberg_index += 1

    if mode == PERFECT_REUSE:
        stage_pairs = [s.pairs for s in staged.rydberg_stages]
        max_reuse = maximal_reuse_count(stage_pairs)
        achieved = plan.num_reuses
        extra = max(0, max_reuse - achieved)
        # Each extra reuse saves the two transfers of the round trip to storage.
        metrics.num_transfers = max(0, metrics.num_transfers - 2 * extra)

    metrics.duration_us = clock
    fidelity = estimate_fidelity(metrics, params)
    return BaselineResult(
        circuit_name=zac_result.circuit_name,
        architecture_name=architecture.name,
        compiler_name=_MODE_NAMES[mode],
        metrics=metrics,
        fidelity=fidelity,
    )


class IdealBound:
    """Convenience wrapper: run ZAC, then idealise its result.

    Prefer :func:`idealized_result` when a ZAC result is already available
    (it avoids recompiling).

    Attributes:
        zac_resolver: Optional hook ``resolver(circuit) -> CompileResult``
            supplying the underlying ZAC compilation.  The registry compile
            service sets this when its content-addressed cache is enabled,
            so a sweep compiling both ``zac`` and ``ideal`` on one circuit
            pays for the ZAC pipeline once (the idealisation only reads the
            staged circuit and placement plan, which are identical whether
            or not jobs were lowered).
    """

    PERFECT_MOVEMENT = PERFECT_MOVEMENT
    PERFECT_PLACEMENT = PERFECT_PLACEMENT
    PERFECT_REUSE = PERFECT_REUSE

    def __init__(
        self,
        mode: str,
        architecture: Architecture | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
        config: "ZACConfig | None" = None,
    ) -> None:
        from ..arch.presets import reference_zoned_architecture
        from ..core.config import ZACConfig

        if mode not in _MODE_NAMES:
            raise ValueError(f"unknown ideal mode {mode!r}")
        self.mode = mode
        self.architecture = architecture or reference_zoned_architecture()
        self.params = params
        self.config = config or ZACConfig()
        self.name = _MODE_NAMES[mode]
        self.zac_resolver = None

    def compile(self, circuit) -> BaselineResult:
        """Compile with ZAC, then recompute the metrics under the ideal scenario."""
        if self.zac_resolver is not None:
            return self.from_result(self.zac_resolver(circuit))
        from ..core.compiler import ZACCompiler

        zac = ZACCompiler(
            self.architecture, config=self.config, params=self.params, lower_jobs=False
        )
        result = zac.compile(circuit)
        return self.from_result(result)

    def from_result(self, zac_result: CompilationResult) -> BaselineResult:
        """Idealise an existing ZAC compilation result."""
        return idealized_result(zac_result, self.architecture, self.mode, self.params)
