"""repro: reproduction of ZAC -- Reuse-Aware Compilation for Zoned Quantum
Architectures Based on Neutral Atoms (HPCA 2025).

The public API is the backend registry::

    import repro

    result = repro.compile("bv_n14", backend="zac")   # or any QuantumCircuit
    repro.available_backends()  # ["zac", "enola", "atomique", "nalac", "sc", "ideal"]
    results = repro.compile_many(["bv_n14", "ghz_n23"], backend="nalac", parallel=4)
    print(result.to_json())     # CompileResult round-trips via from_json/from_dict

``repro.compile`` returns the unified :class:`~repro.core.result.CompileResult`
for every backend; ``repro.register_backend`` plugs new compilers into the
same harness.  A CLI smoke entry is available as ``python -m repro``.

The package is organised as:

* :mod:`repro.api`       -- backend registry, ``compile``/``compile_many``, options
* :mod:`repro.circuits`   -- circuit IR, QASM I/O, resynthesis, benchmark library
* :mod:`repro.arch`       -- zoned-architecture specification and presets
* :mod:`repro.zair`       -- the ZAIR intermediate representation
* :mod:`repro.fidelity`   -- fidelity / timing models (neutral atom + superconducting)
* :mod:`repro.core`       -- the ZAC compiler as a pass pipeline
                             (preprocess -> place -> route -> schedule -> fidelity)
* :mod:`repro.baselines`  -- Enola / Atomique / NALAC / superconducting / ideal bounds
* :mod:`repro.ftqc`       -- [[8,3,2]] code blocks and hIQP transversal-gate compilation
* :mod:`repro.experiments`-- harnesses regenerating every table and figure,
                             plus cross-backend differential fuzzing
                             (``python -m repro fuzz``)
"""

__version__ = "1.2.0"

from .api import (
    CompileResult,
    UnknownBackendError,
    available_backends,
    compile,
    compile_many,
    create_backend,
    load_results,
    merge_results,
    register_backend,
    save_results,
)
from .arch import reference_zoned_architecture
from .circuits import QuantumCircuit, Workload, WorkloadDescriptor, generate
from .core import CompilationResult, ZACCompiler, ZACConfig

__all__ = [
    "CompilationResult",  # deprecated alias of CompileResult
    "CompileResult",
    "QuantumCircuit",
    "UnknownBackendError",
    "Workload",
    "WorkloadDescriptor",
    "ZACCompiler",
    "ZACConfig",
    "available_backends",
    "compile",
    "compile_many",
    "create_backend",
    "generate",
    "load_results",
    "merge_results",
    "reference_zoned_architecture",
    "register_backend",
    "save_results",
    "__version__",
]
