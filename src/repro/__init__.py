"""repro: reproduction of ZAC -- Reuse-Aware Compilation for Zoned Quantum
Architectures Based on Neutral Atoms (HPCA 2025).

The package is organised as:

* :mod:`repro.circuits`   -- circuit IR, QASM I/O, resynthesis, benchmark library
* :mod:`repro.arch`       -- zoned-architecture specification and presets
* :mod:`repro.zair`       -- the ZAIR intermediate representation
* :mod:`repro.fidelity`   -- fidelity / timing models (neutral atom + superconducting)
* :mod:`repro.core`       -- the ZAC compiler (placement, routing, scheduling)
* :mod:`repro.baselines`  -- Enola / Atomique / NALAC / superconducting / ideal bounds
* :mod:`repro.ftqc`       -- [[8,3,2]] code blocks and hIQP transversal-gate compilation
* :mod:`repro.experiments`-- harnesses regenerating every table and figure
"""

__version__ = "1.0.0"

from .arch import reference_zoned_architecture
from .circuits import QuantumCircuit
from .core import CompilationResult, ZACCompiler, ZACConfig

__all__ = [
    "CompilationResult",
    "QuantumCircuit",
    "ZACCompiler",
    "ZACConfig",
    "reference_zoned_architecture",
    "__version__",
]
