"""Quantum circuit container used throughout the compiler.

A :class:`QuantumCircuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
objects over ``num_qubits`` qubits.  It offers the small set of structural
queries the compiler needs: operation counts, depth, the two-qubit
interaction graph, and dependency-based iteration.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator

import networkx as nx

from .gates import (
    Gate,
    GateError,
    ONE_QUBIT_GATES,
    THREE_QUBIT_GATES,
    TWO_QUBIT_GATES,
)


class CircuitError(ValueError):
    """Raised for structurally invalid circuit operations."""


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Args:
        num_qubits: Number of qubits addressed by the circuit.
        name: Optional human-readable circuit name (used in reports).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> None:
        """Append a gate, validating its qubit indices."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        self._gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append several gates in order."""
        for gate in gates:
            self.append(gate)

    def add(self, name: str, *qubits: int, params: Iterable[float] = ()) -> None:
        """Append a gate by name, e.g. ``circ.add("cz", 0, 1)``."""
        name = name.lower()
        known = ONE_QUBIT_GATES | TWO_QUBIT_GATES | THREE_QUBIT_GATES
        if name not in known:
            raise GateError(f"unknown gate name: {name}")
        self.append(Gate(name, tuple(qubits), tuple(float(p) for p in params)))

    # Named helpers for the most common gates (keeps generators readable).

    def h(self, q: int) -> None:
        self.add("h", q)

    def x(self, q: int) -> None:
        self.add("x", q)

    def z(self, q: int) -> None:
        self.add("z", q)

    def t(self, q: int) -> None:
        self.add("t", q)

    def tdg(self, q: int) -> None:
        self.add("tdg", q)

    def rx(self, theta: float, q: int) -> None:
        self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> None:
        self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> None:
        self.add("rz", q, params=(theta,))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> None:
        self.add("u3", q, params=(theta, phi, lam))

    def cx(self, c: int, t: int) -> None:
        self.add("cx", c, t)

    def cz(self, a: int, b: int) -> None:
        self.add("cz", a, b)

    def cp(self, theta: float, c: int, t: int) -> None:
        self.add("cp", c, t, params=(theta,))

    def rzz(self, theta: float, a: int, b: int) -> None:
        self.add("rzz", a, b, params=(theta,))

    def swap(self, a: int, b: int) -> None:
        self.add("swap", a, b)

    def ccx(self, a: int, b: int, c: int) -> None:
        self.add("ccx", a, b, c)

    def ccz(self, a: int, b: int, c: int) -> None:
        self.add("ccz", a, b, c)

    def cswap(self, c: int, a: int, b: int) -> None:
        self.add("cswap", c, a, b)

    def cry(self, theta: float, c: int, t: int) -> None:
        self.add("cry", c, t, params=(theta,))

    # -- queries ------------------------------------------------------------

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gates in program order."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def count_ops(self) -> Counter:
        """Return a Counter mapping gate name to occurrence count."""
        return Counter(g.name for g in self._gates)

    @property
    def num_1q_gates(self) -> int:
        """Number of single-qubit gates."""
        return sum(1 for g in self._gates if g.num_qubits == 1)

    @property
    def num_2q_gates(self) -> int:
        """Number of two-qubit gates."""
        return sum(1 for g in self._gates if g.num_qubits == 2)

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        level: dict[int, int] = defaultdict(int)
        depth = 0
        for gate in self._gates:
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def two_qubit_depth(self) -> int:
        """Circuit depth counting only two-qubit gates."""
        level: dict[int, int] = defaultdict(int)
        depth = 0
        for gate in self._gates:
            if gate.num_qubits < 2:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def used_qubits(self) -> set[int]:
        """Set of qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def interaction_graph(self) -> nx.Graph:
        """Weighted graph of two-qubit interactions.

        Nodes are qubit indices; edge weight counts how many two-qubit gates
        act on that pair.
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        for gate in self._gates:
            if gate.num_qubits != 2:
                continue
            a, b = gate.qubits
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
        return graph

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (gates are immutable)."""
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out._gates = list(self._gates)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._gates)})"
        )
