"""Seeded random workload generators for stress testing and differential fuzzing.

The curated 17-benchmark set exercises a fixed slice of circuit space; the
generators here synthesise workloads that probe the corners it never reaches.
Every generator draws all randomness from one ``numpy.random.Generator``
seeded by the caller, so a workload is fully reproduced by its
:class:`WorkloadDescriptor` -- the ``(generator, seed, params)`` triple that
:func:`generate` turns back into the identical circuit, gate for gate.

Available generators (see :data:`GENERATORS`):

``clifford_t``
    Layers of random Clifford+T single-qubit gates with a random CZ/CX
    matching per layer.
``qaoa_erdos_renyi`` / ``qaoa_regular``
    QAOA ansatz (RZZ cost + RX mixer rounds) on an Erdős–Rényi or random
    regular graph.
``hardware_efficient``
    Hardware-efficient ansatz: RY/RZ rotation layers with a linear CX
    entangler ladder.
``brickwork``
    Brickwork entangler: random U3 on every qubit, alternating even/odd CZ
    pairs.
``mirror``
    ``C · C⁻¹`` mirror circuits over any of the other generators; the ideal
    result is the identity, which makes them self-checking workloads.

Each generator consumes its random draws layer by layer, so for a fixed seed
the circuit at depth ``d`` is a gate-list prefix of the circuit at any depth
``d' > d`` -- except ``mirror``, whose appended inverse half depends on the
total depth.  The fuzz harness (:mod:`repro.experiments.fuzz`) relies on this
prefix property for its depth-monotonicity invariant, which is why its depth
ladders never use ``mirror``.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import networkx as nx
import numpy as np

from .circuit import QuantumCircuit
from .gates import Gate


class GeneratorError(ValueError):
    """Raised for unknown generators or invalid generator parameters."""


# ---------------------------------------------------------------------------
# Descriptors: the reproducible identity of a generated workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Everything needed to regenerate a workload: ``(generator, seed, params)``."""

    generator: str
    seed: int
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "generator": self.generator,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadDescriptor":
        return cls(
            generator=str(data["generator"]),
            seed=int(data["seed"]),
            params=dict(data.get("params", {})),
        )

    def build(self) -> QuantumCircuit:
        """Regenerate the described circuit (identical gate list)."""
        return generate(self.generator, seed=self.seed, **self.params).circuit


@dataclass(frozen=True)
class Workload:
    """A generated circuit together with its reproducible descriptor."""

    circuit: QuantumCircuit
    descriptor: WorkloadDescriptor


# ---------------------------------------------------------------------------
# Generator registry
# ---------------------------------------------------------------------------

#: Registered generator functions ``fn(rng, *, num_qubits, depth, **extra)``.
GENERATORS: dict[str, Callable[..., QuantumCircuit]] = {}

#: Modules that register additional generators on import (kept out of this
#: module's import graph: :mod:`repro.ftqc.workloads` pulls in the compiler
#: stack, which must not load just because ``repro.circuits`` did).
_PLUGIN_MODULES: tuple[str, ...] = ("repro.ftqc.workloads",)

_plugins_loaded = False


def _ensure_plugins() -> None:
    """Import the generator plug-in modules once, on first registry use."""
    global _plugins_loaded
    if _plugins_loaded:
        return
    _plugins_loaded = True
    import importlib

    for module in _PLUGIN_MODULES:
        importlib.import_module(module)


def register_generator(name: str, fn: Callable[..., QuantumCircuit]) -> None:
    """Register a workload generator under ``name``.

    The function receives a ``numpy.random.Generator`` plus the descriptor
    params (every generator takes ``num_qubits`` and ``depth``) and returns
    the generated circuit.  Registered generators are addressable by
    :func:`generate` and therefore by :class:`WorkloadDescriptor` replay,
    the fuzz harness, and the serve daemon's ``descriptor`` circuit spec.
    """
    GENERATORS[name] = fn


def _register(name: str):
    def decorator(fn: Callable[..., QuantumCircuit]):
        register_generator(name, fn)
        return fn

    return decorator


def generator_names() -> list[str]:
    """Names of all registered workload generators, in registration order."""
    _ensure_plugins()
    return list(GENERATORS)


def generate(generator: str, seed: int = 0, **params: Any) -> Workload:
    """Run a registered generator and tag the circuit with its provenance.

    Args:
        generator: Name in :data:`GENERATORS` (see :func:`generator_names`).
        seed: Seed for the ``numpy.random.Generator`` handed to the generator.
        **params: Generator parameters (all take ``num_qubits`` and ``depth``).

    Returns:
        The tagged circuit plus the descriptor that regenerates it.

    Raises:
        GeneratorError: for an unknown generator name or invalid parameters.
    """
    if generator not in GENERATORS:
        _ensure_plugins()
    if generator not in GENERATORS:
        raise GeneratorError(
            f"unknown generator {generator!r}; known: {', '.join(GENERATORS)}"
        )
    rng = np.random.default_rng(seed)
    try:
        circuit = GENERATORS[generator](rng, **params)
    except TypeError as exc:
        raise GeneratorError(f"invalid parameters for {generator!r}: {exc}") from None
    tag = ",".join(f"{key}={params[key]}" for key in sorted(params))
    circuit.name = f"{generator}[{tag},seed={seed}]" if tag else f"{generator}[seed={seed}]"
    return Workload(circuit, WorkloadDescriptor(generator, int(seed), dict(params)))


def _require_size(num_qubits: int, depth: int) -> None:
    if num_qubits < 2:
        raise GeneratorError("generated workloads need at least 2 qubits")
    if depth < 1:
        raise GeneratorError("generated workloads need depth >= 1")


# ---------------------------------------------------------------------------
# Circuit inversion (for mirror workloads)
# ---------------------------------------------------------------------------

#: Gates that are their own inverse.
_SELF_INVERSE = {
    "id", "x", "y", "z", "h", "cx", "cnot", "cz", "cy", "ch", "swap",
    "ccx", "toffoli", "ccz", "cswap", "fredkin",
}

#: Parameter-free gates whose inverse is another named gate.
_NAMED_INVERSE = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}

#: Rotation-style gates inverted by negating every parameter.
_NEGATE_PARAMS = {"rx", "ry", "rz", "p", "u1", "cp", "cu1", "crz", "crx", "cry", "rzz", "rxx"}


def inverse_gate(gate: Gate) -> Gate:
    """Return the inverse of ``gate``.

    Raises:
        GeneratorError: if the gate has no known symbolic inverse.
    """
    if gate.name in _SELF_INVERSE:
        return gate
    if gate.name in _NAMED_INVERSE:
        return Gate(_NAMED_INVERSE[gate.name], gate.qubits)
    if gate.name in _NEGATE_PARAMS:
        return Gate(gate.name, gate.qubits, tuple(-p for p in gate.params))
    if gate.name in ("u3", "u"):
        theta, phi, lam = gate.params
        return Gate(gate.name, gate.qubits, (-theta, -lam, -phi))
    if gate.name == "u2":
        phi, lam = gate.params
        # u2(phi, lam) == u3(pi/2, phi, lam), so the inverse is a u3.
        return Gate("u3", gate.qubits, (-math.pi / 2.0, -lam, -phi))
    raise GeneratorError(f"no symbolic inverse for gate {gate.name!r}")


def inverse_circuit(circuit: QuantumCircuit, name: str | None = None) -> QuantumCircuit:
    """Return ``circuit``'s inverse: every gate inverted, in reverse order."""
    out = QuantumCircuit(circuit.num_qubits, name or f"{circuit.name}_inv")
    for gate in reversed(circuit.gates):
        out.append(inverse_gate(gate))
    return out


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

_CLIFFORD_T_1Q = ("h", "s", "sdg", "t", "tdg", "x", "z")


def _random_matching(rng: np.random.Generator, num_qubits: int, pair_prob: float) -> list[tuple[int, int]]:
    """Pair up a random shuffle of the qubits, keeping each pair with ``pair_prob``."""
    order = [int(q) for q in rng.permutation(num_qubits)]
    pairs = []
    for i in range(0, num_qubits - 1, 2):
        if rng.random() < pair_prob:
            pairs.append((order[i], order[i + 1]))
    return pairs


@_register("clifford_t")
def clifford_t_layers(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    one_q_prob: float = 0.6,
    pair_prob: float = 0.7,
) -> QuantumCircuit:
    """Random Clifford+T layers: 1Q gates plus a random CZ/CX matching per layer."""
    _require_size(num_qubits, depth)
    circ = QuantumCircuit(num_qubits, "clifford_t")
    for _ in range(depth):
        for q in range(num_qubits):
            if rng.random() < one_q_prob:
                circ.add(_CLIFFORD_T_1Q[int(rng.integers(len(_CLIFFORD_T_1Q)))], q)
        for a, b in _random_matching(rng, num_qubits, pair_prob):
            if rng.random() < 0.5:
                circ.cz(a, b)
            else:
                circ.cx(a, b)
    if len(circ) == 0:  # vanishingly unlikely, but keep circuits non-empty
        circ.h(0)
    return circ


def _qaoa_rounds(
    rng: np.random.Generator,
    circ: QuantumCircuit,
    edges: list[tuple[int, int]],
    rounds: int,
) -> QuantumCircuit:
    for q in range(circ.num_qubits):
        circ.h(q)
    for _ in range(rounds):
        gamma = float(rng.uniform(0.0, 2.0 * math.pi))
        beta = float(rng.uniform(0.0, math.pi))
        for a, b in edges:
            circ.rzz(gamma, a, b)
        for q in range(circ.num_qubits):
            circ.rx(beta, q)
    return circ


@_register("qaoa_erdos_renyi")
def qaoa_erdos_renyi(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    edge_prob: float = 0.4,
) -> QuantumCircuit:
    """QAOA on an Erdős–Rényi ``G(n, p)`` graph; ``depth`` counts rounds."""
    _require_size(num_qubits, depth)
    graph = nx.gnp_random_graph(num_qubits, edge_prob, seed=int(rng.integers(2**31)))
    edges = sorted((min(a, b), max(a, b)) for a, b in graph.edges)
    if not edges:
        edges = [(0, 1)]
    return _qaoa_rounds(rng, QuantumCircuit(num_qubits, "qaoa_er"), edges, depth)


@_register("qaoa_regular")
def qaoa_regular(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    degree: int = 3,
) -> QuantumCircuit:
    """QAOA on a random ``degree``-regular graph; ``depth`` counts rounds.

    The degree is clamped to ``num_qubits - 1`` and decremented if needed so
    that ``num_qubits * degree`` is even (a regular graph must exist).
    """
    _require_size(num_qubits, depth)
    d = min(int(degree), num_qubits - 1)
    if (num_qubits * d) % 2 == 1:
        d -= 1
    if d <= 0:
        edges = [(q, q + 1) for q in range(num_qubits - 1)]
    else:
        graph = nx.random_regular_graph(d, num_qubits, seed=int(rng.integers(2**31)))
        edges = sorted((min(a, b), max(a, b)) for a, b in graph.edges)
    return _qaoa_rounds(rng, QuantumCircuit(num_qubits, "qaoa_reg"), edges, depth)


@_register("hardware_efficient")
def hardware_efficient(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
) -> QuantumCircuit:
    """Hardware-efficient ansatz: RY/RZ rotations plus a linear CX ladder per layer."""
    _require_size(num_qubits, depth)
    circ = QuantumCircuit(num_qubits, "hardware_efficient")
    for _ in range(depth):
        for q in range(num_qubits):
            circ.ry(float(rng.uniform(0.0, math.pi)), q)
            circ.rz(float(rng.uniform(-math.pi, math.pi)), q)
        for q in range(num_qubits - 1):
            circ.cx(q, q + 1)
    return circ


@_register("brickwork")
def brickwork(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
) -> QuantumCircuit:
    """Brickwork entangler: random U3 on every qubit, alternating even/odd CZ pairs."""
    _require_size(num_qubits, depth)
    circ = QuantumCircuit(num_qubits, "brickwork")
    for layer in range(depth):
        for q in range(num_qubits):
            circ.u3(
                float(rng.uniform(0.0, math.pi)),
                float(rng.uniform(-math.pi, math.pi)),
                float(rng.uniform(-math.pi, math.pi)),
                q,
            )
        for q in range(layer % 2, num_qubits - 1, 2):
            circ.cz(q, q + 1)
    return circ


@_register("mirror")
def mirror(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    base: str = "brickwork",
    **base_params: Any,
) -> QuantumCircuit:
    """Mirror circuit ``C · C⁻¹`` over any other generator (a known identity).

    ``depth`` is the *total* depth budget; the base half uses ``depth // 2``
    layers (at least one).
    """
    _require_size(num_qubits, depth)
    if base == "mirror":
        raise GeneratorError("mirror circuits cannot mirror themselves")
    if base not in GENERATORS:
        raise GeneratorError(
            f"unknown mirror base {base!r}; known: {', '.join(GENERATORS)}"
        )
    half = GENERATORS[base](
        rng, num_qubits=num_qubits, depth=max(1, depth // 2), **base_params
    )
    circ = QuantumCircuit(num_qubits, f"mirror_{base}")
    circ.extend(half.gates)
    circ.extend(inverse_circuit(half).gates)
    return circ
