"""Minimal OpenQASM 2.0 reader and writer.

Supports the subset of OpenQASM 2.0 used by QASMBench-style benchmark
circuits: a single quantum register, the standard gate names understood by
:mod:`repro.circuits.gates`, numeric / ``pi``-expression parameters, and
``barrier`` / ``measure`` statements (which are ignored, since the compiler
models unitary circuits).
"""

from __future__ import annotations

import math
import re

from .circuit import CircuitError, QuantumCircuit
from .gates import ONE_QUBIT_GATES, THREE_QUBIT_GATES, TWO_QUBIT_GATES


class QASMError(ValueError):
    """Raised when a QASM program cannot be parsed."""


_IGNORED_PREFIXES = ("OPENQASM", "include", "creg", "barrier", "measure", "//", "reset")

_QREG_RE = re.compile(r"qreg\s+(?P<name>\w+)\s*\[\s*(?P<size>\d+)\s*\]")
_GATE_RE = re.compile(
    r"(?P<name>[a-zA-Z_]\w*)\s*(?:\((?P<params>[^)]*)\))?\s+(?P<args>[^;]+)"
)
_ARG_RE = re.compile(r"(?P<reg>\w+)\s*\[\s*(?P<idx>\d+)\s*\]")

_SAFE_EVAL_NAMES = {"pi": math.pi, "e": math.e}


def _eval_param(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    expr = expr.strip()
    if not re.fullmatch(r"[\d\s\.\+\-\*/\(\)eE]*|.*pi.*", expr):
        raise QASMError(f"unsupported parameter expression: {expr!r}")
    if not re.fullmatch(r"[\w\s\.\+\-\*/\(\)]*", expr):
        raise QASMError(f"unsupported parameter expression: {expr!r}")
    try:
        return float(eval(expr, {"__builtins__": {}}, _SAFE_EVAL_NAMES))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QASMError(f"cannot evaluate parameter {expr!r}") from exc


def loads(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 string into a :class:`QuantumCircuit`."""
    statements = [s.strip() for s in text.replace("\n", " ").split(";")]
    statements = [s for s in statements if s]

    register: str | None = None
    num_qubits = 0
    circuit: QuantumCircuit | None = None
    pending: list[str] = []

    for stmt in statements:
        if any(stmt.startswith(p) for p in _IGNORED_PREFIXES):
            continue
        qreg = _QREG_RE.match(stmt)
        if qreg:
            if register is not None:
                raise QASMError("only a single qreg is supported")
            register = qreg.group("name")
            num_qubits = int(qreg.group("size"))
            circuit = QuantumCircuit(num_qubits, name)
            for gate_stmt in pending:
                _apply_gate_statement(circuit, register, gate_stmt)
            pending.clear()
            continue
        if circuit is None:
            pending.append(stmt)
            continue
        _apply_gate_statement(circuit, register, stmt)

    if circuit is None:
        raise QASMError("QASM program declares no qreg")
    return circuit


def _apply_gate_statement(circuit: QuantumCircuit, register: str, stmt: str) -> None:
    match = _GATE_RE.match(stmt)
    if not match:
        raise QASMError(f"cannot parse statement: {stmt!r}")
    name = match.group("name").lower()
    if name == "cu3":
        raise QASMError("cu3 is not supported; decompose it upstream")
    known = ONE_QUBIT_GATES | TWO_QUBIT_GATES | THREE_QUBIT_GATES
    if name not in known:
        raise QASMError(f"unknown gate {name!r} in statement {stmt!r}")
    params = (
        tuple(_eval_param(p) for p in match.group("params").split(","))
        if match.group("params")
        else ()
    )
    qubits = []
    for arg in match.group("args").split(","):
        arg_match = _ARG_RE.search(arg)
        if not arg_match:
            raise QASMError(f"cannot parse qubit argument {arg!r}")
        if arg_match.group("reg") != register:
            raise QASMError(f"unknown register {arg_match.group('reg')!r}")
        qubits.append(int(arg_match.group("idx")))
    try:
        circuit.add(name, *qubits, params=params)
    except CircuitError as exc:
        raise QASMError(str(exc)) from exc


def load(path: str, name: str | None = None) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return loads(text, name or path)


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        # repr() emits the shortest decimal that round-trips the exact float,
        # so loads(dumps(circuit)) reproduces parameters bit for bit.
        params = (
            "(" + ",".join(repr(float(p)) for p in gate.params) + ")" if gate.params else ""
        )
        args = ",".join(f"q[{q}]" for q in gate.qubits)
        lines.append(f"{gate.name}{params} {args};")
    return "\n".join(lines) + "\n"


def dump(circuit: QuantumCircuit, path: str) -> None:
    """Write a circuit to an OpenQASM 2.0 file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit))
