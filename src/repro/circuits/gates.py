"""Gate definitions for the circuit intermediate representation.

The compiler only needs a small amount of semantic information about each
gate: its name, the qubits it acts on, its (real) parameters, and -- for
single-qubit gates -- its 2x2 unitary matrix so that runs of single-qubit
gates can be merged into a single ``U3`` during resynthesis.

Two-qubit and three-qubit gates carry no matrix; they are decomposed
symbolically in :mod:`repro.circuits.synthesis`.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

#: Names of gates the zoned hardware natively supports.
NATIVE_1Q = "u3"
NATIVE_2Q = "cz"

#: All single-qubit gate names understood by the front end.
ONE_QUBIT_GATES = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u1", "u2", "u3", "u",
}

#: All two-qubit gate names understood by the front end.
TWO_QUBIT_GATES = {"cx", "cnot", "cz", "cy", "ch", "swap", "cp", "cu1", "crz", "crx", "cry", "rzz", "rxx", "iswap"}

#: All three-qubit gate names understood by the front end.
THREE_QUBIT_GATES = {"ccx", "toffoli", "ccz", "cswap", "fredkin"}


class GateError(ValueError):
    """Raised when a gate is constructed or used incorrectly."""


@dataclass(frozen=True)
class Gate:
    """A single quantum gate applied to one or more qubits.

    Attributes:
        name: Lower-case gate name, e.g. ``"cz"`` or ``"u3"``.
        qubits: Tuple of qubit indices the gate acts on.  For controlled
            gates the controls come first.
        params: Tuple of real parameters (angles in radians).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise GateError(f"gate {self.name} has duplicate qubits {self.qubits}")
        if self.num_qubits == 0:
            raise GateError(f"gate {self.name} acts on no qubits")

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_single_qubit(self) -> bool:
        return self.num_qubits == 1

    @property
    def is_two_qubit(self) -> bool:
        return self.num_qubits == 2

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy of this gate with qubits relabelled via ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{p:.6g}" for p in self.params)
        args = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.name}({params}) {args}" if params else f"{self.name} {args}"


# ---------------------------------------------------------------------------
# Single-qubit unitaries
# ---------------------------------------------------------------------------

_SQRT2 = math.sqrt(2.0)

_FIXED_1Q_MATRICES: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sxdg": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
}


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the standard U3(theta, phi, lambda) unitary."""
    ct = math.cos(theta / 2.0)
    st = math.sin(theta / 2.0)
    return np.array(
        [
            [ct, -cmath.exp(1j * lam) * st],
            [cmath.exp(1j * phi) * st, cmath.exp(1j * (phi + lam)) * ct],
        ],
        dtype=complex,
    )


def single_qubit_matrix(gate: Gate) -> np.ndarray:
    """Return the 2x2 unitary of a single-qubit gate.

    Raises:
        GateError: if the gate is not a recognised single-qubit gate.
    """
    if not gate.is_single_qubit:
        raise GateError(f"{gate.name} is not a single-qubit gate")
    name = gate.name
    if name in _FIXED_1Q_MATRICES:
        return _FIXED_1Q_MATRICES[name].copy()
    p = gate.params
    if name == "rx":
        return u3_matrix(p[0], -math.pi / 2, math.pi / 2)
    if name == "ry":
        return u3_matrix(p[0], 0.0, 0.0)
    if name == "rz":
        half = p[0] / 2.0
        return np.array(
            [[cmath.exp(-1j * half), 0], [0, cmath.exp(1j * half)]], dtype=complex
        )
    if name in ("p", "u1"):
        return np.array([[1, 0], [0, cmath.exp(1j * p[0])]], dtype=complex)
    if name == "u2":
        return u3_matrix(math.pi / 2, p[0], p[1])
    if name in ("u3", "u"):
        return u3_matrix(p[0], p[1], p[2])
    raise GateError(f"unknown single-qubit gate: {name}")


def matrix_to_u3(matrix: np.ndarray, tol: float = 1e-9) -> tuple[float, float, float]:
    """Decompose a 2x2 unitary into U3 angles (theta, phi, lambda).

    The global phase is discarded.  The decomposition satisfies
    ``u3_matrix(theta, phi, lam) ~ matrix`` up to a global phase.

    Raises:
        GateError: if ``matrix`` is not (approximately) unitary.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise GateError("matrix_to_u3 expects a 2x2 matrix")
    m00 = complex(matrix[0, 0])
    m01 = complex(matrix[0, 1])
    m10 = complex(matrix[1, 0])
    m11 = complex(matrix[1, 1])
    # Unitarity: M^H M == I, elementwise within np.allclose's default
    # tolerance formula (|x - y| <= atol + 1e-5 |y|), evaluated scalar --
    # this check runs once per merged 1Q-gate run and the array round trip
    # dominated resynthesis time.
    p00 = m00.conjugate() * m00 + m10.conjugate() * m10
    p01 = m00.conjugate() * m01 + m10.conjugate() * m11
    p10 = m01.conjugate() * m00 + m11.conjugate() * m10
    p11 = m01.conjugate() * m01 + m11.conjugate() * m11
    atol = 1e-6
    if not (
        abs(p00 - 1.0) <= atol + 1e-5
        and abs(p01) <= atol
        and abs(p10) <= atol
        and abs(p11 - 1.0) <= atol + 1e-5
    ):
        raise GateError("matrix is not unitary")

    # Remove global phase so that det == 1 (SU(2) form), then read angles.
    det = m00 * m11 - m01 * m10
    root = cmath.sqrt(det)

    a = m00 / root
    b = m10 / root
    theta = 2.0 * math.atan2(abs(b), abs(a))

    if abs(b) < tol:
        # Diagonal: only the sum phi+lam is defined; put it all in lam.
        phi_plus_lam = 2.0 * cmath.phase(m11 / root)
        return (0.0, 0.0, _wrap_angle(phi_plus_lam))
    if abs(a) < tol:
        # Anti-diagonal: only phi-lam is defined.
        phi_minus_lam = 2.0 * cmath.phase(b)
        return (math.pi, _wrap_angle(phi_minus_lam), 0.0)

    # In SU(2) form: phase(a) = -(phi+lam)/2 and phase(b) = (phi-lam)/2.
    ang_a = cmath.phase(a)            # -(phi+lam)/2
    ang_b = cmath.phase(b)            # (phi-lam)/2
    phi = ang_b - ang_a
    lam = -ang_b - ang_a
    return (_wrap_angle(theta), _wrap_angle(phi), _wrap_angle(lam))


def _wrap_angle(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    elif wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    return wrapped


def is_identity(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Return True if ``matrix`` equals the identity up to a global phase."""
    matrix = np.asarray(matrix, dtype=complex)
    phase = complex(matrix[0, 0])
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    # Scalar twin of np.allclose(matrix, phase * I, atol=tol): the check runs
    # per merged 1Q run, and the allclose round trip dominated it.
    abs_phase = abs(phase)
    return (
        abs(complex(matrix[0, 1])) <= tol
        and abs(complex(matrix[1, 0])) <= tol
        and abs(complex(matrix[0, 0]) - phase) <= tol + 1e-5 * abs_phase
        and abs(complex(matrix[1, 1]) - phase) <= tol + 1e-5 * abs_phase
    )


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def u3(theta: float, phi: float, lam: float, qubit: int) -> Gate:
    """Build a U3 gate."""
    return Gate("u3", (qubit,), (theta, phi, lam))


def cz(a: int, b: int) -> Gate:
    """Build a CZ gate."""
    return Gate("cz", (a, b))


def cx(control: int, target: int) -> Gate:
    """Build a CNOT gate."""
    return Gate("cx", (control, target))
