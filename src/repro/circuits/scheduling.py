"""ASAP stage scheduling (paper Section IV, Fig. 4).

After resynthesis, the circuit contains only ``u3`` and ``cz`` gates.  The
compiler groups them into an alternating sequence of *1Q-gate stages* and
*Rydberg stages*:

* a 1Q-gate stage is a set of U3 gates, at most one per qubit;
* a Rydberg stage is a set of CZ gates on pairwise-disjoint qubits -- one
  global Rydberg laser exposure executes all of them in parallel.

Scheduling is as-soon-as-possible: a gate joins the earliest stage for which
all of its dependencies have already been scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .circuit import QuantumCircuit
from .gates import Gate
from .synthesis import resynthesize


class SchedulingError(ValueError):
    """Raised when a circuit cannot be staged."""


@dataclass
class OneQStage:
    """A stage of single-qubit gates: at most one U3 per qubit."""

    gates: list[Gate] = field(default_factory=list)

    @property
    def qubits(self) -> set[int]:
        return {g.qubits[0] for g in self.gates}

    def __len__(self) -> int:
        return len(self.gates)


@dataclass
class RydbergStage:
    """A stage of CZ gates on pairwise-disjoint qubit pairs."""

    gates: list[Gate] = field(default_factory=list)

    @property
    def qubits(self) -> set[int]:
        out: set[int] = set()
        for g in self.gates:
            out.update(g.qubits)
        return out

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """Qubit pairs of the CZ gates in this stage."""
        return [(g.qubits[0], g.qubits[1]) for g in self.gates]

    def __len__(self) -> int:
        return len(self.gates)


@dataclass
class StagedCircuit:
    """The preprocessed circuit: alternating 1Q and Rydberg stages.

    Attributes:
        num_qubits: Number of program qubits.
        name: Circuit name carried through from the source circuit.
        stages: Interleaved ``OneQStage`` / ``RydbergStage`` objects in
            execution order.
    """

    num_qubits: int
    name: str
    stages: list[OneQStage | RydbergStage] = field(default_factory=list)

    @property
    def rydberg_stages(self) -> list[RydbergStage]:
        return [s for s in self.stages if isinstance(s, RydbergStage)]

    @property
    def one_q_stages(self) -> list[OneQStage]:
        return [s for s in self.stages if isinstance(s, OneQStage)]

    @property
    def num_rydberg_stages(self) -> int:
        return len(self.rydberg_stages)

    @property
    def num_1q_gates(self) -> int:
        return sum(len(s) for s in self.one_q_stages)

    @property
    def num_2q_gates(self) -> int:
        return sum(len(s) for s in self.rydberg_stages)

    def validate(self) -> None:
        """Check the per-stage qubit-disjointness invariant."""
        for stage in self.stages:
            seen: set[int] = set()
            for gate in stage.gates:
                for q in gate.qubits:
                    if q in seen:
                        raise SchedulingError(
                            f"qubit {q} appears twice in one stage of {self.name}"
                        )
                    seen.add(q)


def schedule_stages(circuit: QuantumCircuit, fast: bool = True) -> StagedCircuit:
    """ASAP-schedule a {CZ, U3} circuit into 1Q and Rydberg stages.

    The schedule preserves per-qubit gate order (the only dependency that
    matters for a circuit of 1Q and diagonal-symmetric 2Q gates).

    ``fast=True`` (the default) runs the linear-time queue-head scheduler;
    ``fast=False`` runs the original repeated-sweep reference.  The two are
    equivalent by construction (a gate is ready exactly when it heads every
    one of its qubits' pending queues) and pinned identical by
    ``tests/test_verify_equivalence.py``.
    """
    for gate in circuit:
        if gate.name not in ("u3", "cz"):
            raise SchedulingError(
                "schedule_stages expects a resynthesized {CZ, U3} circuit; "
                f"found {gate.name!r} (call resynthesize first)"
            )
    if fast:
        return _schedule_stages_fast(circuit)
    return _schedule_stages_reference(circuit)


def _schedule_stages_reference(circuit: QuantumCircuit) -> StagedCircuit:
    """Reference scheduler: repeated ready-sweeps over the remaining gates.

    O(stages x gates); kept as the equivalence oracle for
    :func:`_schedule_stages_fast`.
    """
    # ASAP levelling: each gate's level is 1 + max level of its qubits so far,
    # tracked separately for 1Q and 2Q gates so they interleave correctly.
    remaining = list(circuit.gates)
    staged = StagedCircuit(circuit.num_qubits, circuit.name)

    # Per-qubit pointer into the gate list is implicit: we repeatedly sweep the
    # remaining gates in program order and greedily pull every gate whose
    # qubits are all "ready" (no earlier unscheduled gate touches them).
    while remaining:
        # 1Q stage: take ready u3 gates.
        one_q = _take_ready(remaining, want_two_qubit=False)
        if one_q:
            staged.stages.append(OneQStage(one_q))
        # Rydberg stage: take ready cz gates with disjoint qubits.
        two_q = _take_ready(remaining, want_two_qubit=True)
        if two_q:
            staged.stages.append(RydbergStage(two_q))
        if not one_q and not two_q:
            raise SchedulingError("scheduler made no progress (internal error)")

    staged.validate()
    return staged


def _schedule_stages_fast(circuit: QuantumCircuit) -> StagedCircuit:
    """Linear-time scheduler equivalent to the reference repeated sweep.

    In one reference sweep, a gate is taken iff no *earlier remaining* gate
    shares a qubit with it -- i.e. iff it is the head of every one of its
    qubits' pending (program-order) gate queues.  So each stage is exactly
    the set of queue-head gates of the wanted kind, taken simultaneously in
    program order; removing them exposes the next stage.  Total work is
    O(gates) instead of O(stages x gates).
    """
    gates = circuit.gates
    staged = StagedCircuit(circuit.num_qubits, circuit.name)
    if not gates:
        return staged

    # Per-qubit FIFO queues of gate indices, program order.
    queues: dict[int, list[int]] = {}
    for index, gate in enumerate(gates):
        for qubit in gate.qubits:
            queues.setdefault(qubit, []).append(index)
    heads = {qubit: 0 for qubit in queues}  # pop pointer per queue

    remaining = len(gates)
    scheduled = [False] * len(gates)
    while remaining:
        took_any = False
        for want_two_qubit in (False, True):
            # Candidate set: the current head gate of every queue; ready iff
            # it heads ALL of its qubit queues and matches the wanted kind.
            taken: list[int] = []
            for qubit, queue in queues.items():
                position = heads[qubit]
                if position >= len(queue):
                    continue
                index = queue[position]
                gate = gates[index]
                if (gate.num_qubits == 2) != want_two_qubit or scheduled[index]:
                    continue
                if all(
                    queues[q][heads[q]] == index for q in gate.qubits
                ):
                    taken.append(index)
                    scheduled[index] = True
            if not taken:
                continue
            took_any = True
            taken.sort()  # program order within the stage
            for index in taken:
                for q in gates[index].qubits:
                    heads[q] += 1
            stage_gates = [gates[index] for index in taken]
            if want_two_qubit:
                staged.stages.append(RydbergStage(stage_gates))
            else:
                staged.stages.append(OneQStage(stage_gates))
            remaining -= len(taken)
        if not took_any:
            raise SchedulingError("scheduler made no progress (internal error)")

    staged.validate()
    return staged


def _take_ready(remaining: list[Gate], want_two_qubit: bool) -> list[Gate]:
    """Remove and return all ready gates of one kind from ``remaining``.

    A gate is ready when no earlier gate in ``remaining`` shares a qubit with
    it.  Within one call, selected gates also block later gates on the same
    qubits, which enforces the one-gate-per-qubit stage invariant.
    """
    blocked: set[int] = set()
    taken: list[Gate] = []
    kept: list[Gate] = []
    for gate in remaining:
        is_two = gate.num_qubits == 2
        overlaps = any(q in blocked for q in gate.qubits)
        if is_two == want_two_qubit and not overlaps:
            taken.append(gate)
            blocked.update(gate.qubits)
        else:
            kept.append(gate)
            blocked.update(gate.qubits)
    remaining[:] = kept
    return taken


def split_oversized_stages(staged: StagedCircuit, capacity: int) -> StagedCircuit:
    """Split Rydberg stages with more gates than the architecture has sites.

    A Rydberg stage can hold at most one gate per Rydberg site, so a stage
    with more gates than the entanglement zones provide must be executed as
    several consecutive Rydberg pulses.  Stages within the capacity are left
    untouched.
    """
    if capacity <= 0:
        raise SchedulingError("capacity must be positive")
    out = StagedCircuit(staged.num_qubits, staged.name)
    for stage in staged.stages:
        if isinstance(stage, RydbergStage) and len(stage.gates) > capacity:
            for start in range(0, len(stage.gates), capacity):
                out.stages.append(RydbergStage(stage.gates[start : start + capacity]))
        else:
            out.stages.append(stage)
    return out


#: Content-addressed preprocessing cache.  Preprocessing (resynthesis + ASAP
#: staging) is a pure function of the circuit and is shared by EVERY
#: neutral-atom backend, so a sweep compiling one circuit on five backends
#: pays for it once.  Keys are the full circuit content (name, width, exact
#: gate list); cached stages are returned as fresh shallow copies so callers
#: can never mutate the cache.
_PREPROCESS_CACHE: dict[tuple, StagedCircuit] = {}
_PREPROCESS_CACHE_MAX = 512


def _staged_copy(staged: StagedCircuit) -> StagedCircuit:
    """Shallow defensive copy: new stage objects over the same (frozen) gates."""
    out = StagedCircuit(staged.num_qubits, staged.name)
    for stage in staged.stages:
        if isinstance(stage, RydbergStage):
            out.stages.append(RydbergStage(list(stage.gates)))
        else:
            out.stages.append(OneQStage(list(stage.gates)))
    return out


def clear_preprocess_cache() -> None:
    """Drop all cached preprocessing results (test isolation)."""
    _PREPROCESS_CACHE.clear()


def forget_preprocess(circuit: QuantumCircuit) -> None:
    """Drop one circuit's cached preprocessing result.

    Used by checks that need a *genuine* end-to-end recompile (the fuzz
    determinism invariant): without this, a "fresh" compile would still be
    seeded with the first run's staged circuit.
    """
    _PREPROCESS_CACHE.pop((circuit.name, circuit.num_qubits, circuit.gates), None)


def preprocess(
    circuit: QuantumCircuit, cache: bool = True, incremental: bool = False
) -> StagedCircuit:
    """Full preprocessing pipeline: resynthesize then ASAP-stage.

    This is the paper's preprocessing step (Fig. 4) and the front end of
    every compiler in this repository.  Results are served from a
    content-addressed cache (pure function of the circuit, shared across
    backends); pass ``cache=False`` to force a recomputation.

    With ``incremental=True`` (set by the pipeline when
    ``ZACConfig.incremental`` is on), a full-cache miss resumes resynthesis
    from the longest cached raw-gate prefix
    (:class:`repro.circuits.synthesis.ResynthesisPrefixCache`) -- a
    depth-ladder rung only resynthesizes its delta gates.  The output is
    bit-identical to the from-scratch path by construction.
    """
    if not cache:
        return schedule_stages(resynthesize(circuit))
    key = (circuit.name, circuit.num_qubits, circuit.gates)
    staged = _PREPROCESS_CACHE.get(key)
    if staged is None:
        if incremental:
            from .synthesis import get_resynthesis_prefix_cache

            native = get_resynthesis_prefix_cache().resynthesize(circuit)
        else:
            native = resynthesize(circuit)
        staged = schedule_stages(native)
        if len(_PREPROCESS_CACHE) >= _PREPROCESS_CACHE_MAX:
            _PREPROCESS_CACHE.pop(next(iter(_PREPROCESS_CACHE)))
        _PREPROCESS_CACHE[key] = staged
    return _staged_copy(staged)
