OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
v q[1];
cx q[0],q[2];
