OPENQASM 2.0;
include "qelib1.inc";
h q[0];
cx q[0],q[1];
