"""Swap-test and quantum k-nearest-neighbour benchmark circuits.

Both QASMBench circuits are built around the swap test: an ancilla controls
Fredkin (controlled-SWAP) gates between two data registers.  Each Fredkin
lowers to a Toffoli plus two CNOTs, so the two-qubit structure is deep and
almost entirely sequential through the ancilla.
"""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit


def swap_test(num_qubits: int) -> QuantumCircuit:
    """Swap-test circuit on ``num_qubits`` qubits (1 ancilla + 2 registers).

    ``num_qubits`` must be odd: one ancilla and two registers of equal size.
    """
    if num_qubits < 3 or num_qubits % 2 == 0:
        raise ValueError("swap test needs an odd qubit count >= 3")
    reg = (num_qubits - 1) // 2
    circ = QuantumCircuit(num_qubits, name=f"swap_test_n{num_qubits}")
    ancilla = 0
    # Prepare non-trivial register states so the test is meaningful.
    for q in range(1, num_qubits):
        circ.ry(math.pi / 3 + 0.1 * q, q)
    circ.h(ancilla)
    for i in range(reg):
        circ.cswap(ancilla, 1 + i, 1 + reg + i)
    circ.h(ancilla)
    return circ


def knn(num_qubits: int) -> QuantumCircuit:
    """Quantum k-nearest-neighbour kernel-estimation circuit.

    QASMBench's ``knn_n31`` encodes two feature vectors into amplitude
    registers (Ry/CNOT state preparation cascades) and compares them with a
    swap test, giving a mix of sequential ancilla-coupled Fredkins and a
    chain-structured state-preparation prefix.
    """
    if num_qubits < 3 or num_qubits % 2 == 0:
        raise ValueError("knn needs an odd qubit count >= 3")
    reg = (num_qubits - 1) // 2
    circ = QuantumCircuit(num_qubits, name=f"knn_n{num_qubits}")
    ancilla = 0
    first = list(range(1, 1 + reg))
    second = list(range(1 + reg, 1 + 2 * reg))
    # Amplitude-encoding cascades on both registers.
    for regs in (first, second):
        circ.ry(math.pi / 4, regs[0])
        for a, b in zip(regs, regs[1:]):
            circ.cry(math.pi / 5, a, b)
            circ.cx(a, b)
    circ.h(ancilla)
    for a, b in zip(first, second):
        circ.cswap(ancilla, a, b)
    circ.h(ancilla)
    return circ
