"""Bernstein-Vazirani benchmark circuits.

The paper's ``bv_nXX`` circuits use ``XX`` qubits, one of which is the oracle
ancilla.  With an all-ones secret string the circuit contains ``XX - 1`` CNOT
gates, all sharing the ancilla -- a fully sequential two-qubit structure,
which is the regime where zoned architectures shine (Section VII-C).
"""

from __future__ import annotations

from ..circuit import QuantumCircuit


def bernstein_vazirani(num_qubits: int, secret: str | None = None) -> QuantumCircuit:
    """Build a Bernstein-Vazirani circuit on ``num_qubits`` qubits.

    Args:
        num_qubits: Total qubit count (data qubits + 1 ancilla).
        secret: Bit string of length ``num_qubits - 1``; defaults to all ones
            (the QASMBench convention, which maximises the CNOT count).
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least 2 qubits")
    n_data = num_qubits - 1
    if secret is None:
        secret = "1" * n_data
    if len(secret) != n_data or any(c not in "01" for c in secret):
        raise ValueError(f"secret must be a {n_data}-bit string")

    circ = QuantumCircuit(num_qubits, name=f"bv_n{num_qubits}")
    ancilla = num_qubits - 1
    for q in range(n_data):
        circ.h(q)
    circ.x(ancilla)
    circ.h(ancilla)
    for q, bit in enumerate(secret):
        if bit == "1":
            circ.cx(q, ancilla)
    for q in range(n_data):
        circ.h(q)
    circ.h(ancilla)
    return circ
