"""Quantum Fourier transform benchmark circuits."""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit


def qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """Standard QFT circuit with controlled-phase rotations.

    ``qft_n18`` in the paper has ``n(n-1)/2`` controlled-phase gates (each of
    which lowers to two CZs) and a dense, deeply sequential dependency
    structure -- the hardest benchmark in the paper's set.
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least 1 qubit")
    circ = QuantumCircuit(num_qubits, name=f"qft_n{num_qubits}")
    for target in range(num_qubits):
        circ.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circ.cp(angle, control, target)
    if include_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    return circ


def inverse_qft(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """Inverse QFT (extension workload; same interaction structure as QFT)."""
    circ = QuantumCircuit(num_qubits, name=f"iqft_n{num_qubits}")
    if include_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    for target in range(num_qubits - 1, -1, -1):
        for control in range(num_qubits - 1, target, -1):
            angle = -math.pi / (2 ** (control - target))
            circ.cp(angle, control, target)
        circ.h(target)
    return circ
