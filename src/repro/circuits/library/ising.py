"""Ising-model simulation and QAOA benchmark circuits.

The paper's ``ising_nXX`` circuits are Trotterised 1-D transverse-field Ising
evolutions: alternating layers of ``RZZ`` couplings on a nearest-neighbour
chain and ``RX`` rotations.  These circuits are highly parallel -- in a chain
of ``n`` qubits, roughly ``n/2`` two-qubit gates execute per Rydberg stage --
which is the regime where monolithic architectures are most competitive
(Section VII-C).
"""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit


def ising_chain(
    num_qubits: int,
    steps: int = 1,
    coupling: float = 0.5,
    field: float = 0.3,
    periodic: bool = False,
) -> QuantumCircuit:
    """Trotterised transverse-field Ising evolution on a 1-D chain.

    Args:
        num_qubits: Chain length.
        steps: Number of Trotter steps; each step adds one layer of RZZ
            couplings (even bonds then odd bonds) and one layer of RX fields.
        coupling: ZZ coupling angle per step.
        field: Transverse-field angle per step.
        periodic: Close the chain into a ring.
    """
    if num_qubits < 2:
        raise ValueError("Ising chain needs at least 2 qubits")
    circ = QuantumCircuit(num_qubits, name=f"ising_n{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    bonds = [(q, q + 1) for q in range(num_qubits - 1)]
    if periodic and num_qubits > 2:
        bonds.append((num_qubits - 1, 0))
    for _ in range(steps):
        # Even bonds first, then odd bonds: two fully parallel Rydberg stages.
        for parity in (0, 1):
            for a, b in bonds:
                if a % 2 == parity:
                    circ.rzz(2.0 * coupling, a, b)
        for q in range(num_qubits):
            circ.rx(2.0 * field, q)
    return circ


def qaoa_maxcut(
    num_qubits: int,
    edges: list[tuple[int, int]] | None = None,
    layers: int = 1,
    gamma: float = 0.7,
    beta: float = 0.4,
) -> QuantumCircuit:
    """QAOA MaxCut circuit, defaulting to a ring graph.

    Provided as an additional parallel-structure workload for architecture
    exploration beyond the paper's benchmark set.
    """
    if num_qubits < 2:
        raise ValueError("QAOA needs at least 2 qubits")
    if edges is None:
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    circ = QuantumCircuit(num_qubits, name=f"qaoa_n{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for _ in range(layers):
        for a, b in edges:
            circ.rzz(2.0 * gamma, a, b)
        for q in range(num_qubits):
            circ.rx(2.0 * beta, q)
    return circ


def heisenberg_chain(num_qubits: int, steps: int = 1, dt: float = 0.2) -> QuantumCircuit:
    """Trotterised Heisenberg XXZ chain (extension workload).

    Each bond applies RXX and RZZ interactions, tripling the two-qubit gate
    density relative to the Ising chain while keeping the parallel structure.
    """
    if num_qubits < 2:
        raise ValueError("Heisenberg chain needs at least 2 qubits")
    circ = QuantumCircuit(num_qubits, name=f"heisenberg_n{num_qubits}")
    for q in range(num_qubits):
        circ.ry(math.pi / 4, q)
    for _ in range(steps):
        for parity in (0, 1):
            for a in range(parity, num_qubits - 1, 2):
                circ.add("rxx", a, a + 1, params=(2.0 * dt,))
                circ.rzz(2.0 * dt, a, a + 1)
    return circ
