"""Registry of the paper's 17 benchmark circuits (Section VII, Fig. 8).

Each entry maps the QASMBench-style name used in the paper's figures to a
generator that produces a circuit with the same qubit count and the same
interaction structure (sequential vs. parallel).  Gate counts are close to,
but not byte-identical with, the QASMBench originals -- see DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from collections.abc import Callable

from ..circuit import QuantumCircuit
from .arithmetic import multiplier, seca
from .bv import bernstein_vazirani
from .ghz import cat_state, ghz, w_state
from .ising import ising_chain
from .qft import qft
from .swap_test import knn, swap_test

BenchmarkFactory = Callable[[], QuantumCircuit]

#: The paper's benchmark set, in the order of Fig. 8.
PAPER_BENCHMARKS: dict[str, BenchmarkFactory] = {
    "bv_n14": lambda: bernstein_vazirani(14),
    "bv_n19": lambda: bernstein_vazirani(19),
    "bv_n30": lambda: bernstein_vazirani(30),
    "bv_n70": lambda: bernstein_vazirani(70),
    "cat_n22": lambda: cat_state(22),
    "cat_n35": lambda: cat_state(35),
    "ghz_n23": lambda: ghz(23),
    "ghz_n40": lambda: ghz(40),
    "ghz_n78": lambda: ghz(78),
    "ising_n42": lambda: ising_chain(42, steps=1),
    "ising_n98": lambda: ising_chain(98, steps=1),
    "knn_n31": lambda: knn(31),
    "multiply_n13": lambda: multiplier(13),
    "qft_n18": lambda: qft(18, include_swaps=False),
    "seca_n11": lambda: seca(11),
    "swap_test_n25": lambda: swap_test(25),
    "wstate_n27": lambda: w_state(27),
}

#: A smaller subset used by fast tests and the quickstart example.
SMALL_BENCHMARKS: tuple[str, ...] = (
    "bv_n14",
    "ghz_n23",
    "multiply_n13",
    "seca_n11",
    "qft_n18",
)


def benchmark_names() -> list[str]:
    """Names of all paper benchmarks in Fig. 8 order."""
    return list(PAPER_BENCHMARKS)


def get_benchmark(name: str) -> QuantumCircuit:
    """Instantiate a paper benchmark by name.

    Raises:
        KeyError: if ``name`` is not a known benchmark.
    """
    if name not in PAPER_BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(PAPER_BENCHMARKS)}"
        )
    return PAPER_BENCHMARKS[name]()


def all_benchmarks() -> dict[str, QuantumCircuit]:
    """Instantiate every paper benchmark, keyed by name."""
    return {name: factory() for name, factory in PAPER_BENCHMARKS.items()}
