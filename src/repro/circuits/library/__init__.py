"""Benchmark circuit library (QASMBench-style generators)."""

from .arithmetic import cuccaro_adder, multiplier, seca
from .bv import bernstein_vazirani
from .ghz import cat_state, ghz, w_state
from .ising import heisenberg_chain, ising_chain, qaoa_maxcut
from .qft import inverse_qft, qft
from .random_circuits import random_brickwork, random_circuit
from .registry import (
    PAPER_BENCHMARKS,
    SMALL_BENCHMARKS,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)
from .swap_test import knn, swap_test

__all__ = [
    "PAPER_BENCHMARKS",
    "SMALL_BENCHMARKS",
    "all_benchmarks",
    "benchmark_names",
    "bernstein_vazirani",
    "cat_state",
    "cuccaro_adder",
    "get_benchmark",
    "ghz",
    "heisenberg_chain",
    "inverse_qft",
    "ising_chain",
    "knn",
    "multiplier",
    "qaoa_maxcut",
    "qft",
    "random_brickwork",
    "random_circuit",
    "seca",
    "swap_test",
    "w_state",
]
