"""GHZ, cat-state and W-state preparation benchmarks."""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit


def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation: a Hadamard followed by a CNOT chain."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    circ = QuantumCircuit(num_qubits, name=f"ghz_n{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def cat_state(num_qubits: int) -> QuantumCircuit:
    """Cat-state preparation (QASMBench ``cat_nXX``).

    Structurally identical to GHZ: one Hadamard plus a CNOT chain, i.e. a
    fully sequential two-qubit circuit.
    """
    circ = ghz(num_qubits)
    circ.name = f"cat_n{num_qubits}"
    return circ


def w_state(num_qubits: int) -> QuantumCircuit:
    """W-state preparation (QASMBench ``wstate_nXX``).

    Uses the standard cascade of controlled-Ry rotations followed by a CNOT
    chain; each controlled rotation lowers to two CNOTs, giving roughly
    ``3(n-1)`` two-qubit gates with a sequential dependency structure.
    """
    if num_qubits < 2:
        raise ValueError("W state needs at least 2 qubits")
    circ = QuantumCircuit(num_qubits, name=f"wstate_n{num_qubits}")
    circ.x(num_qubits - 1)
    # Distribute the excitation down the register with controlled rotations.
    for q in range(num_qubits - 1, 0, -1):
        theta = 2.0 * math.acos(math.sqrt(1.0 / (q + 1)))
        circ.cry(theta, q, q - 1)
        circ.cx(q - 1, q)
    return circ
