"""Random circuit generators for stress tests and property-based testing."""

from __future__ import annotations

import math
import random

from ..circuit import QuantumCircuit


def random_circuit(
    num_qubits: int,
    num_gates: int,
    two_qubit_fraction: float = 0.5,
    seed: int | None = None,
) -> QuantumCircuit:
    """Generate a random {U3, CZ, CX, H, RZ} circuit.

    Args:
        num_qubits: Register size.
        num_gates: Total gate count.
        two_qubit_fraction: Probability that a gate is two-qubit.
        seed: PRNG seed for reproducibility.
    """
    if num_qubits < 2:
        raise ValueError("random circuit needs at least 2 qubits")
    rng = random.Random(seed)
    circ = QuantumCircuit(num_qubits, name=f"random_n{num_qubits}_g{num_gates}")
    for _ in range(num_gates):
        if rng.random() < two_qubit_fraction:
            a, b = rng.sample(range(num_qubits), 2)
            circ.cz(a, b) if rng.random() < 0.5 else circ.cx(a, b)
        else:
            q = rng.randrange(num_qubits)
            choice = rng.random()
            if choice < 0.33:
                circ.h(q)
            elif choice < 0.66:
                circ.rz(rng.uniform(0, 2 * math.pi), q)
            else:
                circ.u3(
                    rng.uniform(0, math.pi),
                    rng.uniform(-math.pi, math.pi),
                    rng.uniform(-math.pi, math.pi),
                    q,
                )
    return circ


def random_brickwork(num_qubits: int, layers: int, seed: int | None = None) -> QuantumCircuit:
    """Brickwork random circuit: alternating even/odd CZ layers with random U3s.

    Maximally parallel structure, useful for scaling studies.
    """
    if num_qubits < 2:
        raise ValueError("brickwork needs at least 2 qubits")
    rng = random.Random(seed)
    circ = QuantumCircuit(num_qubits, name=f"brickwork_n{num_qubits}_d{layers}")
    for layer in range(layers):
        for q in range(num_qubits):
            circ.u3(
                rng.uniform(0, math.pi),
                rng.uniform(-math.pi, math.pi),
                rng.uniform(-math.pi, math.pi),
                q,
            )
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circ.cz(q, q + 1)
    return circ
