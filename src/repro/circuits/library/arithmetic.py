"""Arithmetic and cipher benchmark circuits (multiply, seca, adders).

``multiply_n13`` is a small ripple-carry multiplier and ``seca_n11`` is a
simplified cipher round; both are Toffoli-dominated circuits with moderate
parallelism.  Exact QASMBench gate counts are not reproduced, but the
Toffoli/CNOT mix and the dependency depth are.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit


def cuccaro_adder(num_bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder on ``2 * num_bits + 2`` qubits.

    Register layout: carry-in, a[0..n-1], b[0..n-1], carry-out.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least 1 bit")
    n = num_bits
    num_qubits = 2 * n + 2
    circ = QuantumCircuit(num_qubits, name=f"adder_n{num_qubits}")
    cin = 0
    a = [1 + i for i in range(n)]
    b = [1 + n + i for i in range(n)]
    cout = 2 * n + 1

    def maj(x: int, y: int, z: int) -> None:
        circ.cx(z, y)
        circ.cx(z, x)
        circ.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circ.ccx(x, y, z)
        circ.cx(z, x)
        circ.cx(x, y)

    maj(cin, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    circ.cx(a[n - 1], cout)
    for i in range(n - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(cin, b[0], a[0])
    return circ


def multiplier(num_qubits: int = 13) -> QuantumCircuit:
    """Small quantum multiplier in the style of QASMBench ``multiply_n13``.

    Multiplies a 2-bit register by a 3-bit register into a product register
    using controlled additions built from Toffoli gates.
    """
    if num_qubits < 7:
        raise ValueError("multiplier needs at least 7 qubits")
    circ = QuantumCircuit(num_qubits, name=f"multiply_n{num_qubits}")
    # Register layout: a (2 bits), b (3 bits), product (rest).
    a = [0, 1]
    b = [2, 3, 4]
    product = list(range(5, num_qubits))
    # Initialise the inputs to non-trivial values.
    circ.x(a[0])
    circ.x(b[0])
    circ.x(b[2])
    # Shift-and-add: for each bit of a, controlled-add b into the product.
    for i, a_bit in enumerate(a):
        for j, b_bit in enumerate(b):
            target = i + j
            if target >= len(product):
                continue
            circ.ccx(a_bit, b_bit, product[target])
            # Propagate carries up the product register.
            if target + 1 < len(product):
                circ.ccx(b_bit, product[target], product[target + 1])
    return circ


def seca(num_qubits: int = 11) -> QuantumCircuit:
    """Simplified cipher-round circuit in the style of QASMBench ``seca_n11``.

    Alternates substitution layers (Toffoli S-boxes) with permutation layers
    (CNOT diffusion), producing a Toffoli-heavy circuit with mixed
    sequential/parallel structure.
    """
    if num_qubits < 5:
        raise ValueError("seca needs at least 5 qubits")
    circ = QuantumCircuit(num_qubits, name=f"seca_n{num_qubits}")
    for q in range(0, num_qubits, 2):
        circ.x(q)
    rounds = 3
    for r in range(rounds):
        # Substitution: overlapping Toffolis across triples.
        for q in range(0, num_qubits - 2, 3):
            circ.ccx(q, q + 1, q + 2)
        # Diffusion: CNOT chain with a round-dependent stride.
        stride = 1 + (r % 2)
        for q in range(num_qubits - stride):
            circ.cx(q, q + stride)
        for q in range(num_qubits):
            circ.t(q) if r % 2 == 0 else circ.h(q)
    return circ
