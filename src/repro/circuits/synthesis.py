"""Resynthesis to the hardware gate set {CZ, U3} and 1Q-gate optimisation.

This module plays the role Qiskit plays in the paper's preprocessing step:

1. Decompose every gate into CZ and single-qubit gates.
2. Merge maximal runs of single-qubit gates on the same qubit into a single
   U3 (dropping those that reduce to the identity).

The output circuit contains only ``cz`` and ``u3`` gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .circuit import QuantumCircuit
from .gates import (
    Gate,
    GateError,
    is_identity,
    matrix_to_u3,
    single_qubit_matrix,
)

_PI = math.pi


class SynthesisError(ValueError):
    """Raised when a gate cannot be lowered to the native gate set."""


# ---------------------------------------------------------------------------
# Decomposition into {CZ, 1Q}
# ---------------------------------------------------------------------------

def _decompose_gate(gate: Gate) -> list[Gate]:
    """Decompose a gate into CZ and single-qubit gates (recursively)."""
    name = gate.name
    qs = gate.qubits
    p = gate.params

    if gate.num_qubits == 1:
        return [gate]
    if name == "cz":
        return [gate]

    if name in ("cx", "cnot"):
        c, t = qs
        return [Gate("h", (t,)), Gate("cz", (c, t)), Gate("h", (t,))]
    if name == "cy":
        c, t = qs
        return [Gate("sdg", (t,)), *_decompose_gate(Gate("cx", (c, t))), Gate("s", (t,))]
    if name == "ch":
        c, t = qs
        # Controlled-H via the standard Ry conjugation of CZ.
        return [
            Gate("ry", (t,), (_PI / 4,)),
            Gate("cz", (c, t)),
            Gate("ry", (t,), (-_PI / 4,)),
        ]
    if name == "swap":
        a, b = qs
        return (
            _decompose_gate(Gate("cx", (a, b)))
            + _decompose_gate(Gate("cx", (b, a)))
            + _decompose_gate(Gate("cx", (a, b)))
        )
    if name == "iswap":
        a, b = qs
        return (
            [Gate("s", (a,)), Gate("s", (b,)), Gate("h", (a,))]
            + _decompose_gate(Gate("cx", (a, b)))
            + _decompose_gate(Gate("cx", (b, a)))
            + [Gate("h", (b,))]
        )
    if name in ("cp", "cu1"):
        c, t = qs
        lam = p[0]
        return [
            Gate("p", (c,), (lam / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
            Gate("p", (t,), (-lam / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
            Gate("p", (t,), (lam / 2,)),
        ]
    if name == "crz":
        c, t = qs
        lam = p[0]
        return [
            Gate("rz", (t,), (lam / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
            Gate("rz", (t,), (-lam / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
        ]
    if name == "cry":
        c, t = qs
        theta = p[0]
        return [
            Gate("ry", (t,), (theta / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
            Gate("ry", (t,), (-theta / 2,)),
            *_decompose_gate(Gate("cx", (c, t))),
        ]
    if name == "crx":
        c, t = qs
        theta = p[0]
        return [
            Gate("h", (t,)),
            *_decompose_gate(Gate("crz", (c, t), (theta,))),
            Gate("h", (t,)),
        ]
    if name == "rzz":
        a, b = qs
        theta = p[0]
        return [
            *_decompose_gate(Gate("cx", (a, b))),
            Gate("rz", (b,), (theta,)),
            *_decompose_gate(Gate("cx", (a, b))),
        ]
    if name == "rxx":
        a, b = qs
        theta = p[0]
        return [
            Gate("h", (a,)),
            Gate("h", (b,)),
            *_decompose_gate(Gate("rzz", (a, b), (theta,))),
            Gate("h", (a,)),
            Gate("h", (b,)),
        ]
    if name in ("ccx", "toffoli"):
        a, b, c = qs
        cx = lambda x, y: _decompose_gate(Gate("cx", (x, y)))  # noqa: E731
        return (
            [Gate("h", (c,))]
            + cx(b, c) + [Gate("tdg", (c,))]
            + cx(a, c) + [Gate("t", (c,))]
            + cx(b, c) + [Gate("tdg", (c,))]
            + cx(a, c)
            + [Gate("t", (b,)), Gate("t", (c,)), Gate("h", (c,))]
            + cx(a, b) + [Gate("t", (a,)), Gate("tdg", (b,))]
            + cx(a, b)
        )
    if name == "ccz":
        a, b, c = qs
        return (
            [Gate("h", (c,))]
            + _decompose_gate(Gate("ccx", (a, b, c)))
            + [Gate("h", (c,))]
        )
    if name in ("cswap", "fredkin"):
        c, a, b = qs
        return (
            _decompose_gate(Gate("cx", (b, a)))
            + _decompose_gate(Gate("ccx", (c, a, b)))
            + _decompose_gate(Gate("cx", (b, a)))
        )
    raise SynthesisError(f"no decomposition known for gate {name!r}")


def decompose_to_cz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return an equivalent circuit containing only CZ and 1Q gates."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for gate in circuit:
        out.extend(_decompose_gate(gate))
    return out


# ---------------------------------------------------------------------------
# 1Q-gate merging
# ---------------------------------------------------------------------------

def merge_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge maximal runs of 1Q gates on each qubit into single U3 gates.

    The input must only contain CZ and single-qubit gates.  Runs that reduce
    to the identity (up to a global phase) are removed entirely.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None or is_identity(matrix):
            return
        theta, phi, lam = matrix_to_u3(matrix)
        out.append(Gate("u3", (qubit,), (theta, phi, lam)))

    for gate in circuit:
        if gate.num_qubits == 1:
            matrix = single_qubit_matrix(gate)
            if gate.qubits[0] in pending:
                pending[gate.qubits[0]] = matrix @ pending[gate.qubits[0]]
            else:
                pending[gate.qubits[0]] = matrix
            continue
        if gate.name != "cz":
            raise SynthesisError(
                f"merge_single_qubit_runs expects a {{CZ, 1Q}} circuit, got {gate.name}"
            )
        for q in gate.qubits:
            flush(q)
        out.append(gate)

    for qubit in sorted(pending):
        flush(qubit)
    return out


def resynthesize(circuit: QuantumCircuit) -> QuantumCircuit:
    """Full resynthesis: decompose to {CZ, 1Q} then merge 1Q runs into U3.

    This mirrors the paper's preprocessing step 1 and 2 (Fig. 4) and is the
    entry point used by :class:`repro.core.compiler.ZACCompiler`.
    """
    return merge_single_qubit_runs(decompose_to_cz(circuit))


# ---------------------------------------------------------------------------
# Prefix-resumable resynthesis (incremental compilation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResynthesisState:
    """Streaming state of :func:`resynthesize` after a raw-gate prefix.

    Resynthesis is a streaming algorithm: gates are decomposed one by one and
    1Q runs are merged into per-qubit pending matrices that flush when a CZ
    (or the end of the circuit) arrives.  Capturing the stream *before* the
    final flush makes the computation resumable: extending the raw gate list
    continues exactly where the prefix left off, so the output is
    bit-identical to a from-scratch resynthesis of the longer circuit (the
    equivalence is pinned by ``tests/test_incremental.py``).

    Attributes:
        raw_gates: The raw (pre-synthesis) gate prefix this state reflects.
        out_gates: Native gates emitted so far (before the trailing flush).
        pending: Per-qubit accumulated 1Q unitaries not yet flushed.  The
            matrices are never mutated in place (merging rebinds), so they
            are safely shared between states.
    """

    raw_gates: tuple[Gate, ...]
    out_gates: tuple[Gate, ...]
    pending: dict[int, np.ndarray]


def resynthesize_extend(
    circuit: QuantumCircuit, state: ResynthesisState | None = None
) -> tuple[QuantumCircuit, ResynthesisState]:
    """Resynthesize, optionally resuming from a cached raw-gate prefix.

    ``state.raw_gates`` must be a prefix of ``circuit.gates`` (the caller
    checks; :class:`ResynthesisPrefixCache` does).  Returns the resynthesized
    circuit and the streaming state after the *full* circuit, ready to be
    cached for the next extension.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending: dict[int, np.ndarray] = {}
    start = 0
    if state is not None:
        start = len(state.raw_gates)
        out.extend(state.out_gates)
        pending = dict(state.pending)

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None or is_identity(matrix):
            return
        theta, phi, lam = matrix_to_u3(matrix)
        out.append(Gate("u3", (qubit,), (theta, phi, lam)))

    for raw in circuit.gates[start:]:
        for gate in _decompose_gate(raw):
            if gate.num_qubits == 1:
                qubit = gate.qubits[0]
                matrix = single_qubit_matrix(gate)
                existing = pending.get(qubit)
                pending[qubit] = matrix if existing is None else matrix @ existing
                continue
            for q in gate.qubits:
                flush(q)
            out.append(gate)

    new_state = ResynthesisState(
        raw_gates=circuit.gates,
        out_gates=tuple(out.gates),
        pending=dict(pending),
    )
    for qubit in sorted(pending):
        flush(qubit)
    return out, new_state


class ResynthesisPrefixCache:
    """Bounded FIFO cache of resynthesis streaming states by raw-gate prefix.

    Used by :func:`repro.circuits.scheduling.preprocess` when incremental
    compilation is enabled: a depth-ladder rung resumes resynthesis from the
    longest cached raw-gate prefix instead of re-deriving the whole circuit.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, ResynthesisState] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> dict:
        """Picklable snapshot of the streaming states (plus counters).

        Entries are shared, not copied: the snapshot is meant to cross a
        process boundary (daemon worker dispatch), where pickling copies.
        :class:`ResynthesisState` is frozen and its matrices are never
        mutated in place, so sharing is safe in-process too.
        """
        return {
            "entries": dict(self._entries),
            "stats": {"hits": self.hits, "misses": self.misses},
        }

    def restore(self, snapshot: dict, *, merge: bool = True) -> int:
        """Load states from a :meth:`snapshot` (``merge=False`` replaces)."""
        if not merge:
            self._entries.clear()
        entries = snapshot.get("entries", {})
        for key, state in entries.items():
            self._entries[key] = state
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        return len(entries)

    def merge_stats(self, hits: int = 0, misses: int = 0) -> None:
        """Fold a worker's counter deltas into this cache's statistics."""
        self.hits += hits
        self.misses += misses

    def resynthesize(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Resynthesize through the cache, storing the new streaming state."""
        gates = circuit.gates
        best: ResynthesisState | None = None
        for (num_qubits, _), state in self._entries.items():
            if num_qubits != circuit.num_qubits:
                continue
            prefix = state.raw_gates
            if (
                len(prefix) <= len(gates)
                and (best is None or len(prefix) > len(best.raw_gates))
                and gates[: len(prefix)] == prefix
            ):
                best = state
        if best is not None:
            self.hits += 1
        else:
            self.misses += 1
        out, new_state = resynthesize_extend(circuit, best)
        key = (circuit.num_qubits, gates)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = new_state
        return out


_RESYN_PREFIX_CACHE = ResynthesisPrefixCache()


def get_resynthesis_prefix_cache() -> ResynthesisPrefixCache:
    """The process-wide resynthesis prefix cache."""
    return _RESYN_PREFIX_CACHE


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a small circuit (testing utility, <= ~10 qubits).

    Supports the native set {CZ, U3} plus any known 1Q gate and CX; other
    gates should be decomposed first.
    """
    n = circuit.num_qubits
    if n > 12:
        raise SynthesisError("circuit_unitary is meant for small test circuits")
    dim = 2**n
    total = np.eye(dim, dtype=complex)
    for gate in circuit:
        total = _gate_unitary(gate, n) @ total
    return total


def _gate_unitary(gate: Gate, num_qubits: int) -> np.ndarray:
    """Full-register unitary of a single gate (little-endian qubit order)."""
    dim = 2**num_qubits
    if gate.num_qubits == 1:
        small = single_qubit_matrix(gate)
        return _embed_1q(small, gate.qubits[0], num_qubits)
    if gate.name == "cz":
        mat = np.eye(dim, dtype=complex)
        a, b = gate.qubits
        for idx in range(dim):
            if (idx >> a) & 1 and (idx >> b) & 1:
                mat[idx, idx] = -1.0
        return mat
    if gate.name in ("cx", "cnot"):
        mat = np.zeros((dim, dim), dtype=complex)
        c, t = gate.qubits
        for idx in range(dim):
            j = idx ^ (1 << t) if (idx >> c) & 1 else idx
            mat[j, idx] = 1.0
        return mat
    raise GateError(f"unsupported gate for unitary construction: {gate.name}")


def _embed_1q(small: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Embed a 1-qubit unitary at ``qubit`` in an ``num_qubits`` register."""
    dim = 2**num_qubits
    mat = np.zeros((dim, dim), dtype=complex)
    for idx in range(dim):
        bit = (idx >> qubit) & 1
        for new_bit in (0, 1):
            j = (idx & ~(1 << qubit)) | (new_bit << qubit)
            mat[j, idx] += small[new_bit, bit]
    return mat
