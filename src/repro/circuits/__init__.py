"""Quantum circuit front end: IR, QASM I/O, resynthesis, stage scheduling,
and seeded random workload generators."""

from .circuit import CircuitError, QuantumCircuit
from .gates import Gate, GateError, cx, cz, u3
from .random import (
    GENERATORS,
    GeneratorError,
    Workload,
    WorkloadDescriptor,
    generate,
    generator_names,
    inverse_circuit,
    inverse_gate,
)
from .scheduling import (
    OneQStage,
    RydbergStage,
    SchedulingError,
    StagedCircuit,
    preprocess,
    schedule_stages,
)
from .synthesis import SynthesisError, decompose_to_cz, merge_single_qubit_runs, resynthesize

__all__ = [
    "GENERATORS",
    "CircuitError",
    "Gate",
    "GateError",
    "GeneratorError",
    "OneQStage",
    "QuantumCircuit",
    "RydbergStage",
    "SchedulingError",
    "StagedCircuit",
    "SynthesisError",
    "Workload",
    "WorkloadDescriptor",
    "cx",
    "cz",
    "decompose_to_cz",
    "generate",
    "generator_names",
    "inverse_circuit",
    "inverse_gate",
    "merge_single_qubit_runs",
    "preprocess",
    "resynthesize",
    "schedule_stages",
    "u3",
]
