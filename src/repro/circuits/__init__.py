"""Quantum circuit front end: IR, QASM I/O, resynthesis, stage scheduling."""

from .circuit import CircuitError, QuantumCircuit
from .gates import Gate, GateError, cx, cz, u3
from .scheduling import (
    OneQStage,
    RydbergStage,
    SchedulingError,
    StagedCircuit,
    preprocess,
    schedule_stages,
)
from .synthesis import SynthesisError, decompose_to_cz, merge_single_qubit_runs, resynthesize

__all__ = [
    "CircuitError",
    "Gate",
    "GateError",
    "OneQStage",
    "QuantumCircuit",
    "RydbergStage",
    "SchedulingError",
    "StagedCircuit",
    "SynthesisError",
    "cx",
    "cz",
    "decompose_to_cz",
    "merge_single_qubit_runs",
    "preprocess",
    "resynthesize",
    "schedule_stages",
    "u3",
]
