"""Committed OpenQASM mini-corpus and loading helpers (ROADMAP item 5b).

``src/repro/circuits/corpus/`` ships a small MQT-Bench-style suite of
OpenQASM 2.0 files — paper-benchmark instances, seeded synthetic families,
an FTQC block-interaction circuit, files decorated with the classical
statements the parser ignores (``creg``/``measure``/``barrier``/``reset``/
comments), and deliberately malformed files (named ``malformed_*.qasm``)
that exercise per-file error isolation in :mod:`repro.experiments.ingest`.

This module is the read side: enumerate corpus files, parse them with
per-file error isolation, and draw seeded circuit samples for the
``corpus`` fuzz profile and ``repro client --corpus`` traffic.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from . import qasm
from .circuit import QuantumCircuit

#: The committed mini-corpus shipped inside the package.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def corpus_paths(root: str | Path | None = None) -> list[Path]:
    """All ``.qasm`` files under ``root`` (default: the committed corpus).

    A file path is returned as a one-element list, so every corpus entry
    point accepts either a directory or a single circuit file.
    """
    root = Path(root) if root is not None else DEFAULT_CORPUS_DIR
    if root.is_file():
        return [root]
    if not root.is_dir():
        raise FileNotFoundError(f"corpus directory not found: {root}")
    return sorted(root.rglob("*.qasm"))


def load_corpus(
    root: str | Path | None = None,
) -> tuple[list[tuple[Path, QuantumCircuit]], list[tuple[Path, str]]]:
    """Parse every corpus file, isolating per-file parse failures.

    Returns ``(loaded, errors)``: parseable files as ``(path, circuit)``
    pairs (circuit named after the file stem) and unparseable ones as
    ``(path, message)`` — a malformed file never aborts the sweep.
    """
    loaded: list[tuple[Path, QuantumCircuit]] = []
    errors: list[tuple[Path, str]] = []
    for path in corpus_paths(root):
        try:
            circuit = qasm.load(str(path), name=path.stem)
        except qasm.QASMError as exc:
            errors.append((path, str(exc)))
        else:
            loaded.append((path, circuit))
    return loaded, errors


def sample_corpus_circuits(
    budget: int,
    seed: int = 0,
    root: str | Path | None = None,
) -> list[tuple[Path, QuantumCircuit]]:
    """Seeded with-replacement sample of parseable corpus circuits.

    The draw order is a pure function of ``(seed, budget, corpus listing)``,
    which is what makes ``fuzz --profile corpus`` runs replayable. Each
    pick returns a fresh copy so callers may mutate freely.
    """
    loaded, _ = load_corpus(root)
    if not loaded:
        raise FileNotFoundError(
            f"no parseable .qasm files under {root or DEFAULT_CORPUS_DIR}"
        )
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(loaded), size=int(budget))
    samples = []
    for index in picks:
        path, circuit = loaded[int(index)]
        samples.append((path, circuit.copy()))
    return samples


__all__ = [
    "DEFAULT_CORPUS_DIR",
    "corpus_paths",
    "load_corpus",
    "sample_corpus_circuits",
]
