"""Zoned-architecture specification, geometry, presets and serialization."""

from .presets import (
    D_OMEGA,
    D_RYD,
    D_SEP,
    D_STORAGE,
    logical_block_architecture,
    monolithic_architecture,
    reference_zoned_architecture,
    small_dual_zone_architecture,
    small_single_zone_architecture,
    with_num_aods,
)
from .serialization import dump, dumps, from_spec_dict, load, loads, to_spec_dict
from .spec import (
    AODArray,
    Architecture,
    ArchitectureError,
    RydbergSite,
    SLMArray,
    StorageTrap,
    Zone,
    distance,
)

__all__ = [
    "AODArray",
    "Architecture",
    "ArchitectureError",
    "D_OMEGA",
    "D_RYD",
    "D_SEP",
    "D_STORAGE",
    "RydbergSite",
    "SLMArray",
    "StorageTrap",
    "Zone",
    "distance",
    "dump",
    "dumps",
    "from_spec_dict",
    "load",
    "loads",
    "logical_block_architecture",
    "monolithic_architecture",
    "reference_zoned_architecture",
    "small_dual_zone_architecture",
    "small_single_zone_architecture",
    "to_spec_dict",
    "with_num_aods",
]
