"""Zoned-architecture specification (paper Section III, Fig. 3).

The specification has four entity types: AOD arrays, SLM arrays, zones, and
the architecture itself.  Entanglement zones contain exactly two SLM arrays
whose corresponding traps form *Rydberg sites* (left trap + right trap, a
``d_Ryd`` apart); storage zones contain one densely packed SLM array.

All coordinates are in micrometres, with the origin at the bottom-left of
the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class ArchitectureError(ValueError):
    """Raised for structurally invalid architecture specifications."""


@dataclass(frozen=True)
class AODArray:
    """A 2-D acousto-optic deflector array (one mobile tweezer grid).

    Attributes:
        aod_id: Index of the AOD (architectures may have several).
        max_num_row: Capacity of the row component.
        max_num_col: Capacity of the column component.
        min_sep: Minimum separation (um) between any two rows / columns.
    """

    aod_id: int
    max_num_row: int = 100
    max_num_col: int = 100
    min_sep: float = 2.0

    def __post_init__(self) -> None:
        if self.max_num_row <= 0 or self.max_num_col <= 0:
            raise ArchitectureError("AOD capacity must be positive")
        if self.min_sep <= 0:
            raise ArchitectureError("AOD min_sep must be positive")


@dataclass(frozen=True)
class SLMArray:
    """A rectangular grid of static (SLM-generated) optical traps.

    Attributes:
        slm_id: Globally unique index of the array.
        sep: (x, y) trap separation in um.
        num_row: Number of trap rows.
        num_col: Number of trap columns.
        offset: (x, y) position of the bottom-left trap.
    """

    slm_id: int
    sep: tuple[float, float]
    num_row: int
    num_col: int
    offset: tuple[float, float]

    def __post_init__(self) -> None:
        if self.num_row <= 0 or self.num_col <= 0:
            raise ArchitectureError("SLM array dimensions must be positive")
        if self.sep[0] <= 0 or self.sep[1] <= 0:
            raise ArchitectureError("SLM separations must be positive")

    @property
    def num_traps(self) -> int:
        return self.num_row * self.num_col

    def trap_position(self, row: int, col: int) -> tuple[float, float]:
        """Physical (x, y) of trap at ``row``, ``col``."""
        if not (0 <= row < self.num_row and 0 <= col < self.num_col):
            raise ArchitectureError(
                f"trap ({row}, {col}) outside SLM array {self.slm_id} "
                f"({self.num_row}x{self.num_col})"
            )
        return (self.offset[0] + col * self.sep[0], self.offset[1] + row * self.sep[1])

    def nearest_trap(self, x: float, y: float) -> tuple[int, int]:
        """Indices (row, col) of the trap closest to (x, y)."""
        col = round((x - self.offset[0]) / self.sep[0])
        row = round((y - self.offset[1]) / self.sep[1])
        col = min(max(col, 0), self.num_col - 1)
        row = min(max(row, 0), self.num_row - 1)
        return (row, col)


@dataclass(frozen=True)
class Zone:
    """A physical region (storage, entanglement, or readout).

    Attributes:
        zone_id: Index of the zone within its kind.
        offset: Bottom-left corner (x, y) in um.
        dimension: (width, height) in um.
        slms: SLM arrays inside this zone.  Entanglement zones must carry
            exactly two (left and right traps of each Rydberg site); storage
            zones carry one; readout zones may carry none.
    """

    zone_id: int
    offset: tuple[float, float]
    dimension: tuple[float, float]
    slms: tuple[SLMArray, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.dimension[0] <= 0 or self.dimension[1] <= 0:
            raise ArchitectureError("zone dimensions must be positive")

    def contains(self, x: float, y: float) -> bool:
        """Whether the point (x, y) lies inside the zone boundary."""
        return (
            self.offset[0] <= x <= self.offset[0] + self.dimension[0]
            and self.offset[1] <= y <= self.offset[1] + self.dimension[1]
        )


@dataclass(frozen=True)
class RydbergSite:
    """Identifier of a Rydberg site: entanglement zone index + row/col."""

    zone_index: int
    row: int
    col: int


@dataclass(frozen=True)
class StorageTrap:
    """Identifier of a storage trap: storage zone index + row/col."""

    zone_index: int
    row: int
    col: int


class Architecture:
    """A complete zoned architecture.

    Args:
        name: Human-readable architecture name.
        aods: AOD arrays available for qubit movement.
        storage_zones: Zones that shield idle qubits from the Rydberg laser.
        entanglement_zones: Zones illuminated by the Rydberg laser.
        readout_zones: Zones for measurement (not used by the compiler core,
            but part of the specification).
        zone_separation: Minimum separation between zones (``d_sep``), um.
    """

    def __init__(
        self,
        name: str,
        aods: list[AODArray],
        storage_zones: list[Zone],
        entanglement_zones: list[Zone],
        readout_zones: list[Zone] | None = None,
        zone_separation: float = 10.0,
    ) -> None:
        self.name = name
        self.aods = list(aods)
        self.storage_zones = list(storage_zones)
        self.entanglement_zones = list(entanglement_zones)
        self.readout_zones = list(readout_zones or [])
        self.zone_separation = zone_separation
        self.validate()
        self._build_geometry_cache()

    # -- geometry cache ------------------------------------------------------

    @staticmethod
    def _grid_axes(slm: SLMArray) -> tuple[tuple[float, ...], tuple[float, ...]]:
        xs = tuple(slm.offset[0] + col * slm.sep[0] for col in range(slm.num_col))
        ys = tuple(slm.offset[1] + row * slm.sep[1] for row in range(slm.num_row))
        return xs, ys

    def _build_geometry_cache(self) -> None:
        """Precompute per-grid coordinate axes so position lookups are O(1).

        Position queries sit on the hottest paths of the compiler (placement
        cost evaluation, conflict-graph construction), so the trap coordinates
        of every SLM grid are tabulated once here instead of being recomputed
        from offset/separation on every call.  The zone lists are treated as
        immutable after construction; callers that need a different geometry
        build a new :class:`Architecture`.
        """
        self._storage_axes = tuple(
            self._grid_axes(zone.slms[0]) for zone in self.storage_zones
        )
        self._ent_axes_left = tuple(
            self._grid_axes(zone.slms[0]) for zone in self.entanglement_zones
        )
        self._ent_axes_right = tuple(
            self._grid_axes(zone.slms[1]) for zone in self.entanglement_zones
        )

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants of the specification."""
        if not self.aods:
            raise ArchitectureError("an architecture needs at least one AOD")
        if not self.entanglement_zones:
            raise ArchitectureError("an architecture needs an entanglement zone")
        seen_aod = set()
        for aod in self.aods:
            if aod.aod_id in seen_aod:
                raise ArchitectureError(f"duplicate aod_id {aod.aod_id}")
            seen_aod.add(aod.aod_id)
        for zone in self.entanglement_zones:
            if len(zone.slms) != 2:
                raise ArchitectureError(
                    "entanglement zones must contain exactly two SLM arrays "
                    "(left and right traps of the Rydberg sites)"
                )
            left, right = zone.slms
            if (left.num_row, left.num_col) != (right.num_row, right.num_col):
                raise ArchitectureError(
                    "the two SLM arrays of an entanglement zone must have equal shape"
                )
        for zone in self.storage_zones:
            if len(zone.slms) != 1:
                raise ArchitectureError("storage zones must contain exactly one SLM array")
        slm_ids = [s.slm_id for z in self.all_zones() for s in z.slms]
        if len(slm_ids) != len(set(slm_ids)):
            raise ArchitectureError("slm_id values must be globally unique")

    def all_zones(self) -> list[Zone]:
        """All zones of every kind."""
        return [*self.storage_zones, *self.entanglement_zones, *self.readout_zones]

    # -- Rydberg sites ------------------------------------------------------

    @property
    def num_rydberg_sites(self) -> int:
        return sum(z.slms[0].num_traps for z in self.entanglement_zones)

    def iter_rydberg_sites(self):
        """Yield every Rydberg site across all entanglement zones."""
        for zone_index, zone in enumerate(self.entanglement_zones):
            grid = zone.slms[0]
            for row in range(grid.num_row):
                for col in range(grid.num_col):
                    yield RydbergSite(zone_index, row, col)

    def site_shape(self, zone_index: int = 0) -> tuple[int, int]:
        """(rows, cols) of Rydberg sites in one entanglement zone."""
        grid = self.entanglement_zones[zone_index].slms[0]
        return (grid.num_row, grid.num_col)

    def site_axes(self, zone_index: int = 0) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Cached (xs, ys) coordinate axes of one entanglement zone's left grid."""
        return self._ent_axes_left[zone_index]

    def site_position(self, site: RydbergSite) -> tuple[float, float]:
        """Reference location of a Rydberg site (its left trap, per the paper)."""
        xs, ys = self._ent_axes_left[site.zone_index]
        if not (0 <= site.row < len(ys) and 0 <= site.col < len(xs)):
            raise ArchitectureError(f"site ({site.row}, {site.col}) out of range")
        return (xs[site.col], ys[site.row])

    def site_partner_position(self, site: RydbergSite) -> tuple[float, float]:
        """Location of the right trap of a Rydberg site."""
        xs, ys = self._ent_axes_right[site.zone_index]
        if not (0 <= site.row < len(ys) and 0 <= site.col < len(xs)):
            raise ArchitectureError(f"site ({site.row}, {site.col}) out of range")
        return (xs[site.col], ys[site.row])

    def nearest_rydberg_site(self, x: float, y: float) -> RydbergSite:
        """Rydberg site whose reference trap is closest to (x, y)."""
        best: RydbergSite | None = None
        best_dist = math.inf
        for zone_index, zone in enumerate(self.entanglement_zones):
            row, col = zone.slms[0].nearest_trap(x, y)
            xs, ys = self._ent_axes_left[zone_index]
            dist = (xs[col] - x) ** 2 + (ys[row] - y) ** 2
            if dist < best_dist:
                best_dist = dist
                best = RydbergSite(zone_index, row, col)
        assert best is not None
        return best

    # -- storage traps ------------------------------------------------------

    @property
    def num_storage_traps(self) -> int:
        return sum(z.slms[0].num_traps for z in self.storage_zones)

    def iter_storage_traps(self):
        """Yield every storage trap across all storage zones."""
        for zone_index, zone in enumerate(self.storage_zones):
            grid = zone.slms[0]
            for row in range(grid.num_row):
                for col in range(grid.num_col):
                    yield StorageTrap(zone_index, row, col)

    def storage_shape(self, zone_index: int = 0) -> tuple[int, int]:
        """(rows, cols) of storage traps in one storage zone."""
        grid = self.storage_zones[zone_index].slms[0]
        return (grid.num_row, grid.num_col)

    def storage_axes(self, zone_index: int = 0) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Cached (xs, ys) coordinate axes of one storage zone's grid."""
        return self._storage_axes[zone_index]

    def trap_position(self, trap: StorageTrap) -> tuple[float, float]:
        """Physical position of a storage trap."""
        xs, ys = self._storage_axes[trap.zone_index]
        if not (0 <= trap.row < len(ys) and 0 <= trap.col < len(xs)):
            raise ArchitectureError(f"trap ({trap.row}, {trap.col}) out of range")
        return (xs[trap.col], ys[trap.row])

    def nearest_storage_trap(self, x: float, y: float) -> StorageTrap:
        """Storage trap closest to (x, y)."""
        best: StorageTrap | None = None
        best_dist = math.inf
        for zone_index, zone in enumerate(self.storage_zones):
            row, col = zone.slms[0].nearest_trap(x, y)
            xs, ys = self._storage_axes[zone_index]
            dist = (xs[col] - x) ** 2 + (ys[row] - y) ** 2
            if dist < best_dist:
                best_dist = dist
                best = StorageTrap(zone_index, row, col)
        assert best is not None
        return best

    # -- misc ---------------------------------------------------------------

    @property
    def num_aods(self) -> int:
        return len(self.aods)

    def slm_by_id(self, slm_id: int) -> SLMArray:
        """Look up an SLM array anywhere in the architecture by its id."""
        for zone in self.all_zones():
            for slm in zone.slms:
                if slm.slm_id == slm_id:
                    return slm
        raise ArchitectureError(f"no SLM array with id {slm_id}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Architecture({self.name!r}, aods={len(self.aods)}, "
            f"storage={len(self.storage_zones)}, "
            f"entanglement={len(self.entanglement_zones)}, "
            f"sites={self.num_rydberg_sites}, traps={self.num_storage_traps})"
        )


def distance(p: tuple[float, float], q: tuple[float, float]) -> float:
    """Euclidean distance between two points in um."""
    return math.hypot(p[0] - q[0], p[1] - q[1])
