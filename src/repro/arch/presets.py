"""Pre-built architectures used throughout the paper's evaluation.

All dimensions follow Section III / Fig. 2 / Fig. 20 of the paper:

* ``d_Ryd`` = 2 um separation between the two traps of a Rydberg site,
* ``d_omega`` = 10 um separation between Rydberg sites,
* ``d_s`` = 3 um separation between storage traps,
* ``d_sep`` = 10 um separation between zones.
"""

from __future__ import annotations

from .spec import AODArray, Architecture, SLMArray, Zone

D_RYD = 2.0
D_OMEGA = 10.0
D_STORAGE = 3.0
D_SEP = 10.0

#: x-separation of entanglement-zone SLM arrays (d_Ryd + d_omega).
ENT_SEP_X = D_RYD + D_OMEGA
#: y-separation of entanglement-zone SLM arrays (d_omega).
ENT_SEP_Y = D_OMEGA


def _entanglement_zone(
    zone_id: int,
    slm_id_left: int,
    num_site_rows: int,
    num_site_cols: int,
    offset: tuple[float, float],
) -> Zone:
    """Build an entanglement zone of ``num_site_rows`` x ``num_site_cols`` sites."""
    left = SLMArray(
        slm_id=slm_id_left,
        sep=(ENT_SEP_X, ENT_SEP_Y),
        num_row=num_site_rows,
        num_col=num_site_cols,
        offset=offset,
    )
    right = SLMArray(
        slm_id=slm_id_left + 1,
        sep=(ENT_SEP_X, ENT_SEP_Y),
        num_row=num_site_rows,
        num_col=num_site_cols,
        offset=(offset[0] + D_RYD, offset[1]),
    )
    width = num_site_cols * ENT_SEP_X
    height = num_site_rows * ENT_SEP_Y
    return Zone(
        zone_id=zone_id,
        offset=offset,
        dimension=(width, height),
        slms=(left, right),
    )


def _storage_zone(
    zone_id: int,
    slm_id: int,
    num_rows: int,
    num_cols: int,
    offset: tuple[float, float],
    sep: float = D_STORAGE,
) -> Zone:
    """Build a storage zone with a single dense SLM array."""
    slm = SLMArray(
        slm_id=slm_id,
        sep=(sep, sep),
        num_row=num_rows,
        num_col=num_cols,
        offset=offset,
    )
    return Zone(
        zone_id=zone_id,
        offset=offset,
        dimension=(max(num_cols * sep, sep), max(num_rows * sep, sep)),
        slms=(slm,),
    )


def reference_zoned_architecture(num_aods: int = 1) -> Architecture:
    """The paper's reference zoned architecture (Fig. 2 / Fig. 20).

    100x100 storage traps at 3 um pitch, a 7x20-site entanglement zone above
    the storage zone, a readout zone above that, and ``num_aods`` AODs.
    """
    storage = _storage_zone(0, 0, num_rows=100, num_cols=100, offset=(0.0, 0.0))
    entanglement = _entanglement_zone(
        0, slm_id_left=1, num_site_rows=7, num_site_cols=20, offset=(35.0, 307.0)
    )
    readout = Zone(zone_id=0, offset=(35.0, 385.0), dimension=(240.0, 20.0))
    aods = [AODArray(aod_id=i, max_num_row=100, max_num_col=100, min_sep=2.0) for i in range(num_aods)]
    return Architecture(
        name=f"reference_zoned_{num_aods}aod",
        aods=aods,
        storage_zones=[storage],
        entanglement_zones=[entanglement],
        readout_zones=[readout],
        zone_separation=D_SEP,
    )


def monolithic_architecture(num_aods: int = 1, num_site_rows: int = 10, num_site_cols: int = 10) -> Architecture:
    """The monolithic baseline architecture (Section VII-A).

    A single entanglement zone of 10x10 Rydberg sites covered entirely by the
    Rydberg laser, no storage zone, and a 10x10 AOD.  Qubit separation
    follows the entanglement-zone settings of the zoned architecture.
    """
    entanglement = _entanglement_zone(
        0, slm_id_left=0, num_site_rows=num_site_rows, num_site_cols=num_site_cols, offset=(0.0, 0.0)
    )
    aods = [AODArray(aod_id=i, max_num_row=10, max_num_col=10, min_sep=2.0) for i in range(num_aods)]
    return Architecture(
        name=f"monolithic_{num_site_rows}x{num_site_cols}",
        aods=aods,
        storage_zones=[],
        entanglement_zones=[entanglement],
        readout_zones=[],
        zone_separation=D_SEP,
    )


def small_single_zone_architecture(num_aods: int = 1) -> Architecture:
    """'Arch1' from Section VII-H: 3x40 storage traps, one 6x10-site zone."""
    storage = _storage_zone(0, 0, num_rows=3, num_cols=40, offset=(0.0, 0.0))
    entanglement = _entanglement_zone(
        0, slm_id_left=1, num_site_rows=6, num_site_cols=10, offset=(0.0, 9.0 + D_SEP)
    )
    aods = [AODArray(aod_id=i) for i in range(num_aods)]
    return Architecture(
        name="arch1_single_entanglement_zone",
        aods=aods,
        storage_zones=[storage],
        entanglement_zones=[entanglement],
        zone_separation=D_SEP,
    )


def small_dual_zone_architecture(num_aods: int = 1) -> Architecture:
    """'Arch2' from Section VII-H: two 3x10-site zones sandwiching the storage zone."""
    lower = _entanglement_zone(0, slm_id_left=1, num_site_rows=3, num_site_cols=10, offset=(0.0, 0.0))
    lower_top = 3 * ENT_SEP_Y
    storage = _storage_zone(
        0, 0, num_rows=3, num_cols=40, offset=(0.0, lower_top + D_SEP)
    )
    storage_top = lower_top + D_SEP + 9.0
    upper = _entanglement_zone(
        1, slm_id_left=3, num_site_rows=3, num_site_cols=10, offset=(0.0, storage_top + D_SEP)
    )
    aods = [AODArray(aod_id=i) for i in range(num_aods)]
    return Architecture(
        name="arch2_dual_entanglement_zone",
        aods=aods,
        storage_zones=[storage],
        entanglement_zones=[lower, upper],
        zone_separation=D_SEP,
    )


def logical_block_architecture(
    num_blocks: int = 128,
    block_rows: int = 2,
    block_cols: int = 4,
) -> Architecture:
    """Logical-level architecture for FTQC compilation (Section VIII).

    Each [[8,3,2]] code block occupies ``block_rows`` x ``block_cols``
    physical traps, so the logical architecture has
    ``floor(7 / block_rows)`` x ``floor(20 / block_cols)`` entanglement
    sites (3 x 5 for the reference architecture) and a storage zone scaled so
    one logical trap holds one code block.
    """
    site_rows = 7 // block_rows
    site_cols = 20 // block_cols
    # One storage row holds as many blocks as fit in 100 physical columns.
    blocks_per_row = 100 // block_cols
    num_rows = max(1, -(-num_blocks // blocks_per_row))
    storage_sep_x = block_cols * D_STORAGE
    storage_sep_y = block_rows * D_STORAGE
    storage_slm = SLMArray(
        slm_id=0,
        sep=(storage_sep_x, storage_sep_y),
        num_row=max(num_rows, 2),
        num_col=blocks_per_row,
        offset=(0.0, 0.0),
    )
    storage = Zone(
        zone_id=0,
        offset=(0.0, 0.0),
        dimension=(blocks_per_row * storage_sep_x, max(num_rows, 2) * storage_sep_y),
        slms=(storage_slm,),
    )
    storage_top = storage.dimension[1]
    entanglement = _entanglement_zone(
        0,
        slm_id_left=1,
        num_site_rows=site_rows,
        num_site_cols=site_cols,
        offset=(0.0, storage_top + D_SEP),
    )
    return Architecture(
        name=f"logical_{num_blocks}blocks",
        aods=[AODArray(aod_id=0)],
        storage_zones=[storage],
        entanglement_zones=[entanglement],
        zone_separation=D_SEP,
    )


def with_num_aods(architecture: Architecture, num_aods: int) -> Architecture:
    """Return a copy of ``architecture`` equipped with ``num_aods`` AODs."""
    if num_aods <= 0:
        raise ValueError("need at least one AOD")
    template = architecture.aods[0]
    aods = [
        AODArray(
            aod_id=i,
            max_num_row=template.max_num_row,
            max_num_col=template.max_num_col,
            min_sep=template.min_sep,
        )
        for i in range(num_aods)
    ]
    return Architecture(
        name=f"{architecture.name}_{num_aods}aod",
        aods=aods,
        storage_zones=architecture.storage_zones,
        entanglement_zones=architecture.entanglement_zones,
        readout_zones=architecture.readout_zones,
        zone_separation=architecture.zone_separation,
    )
