"""JSON serialization of architecture specifications.

The on-disk format follows the paper's Fig. 20 example: a dictionary with
``storage_zones``, ``entanglement_zones``, ``readout_zones`` and ``aods``
keys.  Hardware-parameter keys (``operation_duration``, ``operation_fidelity``,
``qubit_spec``) present in the paper's example files are tolerated and
ignored here; they are parsed by :mod:`repro.fidelity.params`.
"""

from __future__ import annotations

import json
from typing import Any

from .spec import AODArray, Architecture, ArchitectureError, SLMArray, Zone


def _slm_to_dict(slm: SLMArray) -> dict[str, Any]:
    return {
        "id": slm.slm_id,
        "site_seperation": [slm.sep[0], slm.sep[1]],
        "r": slm.num_row,
        "c": slm.num_col,
        "location": [slm.offset[0], slm.offset[1]],
    }


def _slm_from_dict(data: dict[str, Any]) -> SLMArray:
    sep = data.get("site_seperation", data.get("site_separation", data.get("sep")))
    if sep is None:
        raise ArchitectureError(f"SLM entry missing separation: {data}")
    if isinstance(sep, (int, float)):
        sep = [sep, sep]
    location = data.get("location", data.get("offset", [0.0, 0.0]))
    return SLMArray(
        slm_id=int(data["id"]),
        sep=(float(sep[0]), float(sep[1])),
        num_row=int(data["r"]),
        num_col=int(data["c"]),
        offset=(float(location[0]), float(location[1])),
    )


def _zone_to_dict(zone: Zone) -> dict[str, Any]:
    return {
        "zone_id": zone.zone_id,
        "slms": [_slm_to_dict(s) for s in zone.slms],
        "offset": [zone.offset[0], zone.offset[1]],
        "dimension": [zone.dimension[0], zone.dimension[1]],
    }


def _zone_from_dict(data: dict[str, Any]) -> Zone:
    dimension = data.get("dimension", data.get("dimenstion"))
    if dimension is None:
        raise ArchitectureError(f"zone entry missing dimension: {data}")
    offset = data.get("offset", [0.0, 0.0])
    return Zone(
        zone_id=int(data.get("zone_id", 0)),
        offset=(float(offset[0]), float(offset[1])),
        dimension=(float(dimension[0]), float(dimension[1])),
        slms=tuple(_slm_from_dict(s) for s in data.get("slms", [])),
    )


def to_spec_dict(architecture: Architecture) -> dict[str, Any]:
    """Serialise an architecture into the paper's JSON dictionary format."""
    return {
        "name": architecture.name,
        "storage_zones": [_zone_to_dict(z) for z in architecture.storage_zones],
        "entanglement_zones": [_zone_to_dict(z) for z in architecture.entanglement_zones],
        "readout_zones": [_zone_to_dict(z) for z in architecture.readout_zones],
        "aods": [
            {
                "id": a.aod_id,
                "site_seperation": a.min_sep,
                "r": a.max_num_row,
                "c": a.max_num_col,
            }
            for a in architecture.aods
        ],
        "zone_separation": architecture.zone_separation,
    }


def from_spec_dict(data: dict[str, Any]) -> Architecture:
    """Build an architecture from the paper's JSON dictionary format."""
    aods = [
        AODArray(
            aod_id=int(a.get("id", i)),
            min_sep=float(a.get("site_seperation", a.get("min_sep", 2.0))),
            max_num_row=int(a.get("r", a.get("max_num_row", 100))),
            max_num_col=int(a.get("c", a.get("max_num_col", 100))),
        )
        for i, a in enumerate(data.get("aods", []))
    ]
    return Architecture(
        name=data.get("name", "architecture"),
        aods=aods,
        storage_zones=[_zone_from_dict(z) for z in data.get("storage_zones", [])],
        entanglement_zones=[_zone_from_dict(z) for z in data.get("entanglement_zones", [])],
        readout_zones=[_zone_from_dict(z) for z in data.get("readout_zones", [])],
        zone_separation=float(data.get("zone_separation", 10.0)),
    )


def dumps(architecture: Architecture, indent: int = 2) -> str:
    """Serialise an architecture to a JSON string."""
    return json.dumps(to_spec_dict(architecture), indent=indent)


def loads(text: str) -> Architecture:
    """Parse an architecture from a JSON string."""
    return from_spec_dict(json.loads(text))


def dump(architecture: Architecture, path: str) -> None:
    """Write an architecture specification to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(architecture))


def load(path: str) -> Architecture:
    """Read an architecture specification from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())
