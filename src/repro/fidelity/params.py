"""Hardware parameters (paper Table I and Section VII-B).

All durations are in microseconds and all distances in micrometres, matching
the unit conventions used throughout the repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class NeutralAtomParams:
    """Physical parameters of a neutral-atom (zoned or monolithic) machine.

    Attributes:
        f_2q: Two-qubit (CZ) gate fidelity.
        f_1q: Single-qubit gate fidelity.
        f_excitation: Fidelity of an idle qubit exposed to the Rydberg laser.
        f_transfer: Fidelity of one atom transfer (pickup or drop-off).
        t_2q_us: Duration of a Rydberg (CZ) exposure.
        t_1q_us: Duration of one single-qubit gate.
        t_transfer_us: Duration of one (parallel) atom-transfer step.
        t2_us: Qubit coherence time T2.
        acceleration_um_per_us2: Movement constant ``a`` in d = a * t**2
            (2750 m/s^2 expressed in um/us^2).
    """

    f_2q: float = 0.995
    f_1q: float = 0.9997
    f_excitation: float = 0.9975
    f_transfer: float = 0.999
    t_2q_us: float = 0.36
    t_1q_us: float = 52.0
    t_transfer_us: float = 15.0
    t2_us: float = 1.5e6
    acceleration_um_per_us2: float = 2750e6 * 1e-12  # 2750 m/s^2 -> 2.75e-3 um/us^2

    def as_dict(self) -> dict[str, Any]:
        """Dictionary form, e.g. for JSON reports."""
        return {
            "f_2q": self.f_2q,
            "f_1q": self.f_1q,
            "f_excitation": self.f_excitation,
            "f_transfer": self.f_transfer,
            "t_2q_us": self.t_2q_us,
            "t_1q_us": self.t_1q_us,
            "t_transfer_us": self.t_transfer_us,
            "t2_us": self.t2_us,
            "acceleration_um_per_us2": self.acceleration_um_per_us2,
        }


@dataclass(frozen=True)
class SuperconductingParams:
    """Physical parameters of a superconducting baseline machine.

    Attributes:
        f_2q: Two-qubit gate fidelity.
        f_1q: Single-qubit gate fidelity.
        t_2q_us: Two-qubit gate duration.
        t_1q_us: Single-qubit gate duration.
        t2_us: Coherence time T2.
    """

    f_2q: float = 0.999
    f_1q: float = 0.9997
    t_2q_us: float = 0.068
    t_1q_us: float = 0.025
    t2_us: float = 311.0


#: Leading neutral-atom hardware (Bluvstein et al. 2024) -- Table I row 1.
NEUTRAL_ATOM = NeutralAtomParams()

#: IBM Heron (ibm_torino heavy-hexagon) -- Table I row 2.
SC_HERON = SuperconductingParams(t_2q_us=0.068, t2_us=311.0)

#: Google Sycamore-style grid -- Table I row 3.
SC_GRID = SuperconductingParams(t_2q_us=0.042, t2_us=89.0)


def neutral_atom_params_from_spec(data: dict[str, Any]) -> NeutralAtomParams:
    """Parse the paper's architecture-JSON hardware keys (Fig. 20).

    Accepts the ``operation_duration`` / ``operation_fidelity`` /
    ``qubit_spec`` sub-dictionaries and falls back to Table I defaults for
    anything missing.
    """
    duration = data.get("operation_duration", {})
    fidelity = data.get("operation_fidelity", {})
    qubit = data.get("qubit_spec", {})
    defaults = NeutralAtomParams()
    return NeutralAtomParams(
        f_2q=float(fidelity.get("two_qubit_gate", defaults.f_2q)),
        f_1q=float(fidelity.get("single_qubit_gate", defaults.f_1q)),
        f_excitation=float(fidelity.get("excitation", defaults.f_excitation)),
        f_transfer=float(fidelity.get("atom_transfer", defaults.f_transfer)),
        t_2q_us=float(duration.get("rydberg", defaults.t_2q_us)),
        t_1q_us=float(duration.get("1qGate", defaults.t_1q_us)),
        t_transfer_us=float(duration.get("atom_transfer", defaults.t_transfer_us)),
        t2_us=float(qubit.get("T", defaults.t2_us)),
    )
