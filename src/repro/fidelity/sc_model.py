"""Fidelity model for the superconducting baselines (Section VII-B).

Superconducting machines have no atom transfers or Rydberg excitation; their
fidelity is the product of gate fidelities and a per-qubit decoherence term
using the same linear ``1 - t_idle / T2`` approximation as the neutral-atom
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import FidelityBreakdown
from .params import SC_HERON, SuperconductingParams


@dataclass
class SCExecutionMetrics:
    """Counts and timings for a routed superconducting circuit.

    Attributes:
        num_qubits: Number of physical qubits used.
        num_1q_gates: Single-qubit gate count after routing.
        num_2q_gates: Two-qubit gate count after routing (including SWAP
            decompositions).
        duration_us: Scheduled circuit duration.
        qubit_busy_us: Per-qubit gate time.
        compile_time_s: Wall-clock transpilation time.
    """

    num_qubits: int
    num_1q_gates: int = 0
    num_2q_gates: int = 0
    duration_us: float = 0.0
    qubit_busy_us: dict[int, float] = field(default_factory=dict)
    compile_time_s: float = 0.0

    def idle_time_us(self, qubit: int) -> float:
        return max(0.0, self.duration_us - self.qubit_busy_us.get(qubit, 0.0))


def estimate_sc_fidelity(
    metrics: SCExecutionMetrics,
    params: SuperconductingParams = SC_HERON,
) -> FidelityBreakdown:
    """Evaluate the superconducting fidelity model on routed-circuit metrics."""
    one_q = params.f_1q**metrics.num_1q_gates
    two_q = params.f_2q**metrics.num_2q_gates
    decoherence = 1.0
    for qubit in range(metrics.num_qubits):
        idle = metrics.idle_time_us(qubit)
        decoherence *= max(0.0, 1.0 - idle / params.t2_us)
    return FidelityBreakdown(
        one_q_gate=one_q,
        two_q_gate=two_q,
        excitation=1.0,
        atom_transfer=1.0,
        decoherence=decoherence,
    )
