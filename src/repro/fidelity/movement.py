"""Qubit-movement timing model.

The paper (and Ref. [5], Bluvstein et al. 2022) models AOD movement with a
constant-jerk profile whose duration scales with the square root of the
distance: ``d / t**2 = a`` with ``a`` = 2750 m/s^2.  At this speed the
movement itself introduces no additional infidelity or atom loss, so only the
elapsed time (through decoherence) matters.
"""

from __future__ import annotations

import math

from .params import NEUTRAL_ATOM, NeutralAtomParams


def movement_time_us(distance_um: float, params: NeutralAtomParams = NEUTRAL_ATOM) -> float:
    """Time (us) to move a qubit ``distance_um`` micrometres.

    Solves ``d = a * t**2`` for ``t``.  A zero distance takes zero time.
    """
    if distance_um < 0:
        raise ValueError("distance must be non-negative")
    if distance_um == 0:
        return 0.0
    return math.sqrt(distance_um / params.acceleration_um_per_us2)


def movement_distance_um(time_us: float, params: NeutralAtomParams = NEUTRAL_ATOM) -> float:
    """Distance (um) covered by a movement of duration ``time_us``."""
    if time_us < 0:
        raise ValueError("time must be non-negative")
    return params.acceleration_um_per_us2 * time_us * time_us


def rearrangement_time_us(
    max_distance_um: float,
    params: NeutralAtomParams = NEUTRAL_ATOM,
    num_transfer_steps: int = 2,
) -> float:
    """Duration of one rearrangement job.

    A job consists of picking up all qubits (one parallel transfer), moving
    them (duration set by the longest individual movement), and dropping them
    off (another parallel transfer).

    Args:
        max_distance_um: Longest single-qubit movement distance in the job.
        params: Hardware parameters.
        num_transfer_steps: Number of transfer phases (2 = pickup + drop-off).
    """
    return num_transfer_steps * params.t_transfer_us + movement_time_us(
        max_distance_um, params
    )
