"""Fidelity and timing models for neutral-atom and superconducting machines."""

from .model import ExecutionMetrics, FidelityBreakdown, estimate_fidelity
from .movement import movement_distance_um, movement_time_us, rearrangement_time_us
from .params import (
    NEUTRAL_ATOM,
    SC_GRID,
    SC_HERON,
    NeutralAtomParams,
    SuperconductingParams,
    neutral_atom_params_from_spec,
)
from .sc_model import SCExecutionMetrics, estimate_sc_fidelity

__all__ = [
    "ExecutionMetrics",
    "FidelityBreakdown",
    "NEUTRAL_ATOM",
    "NeutralAtomParams",
    "SC_GRID",
    "SC_HERON",
    "SCExecutionMetrics",
    "SuperconductingParams",
    "estimate_fidelity",
    "estimate_sc_fidelity",
    "movement_distance_um",
    "movement_time_us",
    "neutral_atom_params_from_spec",
    "rearrangement_time_us",
]
