"""Circuit-fidelity model for neutral-atom architectures (Section VII-B).

The total circuit fidelity is the product of five terms::

    f = f_1q**g1 * f_2q**g2 * f_exc**N_exc * f_tran**N_tran * prod_q (1 - t_q / T2)

where ``g1`` / ``g2`` are the single- and two-qubit gate counts, ``N_exc`` is
the number of idle-qubit Rydberg excitations (qubits inside an illuminated
entanglement zone that are not performing a gate), ``N_tran`` is the number
of atom transfers, and ``t_q`` is the idle time of qubit ``q`` (time spent
neither in a gate nor in an atom transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .params import NEUTRAL_ATOM, NeutralAtomParams


@dataclass
class ExecutionMetrics:
    """Raw counts and timings produced by compiling + simulating a circuit.

    This is the common currency between every compiler in the repository
    (ZAC, the baselines, and the ideal bounds) and the fidelity model.

    Attributes:
        num_qubits: Number of program qubits.
        num_1q_gates: Single-qubit gate count.
        num_2q_gates: Two-qubit (CZ) gate count.
        num_excitations: Idle-qubit Rydberg-laser exposures.
        num_transfers: Atom-transfer count (pickup and drop-off each count 1
            per qubit moved).
        duration_us: Total circuit execution time.
        qubit_busy_us: Per-qubit time spent in gates or atom transfers;
            idle time is ``duration_us - busy``.
        num_rydberg_stages: Number of Rydberg laser exposures.
        num_movements: Number of individual qubit movements.
        num_instructions: Program-level ZAIR instruction count (excluding
            ``init``); recorded by the interpreter so sweeps can report
            per-instruction throughput without re-walking programs.
        num_epochs: Movement-epoch count (rearrangement jobs + abstract
            transfer epochs); recorded by the interpreter alongside
            ``num_instructions``.
        total_move_distance_um: Sum of all movement distances.
        compile_time_s: Wall-clock compilation time (scalability study).
        phase_times_s: Wall-clock time per compilation phase
            (``preprocess`` / ``place`` / ``route`` / ``schedule`` /
            ``fidelity``); populated by the ZAC pipeline, empty for
            baselines that don't instrument their phases.
    """

    num_qubits: int
    num_1q_gates: int = 0
    num_2q_gates: int = 0
    num_excitations: int = 0
    num_transfers: int = 0
    duration_us: float = 0.0
    qubit_busy_us: dict[int, float] = field(default_factory=dict)
    num_rydberg_stages: int = 0
    num_movements: int = 0
    num_instructions: int = 0
    num_epochs: int = 0
    total_move_distance_um: float = 0.0
    compile_time_s: float = 0.0
    phase_times_s: dict[str, float] = field(default_factory=dict)

    def idle_time_us(self, qubit: int) -> float:
        """Idle time of one qubit: total duration minus its busy time."""
        return max(0.0, self.duration_us - self.qubit_busy_us.get(qubit, 0.0))


@dataclass(frozen=True)
class FidelityBreakdown:
    """Per-error-source fidelity terms (paper Fig. 9 / Table II)."""

    one_q_gate: float
    two_q_gate: float
    excitation: float
    atom_transfer: float
    decoherence: float

    @property
    def two_q_gate_with_excitation(self) -> float:
        """The paper's '2Q gate' bar: CZ fidelity including excitation errors."""
        return self.two_q_gate * self.excitation

    @property
    def total(self) -> float:
        """Overall circuit fidelity."""
        return (
            self.one_q_gate
            * self.two_q_gate
            * self.excitation
            * self.atom_transfer
            * self.decoherence
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "1q_gate": self.one_q_gate,
            "2q_gate": self.two_q_gate,
            "excitation": self.excitation,
            "atom_transfer": self.atom_transfer,
            "decoherence": self.decoherence,
            "total": self.total,
        }


def decoherence_naive(metrics: ExecutionMetrics, params: NeutralAtomParams) -> float:
    """Per-qubit decoherence product, scalar reference implementation.

    Kept as the equivalence baseline for :func:`decoherence_vectorized` (the
    same fast/naive convention as ``ZACConfig.use_fast_paths``).
    """
    decoherence = 1.0
    for qubit in range(metrics.num_qubits):
        idle = metrics.idle_time_us(qubit)
        decoherence *= max(0.0, 1.0 - idle / params.t2_us)
    return decoherence


#: Below this qubit count the scalar loop beats numpy's array-setup overhead,
#: so ``estimate_fidelity(vectorized=True)`` still runs the scalar path there.
VECTORIZE_MIN_QUBITS = 64


def decoherence_vectorized(metrics: ExecutionMetrics, params: NeutralAtomParams) -> float:
    """Per-qubit decoherence product, evaluated as one numpy expression."""
    num_qubits = metrics.num_qubits
    if num_qubits == 0:
        return 1.0
    busy = np.zeros(num_qubits)
    for qubit, value in metrics.qubit_busy_us.items():
        if 0 <= qubit < num_qubits:
            busy[qubit] = value
    idle = np.maximum(0.0, metrics.duration_us - busy)
    terms = np.maximum(0.0, 1.0 - idle / params.t2_us)
    return float(terms.prod())


def estimate_fidelity(
    metrics: ExecutionMetrics,
    params: NeutralAtomParams = NEUTRAL_ATOM,
    vectorized: bool = True,
) -> FidelityBreakdown:
    """Evaluate the neutral-atom fidelity model on compiled-circuit metrics.

    Args:
        metrics: Compiled-circuit counts and timings.
        params: Hardware parameters.
        vectorized: Evaluate the O(qubits) decoherence product with numpy
            for circuits of at least ``VECTORIZE_MIN_QUBITS`` qubits (below
            that, array setup costs more than the plain loop); set to False
            to force the scalar reference path.
    """
    one_q = params.f_1q**metrics.num_1q_gates
    two_q = params.f_2q**metrics.num_2q_gates
    excitation = params.f_excitation**metrics.num_excitations
    transfer = params.f_transfer**metrics.num_transfers

    if vectorized and metrics.num_qubits >= VECTORIZE_MIN_QUBITS:
        decoherence = decoherence_vectorized(metrics, params)
    else:
        decoherence = decoherence_naive(metrics, params)

    return FidelityBreakdown(
        one_q_gate=one_q,
        two_q_gate=two_q,
        excitation=excitation,
        atom_transfer=transfer,
        decoherence=decoherence,
    )
