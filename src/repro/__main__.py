"""CLI smoke entry: ``python -m repro``.

Subcommands::

    python -m repro compile bv_n14 --backend zac --json
    python -m repro compile circuit.qasm --backend nalac
    python -m repro validate bv_n14 --backend enola
    python -m repro fuzz --budget 50 --seed 0 --backend all
    python -m repro fuzz --profile ftqc --budget 25
    python -m repro fuzz --replay fuzz_failures/fuzz_fail_000.json
    python -m repro ingest suites/mqt_bench --backend zac --report report.json
    python -m repro serve --stdio --cache-dir ~/.cache/repro
    python -m repro client compile bv_n14 --repeat 2
    python -m repro client --replay-bundles fuzz_failures
    python -m repro client --corpus
    python -m repro backends
    python -m repro benchmarks

``compile`` accepts a paper-benchmark name or a path to an OpenQASM 2 file,
runs the requested registry backend, and prints the unified result summary
(``--json`` prints the serialized ``CompileResult`` instead).  ``validate``
compiles, checks the emitted ZAIR program against the hardware invariants,
and prints an instruction-count / epoch summary of the program.  ``fuzz``
differentially fuzzes the registered backends with generated workloads
(:mod:`repro.experiments.fuzz`), dumping any failure as a replayable JSON
repro bundle; ``--replay`` re-runs a bundle's failed check; ``--profile``
selects a named sweep shape (``ftqc`` fuzzes logical-scale FTQC block
workloads, ``corpus`` fuzzes the committed OpenQASM corpus).  ``ingest``
streams external OpenQASM files through parse -> round-trip -> compile ->
validate with per-file error isolation and a machine-readable JSON report
(:mod:`repro.experiments.ingest`).  ``serve`` runs
the persistent compile daemon (newline-delimited JSON over stdio, or
localhost HTTP with ``--http``), with request coalescing, priority
scheduling, and an optional disk-backed compile cache; ``client`` scripts a
daemon session (spawning one, or connecting to an HTTP daemon).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from collections.abc import Sequence

# Die silently on a closed pipe (e.g. `python -m repro benchmarks | head`).
if hasattr(signal, "SIGPIPE"):  # pragma: no branch - absent only on Windows
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

from . import api
from .circuits import qasm
from .circuits.circuit import QuantumCircuit
from .circuits.library.registry import PAPER_BENCHMARKS


def _resolve_circuit(spec: str) -> QuantumCircuit:
    if spec in PAPER_BENCHMARKS:
        return PAPER_BENCHMARKS[spec]()
    if os.path.exists(spec):
        return qasm.load(spec)
    raise SystemExit(
        f"error: {spec!r} is neither a paper benchmark nor a QASM file "
        f"(benchmarks: {', '.join(PAPER_BENCHMARKS)})"
    )


#: ZACConfig presets addressable from the CLI via --option config=<preset>.
_ZAC_CONFIG_PRESETS = ("vanilla", "dyn_place", "dyn_place_reuse", "full")

#: Fuzz/ingest sweep profiles (mirrors ``repro.experiments.fuzz.PROFILES``,
#: which is deliberately not imported here: the CLI parser must stay cheap).
_FUZZ_PROFILES = ("throughput", "default", "incremental", "ftqc", "corpus")

#: ``fuzz``-only profiles: ``chaos`` drives the serve daemon under fault
#: injection and has no per-file compile-option table for ``ingest``.
_FUZZ_ONLY_PROFILES = _FUZZ_PROFILES + ("chaos",)


def _coerce_option(backend: str, key: str, value: str) -> object:
    """Turn a CLI ``key=value`` string into a typed backend option.

    Scalars are parsed as JSON (``lower_jobs=false`` -> ``False``,
    ``mode=perfect_reuse`` stays a string); for the ``zac`` backend,
    ``config=<preset>`` names a :class:`repro.ZACConfig` factory.
    """
    if backend == "zac" and key == "config":
        from .core.config import ZACConfig

        if value not in _ZAC_CONFIG_PRESETS:
            raise SystemExit(
                f"error: unknown zac config preset {value!r}; "
                f"choose from: {', '.join(_ZAC_CONFIG_PRESETS)}"
            )
        return getattr(ZACConfig, value)()
    try:
        parsed = json.loads(value)
    except json.JSONDecodeError:
        return value
    if isinstance(parsed, (dict, list)):
        raise SystemExit(
            f"error: option {key}={value!r} must be a scalar (string/number/bool)"
        )
    return parsed


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.circuit)
    options = {
        key: _coerce_option(args.backend, key, value)
        for key, value in (args.options or ())
    }
    if getattr(args, "incremental", False):
        if args.backend not in ("zac", "ideal"):
            raise SystemExit(
                "error: --incremental applies to the zac/ideal backends only"
            )
        import dataclasses

        from .core.config import ZACConfig

        base = options.get("config") or ZACConfig()
        options["config"] = dataclasses.replace(
            base, incremental=True, warm_start=True
        )
    try:
        result = api.compile(circuit, backend=args.backend, **options)
    except (api.UnknownBackendError, TypeError, ValueError) as exc:
        # Unknown backend, rejected option, bad variant/mode, circuit too
        # large for the architecture, ... -- all user errors, not tracebacks.
        raise SystemExit(f"error: {exc}")
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(f"circuit      : {result.circuit_name}")
    print(f"backend      : {args.backend} ({result.compiler_name})")
    print(f"architecture : {result.architecture_name}")
    for key, value in result.summary().items():
        print(f"  {key:22s}: {value:.6g}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .zair import ValidationError, validate_program
    from .zair.instructions import InitInst

    circuit = _resolve_circuit(args.circuit)
    options = {
        key: _coerce_option(args.backend, key, value)
        for key, value in (args.options or ())
    }
    try:
        # compile() already validates; run it explicitly anyway so a failure
        # is reported as such even if validation is ever made optional.
        result = api.compile(circuit, backend=args.backend, validate=False, **options)
    except (api.UnknownBackendError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    program = result.program
    if program is None:
        raise SystemExit(
            f"error: backend {args.backend!r} attached no ZAIR program to its result"
        )
    try:
        validate_program(result.architecture, program)
    except ValidationError as exc:
        print(f"INVALID: {exc}")
        return 1

    type_tags = {
        "OneQGateInst": "1qGate",
        "RydbergInst": "rydberg",
        "RearrangeJob": "rearrangeJob",
        "GateLayerInst": "gateLayer",
        "GlobalPulseInst": "globalPulse",
        "ArrayMoveInst": "arrayMove",
        "TransferEpochInst": "transferEpoch",
    }
    counts: dict[str, int] = {}
    for inst in program.instructions:
        if isinstance(inst, InitInst):
            continue
        key = type_tags.get(type(inst).__name__, type(inst).__name__)
        counts[key] = counts.get(key, 0) + 1
    print(f"circuit      : {result.circuit_name}")
    print(f"backend      : {args.backend} ({result.compiler_name})")
    print(f"architecture : {program.architecture_name}")
    print(f"qubits       : {program.num_qubits}")
    print("instructions :")
    for key in sorted(counts):
        print(f"  {key:14s}: {counts[key]}")
    print(f"  {'total':14s}: {program.num_zair_instructions}")
    print(f"  {'machine':14s}: {program.num_machine_instructions}")
    print("epochs/gates :")
    print(f"  rydberg stages : {program.num_rydberg_stages}")
    print(f"  movements      : {program.num_movements}")
    print(f"  1q gates       : {program.num_1q_gates}")
    print(f"  2q gates       : {program.num_2q_gates}")
    print(f"  duration_us    : {program.duration_us:.6g}")
    print("validation   : ok")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .experiments.fuzz import FuzzError, replay_bundle, run_fuzz

    if args.replay:
        try:
            reproduced, message = replay_bundle(args.replay)
        except (FuzzError, OSError, KeyError, ValueError) as exc:
            raise SystemExit(f"error: cannot replay {args.replay}: {exc}")
        print(f"{'REPRODUCED' if reproduced else 'not reproduced'}: {message}")
        return 1 if reproduced else 0

    if args.backend == "all":
        backends = None
    else:
        backends = [name.strip() for name in args.backend.split(",") if name.strip()]
    try:
        report = run_fuzz(
            budget=args.budget,
            seed=args.seed,
            backends=backends,
            parallel=args.parallel,
            out_dir=args.out,
            profile=args.profile,
        )
    except (api.UnknownBackendError, FuzzError) as exc:
        raise SystemExit(f"error: {exc}")
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from .circuits.corpus import DEFAULT_CORPUS_DIR
    from .experiments.fuzz import FuzzError
    from .experiments.ingest import ingest_paths

    paths = args.paths or [DEFAULT_CORPUS_DIR]
    try:
        report = ingest_paths(
            paths,
            backend=args.backend,
            profile=args.profile,
            parallel=args.parallel,
        )
    except (api.UnknownBackendError, FuzzError, FileNotFoundError) as exc:
        raise SystemExit(f"error: {exc}")
    if args.report == "-":
        print(report.to_json())
    else:
        for line in report.summary_lines():
            print(line)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
            print(f"report       : {args.report}")
    return 0 if report.num_errors <= args.max_errors else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeDaemon

    kwargs = {"cache_dir": args.cache_dir, "workers": args.workers}
    if args.cache_bytes is not None:
        kwargs["max_cache_bytes"] = args.cache_bytes
    if args.cache_ttl is not None:
        kwargs["cache_ttl"] = args.cache_ttl
    if args.max_queue is not None:
        kwargs["max_queue"] = args.max_queue
    if args.max_request_bytes is not None:
        kwargs["max_request_bytes"] = args.max_request_bytes
    daemon = ServeDaemon(**kwargs)
    try:
        if args.http is not None:
            asyncio.run(daemon.serve_http(port=args.http))
        else:
            asyncio.run(daemon.serve_stdio())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_chaos_smoke(args: argparse.Namespace) -> int:
    from .resilience.smoke import chaos_smoke

    ok, lines = chaos_smoke(seed=args.seed)
    for line in lines:
        print(line)
    return 0 if ok else 1


def _cmd_client(args: argparse.Namespace) -> int:
    from .serve.client import ClientError, bundle_requests, corpus_requests, run_requests

    connect = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        try:
            connect = (host or "127.0.0.1", int(port))
        except ValueError:
            raise SystemExit(f"error: --connect wants HOST:PORT, got {args.connect!r}")

    if args.replay_bundles is not None:
        try:
            requests = bundle_requests(args.replay_bundles)
        except ClientError as exc:
            raise SystemExit(f"error: {exc}")
    elif args.corpus is not None:
        try:
            requests = corpus_requests(
                args.corpus or None, backend=args.backend, profile="throughput"
            )
        except (ClientError, FileNotFoundError) as exc:
            raise SystemExit(f"error: {exc}")
    elif args.requests is not None:
        handle = sys.stdin if args.requests == "-" else open(args.requests)
        try:
            requests = []
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    requests.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise SystemExit(f"error: bad request line {line!r}: {exc}")
        finally:
            if handle is not sys.stdin:
                handle.close()
    elif args.circuit is not None:
        params = {
            "circuit": {"benchmark": args.circuit}
            if not os.path.exists(args.circuit)
            else {"qasm": open(args.circuit).read(), "name": args.circuit},
            "backend": args.backend,
            "priority": args.priority,
        }
        if args.options:
            params["options"] = {
                key: _coerce_option_json(value) for key, value in args.options
            }
        requests = [
            {"method": "compile", "params": params} for _ in range(args.repeat)
        ]
        requests.append({"method": "stats"})
    else:
        raise SystemExit(
            "error: give `compile CIRCUIT`, --requests FILE|-, "
            "--replay-bundles DIR, or --corpus [DIR]"
        )

    return run_requests(
        requests,
        cache_dir=args.cache_dir,
        cache_bytes=args.cache_bytes,
        cache_ttl=args.cache_ttl,
        workers=args.workers,
        connect=connect,
    )


def _coerce_option_json(value: str) -> object:
    """Client option values: JSON when parseable (objects allowed -- the
    daemon builds ZACConfig from field objects), bare strings otherwise."""
    try:
        return json.loads(value)
    except json.JSONDecodeError:
        return value


def _cmd_backends(_args: argparse.Namespace) -> int:
    for name in api.available_backends():
        spec = api.backend_spec(name)
        print(f"{name:10s} {spec.description}")
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    for name in PAPER_BENCHMARKS:
        print(name)
    return 0


def _parse_option(text: str) -> tuple[str, object]:
    """Parse a ``key=value`` backend option (values stay strings)."""
    key, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(f"option {text!r} is not of the form key=value")
    return key, value


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="ZAC reproduction: compile circuits via the backend registry."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="compile a benchmark (or QASM file) with a registered backend"
    )
    compile_parser.add_argument("circuit", help="paper benchmark name or QASM file path")
    compile_parser.add_argument(
        "--backend", default="zac", help="registry backend name (see `backends`)"
    )
    compile_parser.add_argument(
        "--json", action="store_true", help="print the serialized CompileResult"
    )
    compile_parser.add_argument(
        "--option",
        dest="options",
        action="append",
        type=_parse_option,
        metavar="KEY=VALUE",
        help=(
            "backend option; values parse as JSON scalars (lower_jobs=false), "
            "and --backend zac accepts config=<vanilla|dyn_place|dyn_place_reuse|full>"
        ),
    )
    compile_parser.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "enable prefix-reuse compilation (ZACConfig.incremental + "
            "warm_start); repeated compiles sharing a gate prefix resume "
            "from the in-process cache (zac/ideal backends)"
        ),
    )
    compile_parser.set_defaults(func=_cmd_compile)

    validate_parser = sub.add_parser(
        "validate",
        help="compile, validate the emitted ZAIR program, and print a program summary",
    )
    validate_parser.add_argument("circuit", help="paper benchmark name or QASM file path")
    validate_parser.add_argument(
        "--backend", default="zac", help="registry backend name (see `backends`)"
    )
    validate_parser.add_argument(
        "--option",
        dest="options",
        action="append",
        type=_parse_option,
        metavar="KEY=VALUE",
        help="backend option (same syntax as `compile`)",
    )
    validate_parser.set_defaults(func=_cmd_validate)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differentially fuzz the registered backends with generated workloads",
    )
    fuzz_parser.add_argument(
        "--budget", type=int, default=50, help="number of workloads to sample (default 50)"
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="master seed; (budget, seed) is reproducible"
    )
    fuzz_parser.add_argument(
        "--backend",
        default="all",
        help="'all' (default) or a comma-separated list of registry backend names",
    )
    fuzz_parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        help="worker processes for the compile fan-out (0 = serial)",
    )
    fuzz_parser.add_argument(
        "--out",
        default="fuzz_failures",
        help="directory for replayable repro bundles (created on first failure)",
    )
    fuzz_parser.add_argument(
        "--replay",
        metavar="BUNDLE",
        help="re-run the failed check recorded in a repro bundle and exit",
    )
    fuzz_parser.add_argument(
        "--profile",
        default="throughput",
        choices=_FUZZ_ONLY_PROFILES,
        help="sweep profile: 'throughput' (lighter ZAC SA schedule, the "
        "default), 'default' (paper-quality settings), 'incremental' "
        "(throughput + prefix-reuse compilation for depth ladders), 'ftqc' "
        "(logical-scale FTQC block workloads on the logical architecture), "
        "'corpus' (committed OpenQASM corpus files), or 'chaos' (seeded "
        "fault-injection storms against the serve daemon; --budget counts "
        "fault plans)",
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    ingest_parser = sub.add_parser(
        "ingest",
        help="stream OpenQASM files through parse -> compile -> validate "
        "with per-file error isolation",
    )
    ingest_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="QASM files and/or directories (default: the committed mini-corpus)",
    )
    ingest_parser.add_argument(
        "--backend", default="zac", help="registry backend name (see `backends`)"
    )
    ingest_parser.add_argument(
        "--profile",
        default="throughput",
        choices=_FUZZ_PROFILES,
        help="compile-option profile (same table as `fuzz`)",
    )
    ingest_parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        help="worker processes for the compile fan-out (0 = serial)",
    )
    ingest_parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write the machine-readable JSON ingest report to FILE ('-' = stdout)",
    )
    ingest_parser.add_argument(
        "--max-errors",
        type=int,
        default=0,
        metavar="N",
        help="exit 0 when at most N files are rejected (default 0)",
    )
    ingest_parser.set_defaults(func=_cmd_ingest)

    serve_parser = sub.add_parser(
        "serve",
        help="run the persistent compile daemon (JSON lines over stdio or HTTP)",
    )
    serve_parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve newline-delimited JSON on stdin/stdout (the default mode)",
    )
    serve_parser.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        default=None,
        help="serve HTTP POST on 127.0.0.1:PORT instead of stdio (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="disk compile-cache directory (persists across daemon restarts)",
    )
    serve_parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="disk cache byte budget before LRU eviction (default 256 MiB)",
    )
    serve_parser.add_argument(
        "--cache-ttl",
        type=float,
        metavar="SECONDS",
        default=None,
        help="evict disk-cache shards idle for longer than SECONDS "
        "(stale shards are swept at startup and on read; default: no TTL)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for sweep fan-out (0 = in-process serial)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        metavar="N",
        default=None,
        help="shed compile requests beyond N queued (structured 'overloaded' "
        "error with retry_after_s; default: unbounded)",
    )
    serve_parser.add_argument(
        "--max-request-bytes",
        type=int,
        metavar="BYTES",
        default=None,
        help="largest accepted request line / HTTP body (default 8 MiB); "
        "oversized requests get a structured 'oversized' error",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    chaos_smoke_parser = sub.add_parser(
        "chaos-smoke",
        help="drive a live stdio daemon through a short seeded fault "
        "schedule and verify it degrades, recovers, and stays bit-identical",
    )
    chaos_smoke_parser.add_argument(
        "--seed", type=int, default=0, help="fault schedule / traffic seed"
    )
    chaos_smoke_parser.set_defaults(func=_cmd_chaos_smoke)

    client_parser = sub.add_parser(
        "client",
        help="script a serve daemon: spawn one over stdio, or connect to --http",
    )
    client_parser.add_argument(
        "circuit",
        nargs="?",
        default=None,
        help="one-shot mode: paper benchmark name or QASM file path to compile",
    )
    client_parser.add_argument(
        "--backend", default="zac", help="registry backend name (see `backends`)"
    )
    client_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="send the compile request N times (duplicates coalesce or hit cache)",
    )
    client_parser.add_argument(
        "--priority", type=int, default=0, help="scheduling priority (higher first)"
    )
    client_parser.add_argument(
        "--option",
        dest="options",
        action="append",
        type=_parse_option,
        metavar="KEY=VALUE",
        help="backend option forwarded in the request (same syntax as `compile`)",
    )
    client_parser.add_argument(
        "--requests",
        metavar="FILE",
        default=None,
        help="send raw JSON request lines from FILE ('-' = stdin) instead",
    )
    client_parser.add_argument(
        "--replay-bundles",
        metavar="DIR",
        default=None,
        help="generate compile traffic from the fuzz repro bundles in DIR "
        "(each bundle's minimized circuit, backend, and profile options)",
    )
    client_parser.add_argument(
        "--corpus",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="stream a QASM corpus as compile traffic (default DIR: the "
        "committed mini-corpus; unparseable files are skipped)",
    )
    client_parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="talk to a running --http daemon instead of spawning one",
    )
    client_parser.add_argument(
        "--cache-dir", default=None, help="spawned daemon's disk cache directory"
    )
    client_parser.add_argument(
        "--cache-bytes", type=int, default=None, help="spawned daemon's cache budget"
    )
    client_parser.add_argument(
        "--cache-ttl",
        type=float,
        metavar="SECONDS",
        default=None,
        help="spawned daemon's disk-cache TTL in seconds",
    )
    client_parser.add_argument(
        "--workers", type=int, default=None, help="spawned daemon's sweep workers"
    )
    client_parser.set_defaults(func=_cmd_client)

    backends_parser = sub.add_parser("backends", help="list registered backends")
    backends_parser.set_defaults(func=_cmd_backends)

    benchmarks_parser = sub.add_parser("benchmarks", help="list paper benchmarks")
    benchmarks_parser.set_defaults(func=_cmd_benchmarks)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
