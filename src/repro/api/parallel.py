"""The batch compile service: warm worker pool + content-addressed cache.

Process-pool fan-out shared by :func:`repro.compile_many` and the experiment
harness.  Every (compiler, circuit) run is an isolated compilation, so
batches can be mapped over worker processes.  Three throughput layers live
here:

* :class:`WorkerPool` -- a **persistent** ``ProcessPoolExecutor`` reused
  across calls (historically every ``fanout_map`` call paid executor
  spin-up), with chunked dispatch so repeated per-task state (the compiler
  object, the architecture) pickles once per chunk, and an inline fallback
  for serial runs and small batches where pool startup would dominate.
* :class:`CompileCache` -- a content-addressed result cache keyed by
  ``(circuit content, backend, architecture fingerprint, options)``.  Fuzz
  depth-ladders and repeated sweep cells never recompile; explicitly
  ``fresh`` requests (the fuzz determinism invariant) bypass it.
* slim results -- when a caller only needs metrics (``keep_programs=False``)
  the in-memory artifacts (program / staged / plan / architecture) are
  stripped in the worker *after* validation, so they are never pickled back.

Two service-grade layers compose on top (built for ``repro serve``, usable
directly): an attachable **disk cache** (:meth:`CompileService.attach_disk_cache`,
see :mod:`repro.serve.diskcache`) that memory misses fall through to and
compiles write through to, and **within-batch coalescing** -- identical
circuits in one cached batch compile once and share the result.  Worker
dispatch can also ship prefix-cache snapshots (``ship_prefix=True``) so
incremental recompiles get cross-process prefix reuse.

Cache-invalidation rules: entries are keyed by the full circuit content
(name, qubit count, exact gate list), the backend name, the architecture
geometry fingerprint, and ``repr`` of the backend's validated option
dataclass -- any change to any of these misses.  Re-registering a backend
under an existing name does NOT invalidate entries; call
``get_compile_service().clear_cache()`` (test fixtures that overwrite
backends should do so).
"""

from __future__ import annotations

import atexit
import os
import random
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, TypeVar

from ..core.result import CompileResult
from ..resilience.faults import RetryPolicy, WorkerCrashError, fault_point
from ..zair.validation import validate_program
from .registry import backend_spec, create_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.spec import Architecture
    from ..circuits.circuit import QuantumCircuit

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Below this batch size ``fanout_map`` runs inline even when workers were
#: requested: for a couple of items the (one-time) pool spin-up plus the
#: per-item pickling costs more than the parallelism recovers.
MIN_PARALLEL_ITEMS = 4

#: Healing budget for pool breaks during batch compiles: after the fast
#: chunked dispatch hits a dead worker, the batch gets this many per-future
#: retry rounds on a rebuilt pool before the crashed slots become
#: :class:`~repro.resilience.faults.WorkerCrashError` records.
COMPILE_RETRY_POLICY = RetryPolicy(max_retries=2, base_delay_s=0.05, max_delay_s=0.5)


def resolve_workers(parallel: int | bool) -> int:
    """Turn a ``parallel=`` argument into a worker count (``True`` = one per CPU)."""
    if parallel is True:
        return os.cpu_count() or 1
    return int(parallel)


class WorkerPool:
    """A lazily started, persistent process pool.

    The executor is created on first parallel use and reused for every
    subsequent batch (worker processes stay warm, imports and forked state
    amortize across calls).  ``map`` falls back to an inline loop for serial
    requests and small batches.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None
        self._max_workers = 0

    def executor(self, workers: int) -> ProcessPoolExecutor:
        """The shared executor, (re)created when more workers are needed."""
        if self._executor is None or self._max_workers < workers:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = ProcessPoolExecutor(max_workers=workers)
            self._max_workers = workers
        return self._executor

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        workers: int,
        *,
        retry: RetryPolicy | None = None,
    ) -> list[ResultT]:
        """Map ``fn`` over ``items`` on the warm pool (inline when small).

        With ``retry`` set, a :class:`BrokenProcessPool` (a worker process
        died mid-batch) does not abort the batch: the pool is rebuilt and the
        items are retried per-future with backoff, up to the retry budget.
        Slots still crashing after the budget come back as
        :class:`WorkerCrashError` *records* in their positions.
        """
        if workers <= 1 or len(items) < MIN_PARALLEL_ITEMS:
            return [fn(item) for item in items]
        workers = min(workers, len(items))
        chunksize = max(1, len(items) // (workers * 4))
        executor = self.executor(workers)
        try:
            return list(executor.map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died (e.g. an unpicklable task poisoned it).  Drop
            # the executor so the *next* batch gets a healthy pool instead
            # of inheriting the broken one (the per-call executors of old
            # could not be poisoned across calls).
            self.shutdown()
            if retry is None:
                raise
        return self._map_retry(fn, items, workers, retry)

    def _map_retry(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        workers: int,
        retry: RetryPolicy,
    ) -> list[ResultT]:
        """Healing rounds after a pool break (bounded, backoff + jitter).

        Chunked dispatch cannot tell which items survived the crash, so the
        first round re-runs everything per-future on a fresh pool (compiles
        are deterministic and idempotent, and the caches absorb most of the
        repeat cost).  The final round runs each still-crashing item in an
        isolated single-worker pool so a persistently crashing item can only
        poison its own slot -- surviving slots always complete.
        """
        results: list = [None] * len(items)
        pending = list(range(len(items)))
        rng = random.Random(len(items))
        for attempt in range(retry.max_retries):
            time.sleep(retry.delay(attempt, rng))
            if attempt == retry.max_retries - 1:
                still: list[int] = []
                for index in pending:
                    with ProcessPoolExecutor(max_workers=1) as solo:
                        try:
                            results[index] = solo.submit(fn, items[index]).result()
                        except BrokenProcessPool:
                            still.append(index)
                pending = still
            else:
                executor = self.executor(workers)
                futures = [(index, executor.submit(fn, items[index])) for index in pending]
                crashed: list[int] = []
                for index, future in futures:
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        crashed.append(index)
                pending = crashed
                if crashed:
                    self.shutdown()
            if not pending:
                return results
        for index in pending:
            results[index] = WorkerCrashError(
                f"worker process died compiling batch item {index} "
                f"(retry budget of {retry.max_retries} exhausted)"
            )
        return results

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._max_workers = 0


_POOL = WorkerPool()
atexit.register(_POOL.shutdown)


def get_worker_pool() -> WorkerPool:
    """The process-wide warm worker pool."""
    return _POOL


def fanout_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT] | Sequence[ItemT],
    parallel: int | bool = 0,
) -> list[ResultT]:
    """Map ``fn`` over ``items``, optionally fanning out over worker processes.

    Args:
        fn: A picklable (module-level) callable.
        items: The work items; each must be picklable when running in parallel.
        parallel: Worker-process count; ``True`` means one per CPU, ``0`` /
            ``1`` / ``False`` run serially.  Batches smaller than
            :data:`MIN_PARALLEL_ITEMS` run inline regardless (per-call
            executor startup would dominate).  With the ``spawn`` start
            method the ``repro`` package must be importable in workers
            (``PYTHONPATH`` must include ``src`` or the package must be
            installed); the default ``fork`` start method on Linux needs no
            setup.

    Returns:
        The results in submission order, regardless of ``parallel``.
    """
    items = list(items)
    return _POOL.map(fn, items, resolve_workers(parallel))


# ---------------------------------------------------------------------------
# Content-addressed compile cache + batch compile service
# ---------------------------------------------------------------------------


def circuit_content_key(circuit: QuantumCircuit) -> tuple:
    """Content key of a circuit: name, width, and the exact gate list."""
    return (circuit.name, circuit.num_qubits, circuit.gates)


def architecture_fingerprint(arch: Architecture | None) -> tuple | None:
    """Value-based architecture key (default architectures are rebuilt per
    backend instantiation, so identity-based keys would never hit)."""
    if arch is None:
        return None
    zones = []
    for zone in arch.all_zones():
        zones.append(
            (
                zone.zone_id,
                zone.offset,
                zone.dimension,
                tuple(
                    (s.slm_id, s.sep, s.num_row, s.num_col, s.offset)
                    for s in zone.slms
                ),
            )
        )
    return (
        arch.name,
        arch.zone_separation,
        tuple(
            (a.aod_id, a.max_num_row, a.max_num_col, a.min_sep)
            for a in getattr(arch, "aods", ())
        ),
        tuple(zones),
    )


class CompileCache:
    """Bounded FIFO content-addressed cache of :class:`CompileResult`."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, tuple[CompileResult, bool]] = {}
        self.hits = 0
        self.misses = 0
        #: Requests served by sharing another identical request's compile
        #: (within-batch dedup here; in-flight coalescing in ``repro serve``).
        self.coalesced = 0

    def get(self, key: tuple, need_programs: bool) -> CompileResult | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        result, has_programs = entry
        if need_programs and not has_programs:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: tuple, result: CompileResult, has_programs: bool) -> None:
        if len(self._entries) >= self.max_entries:
            # FIFO eviction: drop the oldest insertion.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (result, has_programs)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
        }


def _strip_result(result: CompileResult) -> CompileResult:
    """Drop the in-memory artifacts (slim pickles for metrics-only callers)."""
    result.program = None
    result.staged = None
    result.plan = None
    result.architecture = None
    return result


def _mark_validated(result: CompileResult) -> CompileResult:
    if result.program is not None:
        validate_program(result.architecture, result.program)
    result.validated = True
    return result


def _compile_task(
    task: tuple[Any, QuantumCircuit, bool, bool, bool],
) -> CompileResult | Exception:
    """Top-level worker (picklable) compiling one circuit.

    The compiler object repeats across the tasks of one chunk, so chunked
    dispatch pickles it once per chunk (pickle memoizes shared objects).
    """
    compiler, circuit, validate, return_exceptions, keep_programs = task
    try:
        fault_point("worker.compile", label=circuit.name)
        result = compiler.compile(circuit)
        if validate:
            _mark_validated(result)
        if not keep_programs:
            _strip_result(result)
        return result
    except Exception as exc:
        if not return_exceptions:
            raise
        # Strip exception chains before pickling the error back: a __cause__
        # may reference unpicklable compiler state.
        exc.__cause__ = exc.__context__ = None
        return exc


# -- cross-process prefix shipping --------------------------------------------
#
# The prefix caches (core/incremental.py, circuits/synthesis.py) are
# per-process, so worker-pool fan-out historically got no cross-rung reuse.
# The compile daemon (and any `ship_prefix=True` batch) closes that gap by
# pickling a snapshot of both caches into each worker task and merging the
# worker's new entries -- and its hit/miss deltas -- back afterwards.


def export_prefix_snapshots(scope: tuple | None = None) -> dict:
    """Picklable snapshots of both prefix-layer caches (for worker dispatch)."""
    from ..circuits.synthesis import get_resynthesis_prefix_cache
    from ..core.incremental import get_prefix_cache

    return {
        "prefix": get_prefix_cache().snapshot(scope),
        "resynthesis": get_resynthesis_prefix_cache().snapshot(),
    }


def import_prefix_snapshots(
    snapshots: dict, *, merge: bool = True, stats_delta: dict | None = None
) -> None:
    """Install shipped prefix snapshots (optionally folding in stats deltas)."""
    from ..circuits.synthesis import get_resynthesis_prefix_cache
    from ..core.incremental import get_prefix_cache

    if "prefix" in snapshots:
        get_prefix_cache().restore(snapshots["prefix"], merge=merge)
    if "resynthesis" in snapshots:
        get_resynthesis_prefix_cache().restore(snapshots["resynthesis"], merge=merge)
    if stats_delta:
        get_prefix_cache().merge_stats(**stats_delta.get("prefix", {}))
        get_resynthesis_prefix_cache().merge_stats(
            **stats_delta.get("resynthesis", {})
        )


def _compile_task_with_prefix(
    task: tuple[dict, tuple],
) -> tuple[CompileResult | Exception, dict, dict]:
    """Worker twin of :func:`_compile_task` that restores shipped snapshots.

    Returns ``(outcome, snapshots_after, stats_delta)`` so the dispatching
    process can merge the worker's new prefix entries and account the
    worker-side prefix hits in its own ``cache_stats()``.
    """
    from ..circuits.synthesis import get_resynthesis_prefix_cache
    from ..core.incremental import get_prefix_cache

    snapshots, inner = task
    import_prefix_snapshots(snapshots, merge=True)
    prefix = get_prefix_cache()
    resyn = get_resynthesis_prefix_cache()
    before = (prefix.hits, prefix.warm_hits, prefix.misses, resyn.hits, resyn.misses)
    outcome = _compile_task(inner)
    delta = {
        "prefix": {
            "hits": prefix.hits - before[0],
            "warm_hits": prefix.warm_hits - before[1],
            "misses": prefix.misses - before[2],
        },
        "resynthesis": {
            "hits": resyn.hits - before[3],
            "misses": resyn.misses - before[4],
        },
    }
    return outcome, export_prefix_snapshots(), delta


class CompileService:
    """Warm-pool batch compilation with an optional content-addressed cache.

    ``repro.compile_many``, the fuzz harness, and the experiment harness all
    route through one process-wide instance (:func:`get_compile_service`).
    A :class:`repro.serve.DiskCompileCache` can be attached so cache misses
    fall through to (and compiles write through to) a persistent, sharded
    on-disk store -- that is what makes a restarted ``repro serve`` daemon
    answer previously-compiled requests without recompiling.
    """

    def __init__(self) -> None:
        self.cache = CompileCache()
        self.pool = _POOL
        #: Optional persistent second-level cache (see ``repro.serve``).
        self.disk = None

    # -- disk persistence ------------------------------------------------------

    def attach_disk_cache(self, disk) -> None:
        """Attach a persistent second-level cache (``repro.serve`` disk store).

        Memory-cache misses of slim (``keep_programs=False``) requests fall
        through to ``disk.get``; completed cached compiles write through via
        ``disk.put``.  Disk entries never carry programs (the
        :class:`~repro.core.result.CompileResult` serialization is
        metrics-only), so full-artifact requests always recompile.
        """
        self.disk = disk

    def detach_disk_cache(self) -> None:
        self.disk = None

    # -- keys -----------------------------------------------------------------

    def _key_parts(self, backend: str, arch, options: dict) -> tuple:
        spec = backend_spec(backend)
        validated = spec.options(**options) if spec.options is not None else None
        return (backend, architecture_fingerprint(arch), repr(validated))

    def cache_key(self, circuit, backend: str, arch, options: dict) -> tuple:
        return self._key_parts(backend, arch, options) + (
            circuit_content_key(circuit),
        )

    # -- compilation ----------------------------------------------------------

    def compile_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        backend: str = "zac",
        arch=None,
        *,
        parallel: int | bool = 0,
        validate: bool = True,
        return_exceptions: bool = False,
        cache: bool = False,
        fresh: bool = False,
        keep_programs: bool = True,
        ship_prefix: bool = False,
        provenance: list | None = None,
        **options: Any,
    ) -> list[CompileResult | Exception]:
        """Compile a batch of circuits, serving repeats from the cache.

        Args:
            circuits: The circuits (already instantiated).
            backend: Registry backend name.
            arch: Target architecture (``None`` = backend default).
            parallel: Worker count for the fan-out (warm pool).
            validate: Replay each emitted program through the validator; a
                cache hit that was not validated when it was stored is
                validated on the way out (``CompileResult.validated`` tracks
                this).
            return_exceptions: Failures fill their slot instead of raising.
            cache: Serve and populate the content-addressed compile cache.
                Identical circuits within one cached batch are *coalesced*:
                one compiles, the duplicates share its result (the
                ``coalesced`` cache counter tracks how many).
            fresh: Bypass cache *reads* (and skip the write) -- used by the
                fuzz determinism invariant, which must genuinely recompile.
            keep_programs: When False, strip programs/plans/architectures
                from the results (slim pickles for metrics-only sweeps).
            ship_prefix: Ship prefix-cache snapshots into the worker
                processes (and merge their new entries and hit counters
                back), so ``ZACConfig(incremental=True)`` recompiles hit the
                prefix path even when the batch fans out across processes.
                Only takes effect when the batch actually reaches the pool.
            provenance: When a list is passed, it is filled with one tag per
                circuit describing how the slot was served -- ``"memory"`` /
                ``"disk"`` / ``"coalesced"`` / ``"compiled"`` / ``"error"``
                (the ``repro serve`` daemon reports these to its clients).
            **options: Backend options (validated by the registry).

        Returns:
            Results (or exceptions) in input order.
        """
        compiler = create_backend(backend, arch=arch, **options)
        use_cache = cache and not fresh
        if use_cache:
            # Only when serving from / populating the cache: a fresh request
            # must genuinely recompile, including the ideal bound's inner
            # ZAC run.
            self._wire_ideal_resolver(compiler, backend, arch, options)

        # Key on the *resolved* architecture: backends instantiate their
        # default device when ``arch`` is None, and the fingerprint is
        # value-based, so "default by omission" and "default passed
        # explicitly" address the same cache cells.
        key_arch = getattr(compiler, "architecture", None) or arch

        if provenance is not None:
            provenance[:] = [None] * len(circuits)

        def tag(index: int, how: str) -> None:
            if provenance is not None:
                provenance[index] = how

        keys: list[tuple | None] = [None] * len(circuits)
        results: list[CompileResult | Exception | None] = [None] * len(circuits)
        miss_indices: list[int] = []
        if use_cache:
            key_prefix = self._key_parts(backend, key_arch, options)
            for index, circuit in enumerate(circuits):
                key = key_prefix + (circuit_content_key(circuit),)
                keys[index] = key
                hit = self.cache.get(key, need_programs=keep_programs)
                if hit is None:
                    disk_hit = self._disk_lookup(key, validate, keep_programs)
                    if disk_hit is not None:
                        # Promote to the memory cache so the next request
                        # skips the disk read too.
                        self.cache.put(key, disk_hit, has_programs=False)
                        results[index] = disk_hit
                        tag(index, "disk")
                        continue
                    miss_indices.append(index)
                    continue
                if validate and not hit.validated:
                    if hit.program is None:
                        # A stripped (slim) entry cannot be validated after
                        # the fact; recompile rather than claim validation
                        # (and account it as the miss it effectively is).
                        self.cache.hits -= 1
                        self.cache.misses += 1
                        miss_indices.append(index)
                        continue
                    try:
                        _mark_validated(hit)
                    except Exception as exc:
                        if not return_exceptions:
                            raise
                        exc.__cause__ = exc.__context__ = None
                        results[index] = exc
                        tag(index, "error")
                        continue
                results[index] = hit
                tag(index, "memory")
        else:
            miss_indices = list(range(len(circuits)))

        # Coalesce identical circuits within the batch: one representative
        # compiles per distinct key, the duplicates share its outcome.
        compile_indices = miss_indices
        duplicate_of: dict[int, int] = {}
        if use_cache and len(miss_indices) > 1:
            representative: dict[tuple, int] = {}
            compile_indices = []
            for index in miss_indices:
                rep = representative.get(keys[index])
                if rep is None:
                    representative[keys[index]] = index
                    compile_indices.append(index)
                else:
                    duplicate_of[index] = rep

        tasks = [
            (compiler, circuits[index], validate, return_exceptions, keep_programs)
            for index in compile_indices
        ]
        outcomes = self._dispatch(tasks, resolve_workers(parallel), ship_prefix)
        for index, outcome in zip(compile_indices, outcomes):
            results[index] = outcome
            if isinstance(outcome, Exception):
                if isinstance(outcome, WorkerCrashError) and not return_exceptions:
                    # Crash records only stay records under
                    # return_exceptions; otherwise the batch contract is
                    # raise-on-failure.
                    raise outcome
                tag(index, "error")
                continue
            tag(index, "compiled")
            if use_cache and keys[index] is not None:
                self.cache.put(keys[index], outcome, has_programs=keep_programs)
                self._disk_store(keys[index], outcome, backend)
        for index, rep in duplicate_of.items():
            results[index] = results[rep]
            self.cache.coalesced += 1
            tag(index, "error" if isinstance(results[rep], Exception) else "coalesced")
        return results  # type: ignore[return-value]

    def _dispatch(
        self, tasks: list[tuple], workers: int, ship_prefix: bool
    ) -> list[CompileResult | Exception]:
        """Fan tasks out over the pool, optionally shipping prefix snapshots."""
        if not tasks:
            return []
        if ship_prefix and workers > 1 and len(tasks) >= MIN_PARALLEL_ITEMS:
            snapshots = export_prefix_snapshots()
            shipped = self.pool.map(
                _compile_task_with_prefix,
                [(snapshots, task) for task in tasks],
                workers,
                retry=COMPILE_RETRY_POLICY,
            )
            outcomes: list[CompileResult | Exception] = []
            for entry in shipped:
                if isinstance(entry, Exception):
                    # A WorkerCrashError record: no snapshot came back.
                    outcomes.append(entry)
                    continue
                outcome, snapshot, delta = entry
                outcomes.append(outcome)
                import_prefix_snapshots(snapshot, merge=True, stats_delta=delta)
            return outcomes
        return self.pool.map(_compile_task, tasks, workers, retry=COMPILE_RETRY_POLICY)

    def _disk_lookup(
        self, key: tuple, validate: bool, keep_programs: bool
    ) -> CompileResult | None:
        """Second-level lookup; slim entries only serve slim requests."""
        if self.disk is None or keep_programs:
            return None
        hit = self.disk.get(key)
        if hit is None:
            return None
        if validate and not hit.validated:
            # Disk entries carry no program, so an unvalidated entry cannot
            # be validated post-hoc -- recompile rather than fake the flag.
            return None
        return hit

    def _disk_store(self, key: tuple, result: CompileResult, backend: str) -> None:
        if self.disk is None:
            return
        try:
            self.disk.put(key, result, backend=backend)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            import warnings

            warnings.warn(
                f"compile disk cache write failed: {exc}", RuntimeWarning, stacklevel=2
            )

    def compile_one(
        self,
        circuit: QuantumCircuit,
        backend: str = "zac",
        arch=None,
        **kwargs: Any,
    ) -> CompileResult:
        """Single-circuit convenience wrapper over :meth:`compile_batch`."""
        return self.compile_batch([circuit], backend, arch, **kwargs)[0]

    # -- the ideal backend reuses cached ZAC sub-compilations -----------------

    def _wire_ideal_resolver(self, compiler, backend: str, arch, options: dict) -> None:
        """Let the ``ideal`` bound reuse a cached ZAC run on the same inputs.

        The idealised bounds post-process a ZAC compilation (staged circuit +
        placement plan); with the cache on, that inner compile is served
        through the service under the equivalent ``zac`` key, so a sweep
        that compiles both ``zac`` and ``ideal`` on one circuit pays for the
        ZAC pipeline once.
        """
        if backend != "ideal" or not hasattr(compiler, "zac_resolver"):
            return
        zac_options = {
            "config": getattr(compiler, "config", None),
            "params": compiler.params,
        }
        target_arch = compiler.architecture

        def resolve(circuit):
            return self.compile_one(
                circuit,
                "zac",
                target_arch,
                validate=False,
                cache=True,
                **zac_options,
            )

        compiler.zac_resolver = resolve

    def clear_cache(self) -> None:
        """Drop the result cache AND the incremental prefix-layer caches.

        The prefix caches (:func:`repro.core.incremental.get_prefix_cache`,
        :func:`repro.circuits.synthesis.get_resynthesis_prefix_cache`) hold
        per-process compilation artifacts for ``ZACConfig(incremental=True)``
        compiles; test fixtures that re-register backends or need genuine
        recompiles clear everything through this one entry point.  Note the
        prefix caches are per-process: batches fanned out over the worker
        pool populate each worker's own cache, so incremental reuse across a
        depth ladder needs the rungs compiled in one process (serial
        ``parallel=0``, the default).
        """
        self.cache.clear()
        from ..circuits.synthesis import get_resynthesis_prefix_cache
        from ..core.incremental import get_prefix_cache

        get_prefix_cache().clear()
        get_resynthesis_prefix_cache().clear()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss statistics of the result cache and the prefix caches."""
        from ..circuits.synthesis import get_resynthesis_prefix_cache
        from ..core.incremental import get_prefix_cache

        resyn = get_resynthesis_prefix_cache()
        stats = {
            "results": self.cache.stats(),
            "prefix": get_prefix_cache().stats(),
            "resynthesis": {
                "entries": len(resyn),
                "hits": resyn.hits,
                "misses": resyn.misses,
            },
        }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats


_SERVICE = CompileService()


def get_compile_service() -> CompileService:
    """The process-wide compile service (warm pool + compile cache)."""
    return _SERVICE
