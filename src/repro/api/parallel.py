"""Process-pool fan-out shared by ``compile_many`` and the experiment harness.

Every (compiler, circuit) run is an isolated compilation, so batches can be
mapped over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The helper
keeps the submission order in the results, falls back to a serial loop for
``parallel in (0, 1, False)`` or single-item batches, and caps the worker
count at the batch size.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def resolve_workers(parallel: int | bool) -> int:
    """Turn a ``parallel=`` argument into a worker count (``True`` = one per CPU)."""
    if parallel is True:
        return os.cpu_count() or 1
    return int(parallel)


def fanout_map(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT] | Sequence[ItemT],
    parallel: int | bool = 0,
) -> list[ResultT]:
    """Map ``fn`` over ``items``, optionally fanning out over worker processes.

    Args:
        fn: A picklable (module-level) callable.
        items: The work items; each must be picklable when running in parallel.
        parallel: Worker-process count; ``True`` means one per CPU, ``0`` /
            ``1`` / ``False`` run serially.  With the ``spawn`` start method
            the ``repro`` package must be importable in workers (``PYTHONPATH``
            must include ``src`` or the package must be installed); the default
            ``fork`` start method on Linux needs no setup.

    Returns:
        The results in submission order, regardless of ``parallel``.
    """
    items = list(items)
    workers = resolve_workers(parallel)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as executor:
        return list(executor.map(fn, items))
