"""Factories registering the six built-in backends.

Importing this module (done by :mod:`repro.api`) populates the registry with
``zac``, ``enola``, ``atomique``, ``nalac``, ``sc``, and ``ideal``.
"""

from __future__ import annotations

from ..arch.presets import reference_zoned_architecture
from ..arch.spec import Architecture
from ..baselines.ideal import IdealBound
from ..baselines.monolithic.atomique import AtomiqueCompiler
from ..baselines.monolithic.enola import EnolaCompiler
from ..baselines.superconducting.transpiler import SuperconductingCompiler
from ..baselines.zoned.nalac import NALACCompiler
from ..core.compiler import ZACCompiler
from .options import (
    AtomiqueOptions,
    EnolaOptions,
    IdealOptions,
    NalacOptions,
    SCOptions,
    ZacOptions,
)
from .registry import register_backend


def _zac_factory(arch: Architecture | None, options: ZacOptions) -> ZACCompiler:
    return ZACCompiler(
        arch or reference_zoned_architecture(),
        config=options.config,
        params=options.params,
        lower_jobs=options.lower_jobs,
        pipeline=options.pipeline,
    )


def _enola_factory(arch: Architecture | None, options: EnolaOptions) -> EnolaCompiler:
    return EnolaCompiler(architecture=arch, params=options.params)


def _atomique_factory(
    arch: Architecture | None, options: AtomiqueOptions
) -> AtomiqueCompiler:
    return AtomiqueCompiler(architecture=arch, params=options.params)


def _nalac_factory(arch: Architecture | None, options: NalacOptions) -> NALACCompiler:
    return NALACCompiler(architecture=arch, params=options.params)


def _sc_factory(
    arch: Architecture | None, options: SCOptions
) -> SuperconductingCompiler:
    if arch is not None:
        raise ValueError(
            "the 'sc' backend targets fixed coupling graphs; pick variant='heron' "
            "or variant='grid' instead of passing a zoned architecture"
        )
    if options.variant == "heron":
        return SuperconductingCompiler.heron()
    if options.variant == "grid":
        return SuperconductingCompiler.grid()
    raise ValueError(f"unknown sc variant {options.variant!r}; use 'heron' or 'grid'")


def _ideal_factory(arch: Architecture | None, options: IdealOptions) -> IdealBound:
    return IdealBound(
        options.mode, architecture=arch, params=options.params, config=options.config
    )


register_backend(
    "zac", _zac_factory, ZacOptions, "Reuse-aware zoned compiler (the paper's ZAC)"
)
register_backend(
    "enola", _enola_factory, EnolaOptions, "Monolithic movement-based baseline (Enola)"
)
register_backend(
    "atomique", _atomique_factory, AtomiqueOptions, "Monolithic SLM/AOD baseline (Atomique)"
)
register_backend(
    "nalac", _nalac_factory, NalacOptions, "Zoned single-row baseline (NALAC)"
)
register_backend(
    "sc", _sc_factory, SCOptions, "Superconducting transpiler (Heron / grid)"
)
register_backend(
    "ideal", _ideal_factory, IdealOptions, "Idealised upper bounds on a ZAC run"
)
