"""Per-backend option dataclasses for the backend registry.

Keyword arguments passed to :func:`repro.compile` /
:func:`repro.api.create_backend` are validated by constructing the backend's
option dataclass, so a typo'd option fails fast with the list of valid
fields instead of being silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..baselines.ideal import PERFECT_MOVEMENT
from ..core.config import ZACConfig
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import PassPipeline


@dataclass(frozen=True)
class ZacOptions:
    """Options of the ``"zac"`` backend (the paper's compiler).

    ``config`` defaults to the full pipeline configuration (rather than
    ``None``) so that equal compile requests produce equal option ``repr``
    s -- the compile service's content-addressed cache keys on it.
    """

    config: ZACConfig | None = ZACConfig()
    params: NeutralAtomParams = NEUTRAL_ATOM
    lower_jobs: bool = True
    pipeline: "PassPipeline | None" = None


@dataclass(frozen=True)
class EnolaOptions:
    """Options of the ``"enola"`` monolithic baseline."""

    params: NeutralAtomParams = NEUTRAL_ATOM


@dataclass(frozen=True)
class AtomiqueOptions:
    """Options of the ``"atomique"`` monolithic baseline."""

    params: NeutralAtomParams = NEUTRAL_ATOM


@dataclass(frozen=True)
class NalacOptions:
    """Options of the ``"nalac"`` zoned baseline."""

    params: NeutralAtomParams = NEUTRAL_ATOM


@dataclass(frozen=True)
class SCOptions:
    """Options of the ``"sc"`` superconducting baseline.

    Attributes:
        variant: ``"grid"`` (Google-style 11x11 grid, the paper's Table II
            device) or ``"heron"`` (IBM Heron heavy-hexagon).
    """

    variant: str = "grid"


@dataclass(frozen=True)
class IdealOptions:
    """Options of the ``"ideal"`` upper-bound backend.

    Attributes:
        mode: One of ``perfect_movement`` / ``perfect_placement`` /
            ``perfect_reuse`` (see :mod:`repro.baselines.ideal`).
        config: Configuration of the *underlying* ZAC run the bound
            idealises.  Pass the same config as the ``zac`` backend so the
            compile service can share the cached ZAC compilation between
            the two.
    """

    mode: str = PERFECT_MOVEMENT
    params: NeutralAtomParams = NEUTRAL_ATOM
    config: ZACConfig | None = None
