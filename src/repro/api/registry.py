"""The backend registry: one uniform construction path for every compiler.

A *backend* is a named factory producing objects satisfying the
:class:`Compiler` protocol (``name`` + ``compile(circuit) -> CompileResult``).
The built-in backends (``zac``, ``enola``, ``atomique``, ``nalac``, ``sc``,
``ideal``) are registered by :mod:`repro.api.backends`; new targets register
themselves with :func:`register_backend` and immediately work with
:func:`repro.compile`, :func:`repro.compile_many`, and every experiment
module that builds its compiler dictionary through the registry.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from ..arch.spec import Architecture
from ..core.result import CompileResult


@runtime_checkable
class Compiler(Protocol):
    """What the harness needs from a compiler: a name and ``compile``."""

    name: str

    def compile(self, circuit: Any) -> CompileResult:  # pragma: no cover - protocol
        ...


class UnknownBackendError(KeyError):
    """Raised when a backend name is not in the registry."""

    def __init__(self, name: str, known: list[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown backend {self.name!r}; registered backends: {', '.join(self.known)}"


#: A factory builds a compiler from a target architecture (may be ``None``,
#: meaning the backend's default device) and its validated options object.
BackendFactory = Callable[[Architecture | None, Any], Compiler]


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry."""

    name: str
    factory: BackendFactory
    options: type | None = None
    description: str = ""


_REGISTRY: dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    options: type | None = None,
    description: str = "",
    overwrite: bool = False,
) -> BackendSpec:
    """Register a compiler backend under ``name``.

    Args:
        name: Registry key, e.g. ``"zac"``.
        factory: ``factory(arch, options) -> Compiler``.
        options: Optional dataclass validating the backend's keyword options.
        description: One-line description shown by the CLI.
        overwrite: Allow replacing an existing registration.

    Raises:
        ValueError: If ``name`` is already registered and not ``overwrite``.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered; pass overwrite=True to replace it"
        )
    spec = BackendSpec(name=name, factory=factory, options=options, description=description)
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a backend registration (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_backends() -> list[str]:
    """Names of all registered backends, in registration order."""
    return list(_REGISTRY)


def backend_spec(name: str) -> BackendSpec:
    """Look up a backend registration.

    Raises:
        UnknownBackendError: If ``name`` is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available_backends()) from None


def create_backend(
    name: str, arch: Architecture | None = None, **options: Any
) -> Compiler:
    """Instantiate a registered backend.

    Args:
        name: Registry key (see :func:`available_backends`).
        arch: Target architecture; ``None`` selects the backend's default.
        **options: Backend-specific options, validated against the backend's
            option dataclass.

    Raises:
        UnknownBackendError: If ``name`` is not registered.
        TypeError: If an option is not accepted by the backend.
    """
    spec = backend_spec(name)
    if spec.options is not None:
        try:
            validated = spec.options(**options)
        except TypeError as exc:
            raise TypeError(f"invalid options for backend {name!r}: {exc}") from None
    else:
        if options:
            raise TypeError(
                f"backend {name!r} accepts no options, got: {', '.join(options)}"
            )
        validated = None
    return spec.factory(arch, validated)
