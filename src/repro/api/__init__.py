"""The public compilation API: backend registry + one-call compilation.

Typical use::

    import repro

    result = repro.compile("bv_n14", backend="zac")          # one benchmark
    results = repro.compile_many(                            # batch, fanned out
        ["bv_n14", "ghz_n23"], backend="nalac", parallel=4
    )
    repro.available_backends()                               # -> ["zac", ...]

``compile`` accepts a :class:`~repro.circuits.circuit.QuantumCircuit` or a
paper-benchmark name, instantiates the requested backend through the
registry, and returns the unified
:class:`~repro.core.result.CompileResult`, which serializes with
``to_dict``/``to_json`` and round-trips with ``from_dict``/``from_json``.
New backends plug in via :func:`register_backend` and instantly work with
every experiment harness that builds its compilers through the registry.
"""

from __future__ import annotations

from typing import Any, Union

from ..arch.spec import Architecture
from ..circuits.circuit import QuantumCircuit
from ..circuits.library.registry import get_benchmark
from ..core.result import (
    CompileResult,
    load_results,
    merge_results,
    results_from_json,
    results_to_json,
    save_results,
)
from . import backends as _backends  # noqa: F401  (registers the built-ins)
from .options import (
    AtomiqueOptions,
    EnolaOptions,
    IdealOptions,
    NalacOptions,
    SCOptions,
    ZacOptions,
)
from .parallel import (
    CompileCache,
    CompileService,
    WorkerPool,
    _mark_validated,
    fanout_map,
    get_compile_service,
    get_worker_pool,
)
from .registry import (
    BackendSpec,
    Compiler,
    UnknownBackendError,
    available_backends,
    backend_spec,
    create_backend,
    register_backend,
    unregister_backend,
)

CircuitLike = Union[QuantumCircuit, str]


def _as_circuit(circuit: CircuitLike) -> QuantumCircuit:
    if isinstance(circuit, str):
        return get_benchmark(circuit)
    return circuit


def _validated(result: CompileResult) -> CompileResult:
    """Check the emitted ZAIR program against the hardware invariants.

    Every built-in backend attaches its compiled program (and, for
    location-based programs, the target architecture); user-registered
    backends that emit no program are passed through unchecked.  Shared with
    the batch compile service so the single- and batch-compile paths cannot
    diverge.

    Raises:
        repro.zair.ValidationError: if the program violates an invariant.
    """
    return _mark_validated(result)


def compile(
    circuit: CircuitLike,
    backend: str = "zac",
    arch: Architecture | None = None,
    validate: bool = True,
    **options: Any,
) -> CompileResult:
    """Compile a circuit (or paper-benchmark name) with a registered backend.

    Args:
        circuit: A :class:`~repro.circuits.circuit.QuantumCircuit`, or the
            name of a paper benchmark (e.g. ``"bv_n14"``).
        backend: Registry name of the compiler (see
            :func:`available_backends`).
        arch: Target architecture; ``None`` selects the backend's default.
        validate: Replay the emitted ZAIR program through
            :func:`repro.zair.validate_program` before returning, so every
            reported number describes a physically executable schedule.
        **options: Backend-specific options (validated against the backend's
            option dataclass, e.g. ``config=ZACConfig.vanilla()`` for ZAC).

    Returns:
        The unified, JSON-serializable compilation result.
    """
    compiler = create_backend(backend, arch=arch, **options)
    result = compiler.compile(_as_circuit(circuit))
    return _validated(result) if validate else result


def compile_many(
    circuits: list[CircuitLike],
    backend: str = "zac",
    arch: Architecture | None = None,
    parallel: int | bool = 0,
    validate: bool = True,
    return_exceptions: bool = False,
    cache: bool = False,
    fresh: bool = False,
    keep_programs: bool = True,
    **options: Any,
) -> list[CompileResult | Exception]:
    """Compile a batch of circuits with one backend, in input order.

    Batches route through the process-wide
    :class:`~repro.api.parallel.CompileService`: independent runs fan out
    over a **warm** process pool (``parallel=True`` means one worker per
    CPU, ``0``/``1``/``False`` and small batches run inline), each worker
    validates its emitted ZAIR program unless ``validate=False``, and with
    ``cache=True`` repeated (circuit, backend, architecture, options) cells
    are served from the content-addressed compile cache instead of
    recompiling (``fresh=True`` forces a genuine recompile, e.g. for
    determinism checks).  ``keep_programs=False`` strips the in-memory
    program/plan artifacts in the worker, so metrics-only sweeps don't pay
    to pickle them back.

    With ``return_exceptions=True`` a failing compilation does not abort the
    batch: the raised exception is returned in that circuit's slot instead
    (mirroring ``asyncio.gather``), so sweeps over generated workloads can
    record per-circuit failures.  Isolation starts at circuit *resolution*,
    not just compilation — a slot that fails to materialize (unknown
    benchmark name, a loader callable raising ``QASMError`` on a malformed
    file) yields an exception in that slot while the rest of the batch
    proceeds.  Callables in ``circuits`` are invoked to produce the circuit,
    so ingest-style sweeps can defer parsing into the isolated region.
    """
    if not return_exceptions:
        resolved = [_as_circuit(circuit) for circuit in circuits]
        return get_compile_service().compile_batch(
            resolved,
            backend,
            arch,
            parallel=parallel,
            validate=validate,
            return_exceptions=False,
            cache=cache,
            fresh=fresh,
            keep_programs=keep_programs,
            **options,
        )

    slots: list[Exception | None] = []
    resolved = []
    for circuit in circuits:
        try:
            if callable(circuit) and not isinstance(circuit, (str, QuantumCircuit)):
                circuit = circuit()
            resolved.append(_as_circuit(circuit))
            slots.append(None)
        except Exception as exc:  # noqa: BLE001 - mirrors asyncio.gather
            slots.append(exc)
    compiled = iter(
        get_compile_service().compile_batch(
            resolved,
            backend,
            arch,
            parallel=parallel,
            validate=validate,
            return_exceptions=True,
            cache=cache,
            fresh=fresh,
            keep_programs=keep_programs,
            **options,
        )
    )
    return [slot if slot is not None else next(compiled) for slot in slots]


__all__ = [
    "AtomiqueOptions",
    "BackendSpec",
    "CompileCache",
    "CompileService",
    "Compiler",
    "CompileResult",
    "EnolaOptions",
    "IdealOptions",
    "NalacOptions",
    "SCOptions",
    "UnknownBackendError",
    "WorkerPool",
    "ZacOptions",
    "available_backends",
    "backend_spec",
    "compile",
    "compile_many",
    "create_backend",
    "fanout_map",
    "get_compile_service",
    "get_worker_pool",
    "load_results",
    "merge_results",
    "register_backend",
    "results_from_json",
    "results_to_json",
    "save_results",
    "unregister_backend",
]
