"""Logical-level FTQC compilation with ZAC (paper Section VIII).

ZAC's second FTQC role: given a logical circuit of transversal gates between
code blocks, determine the movements of whole code blocks so that the right
blocks meet in the entanglement zone.  Each [[8,3,2]] block occupies a
2-row x 4-column patch of traps and moves as one unit, so the compilation
runs on a *logical architecture* whose "traps" are block slots
(:func:`repro.arch.presets.logical_block_architecture`) and whose "qubits"
are block indices.

Timings are converted back to the physical level: every logical Rydberg
stage is one transversal-CNOT round (8 physical CZ/CNOT executions applied
in parallel), and in-block gate layers add physical single-qubit gate time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..arch.presets import logical_block_architecture
from ..arch.spec import Architecture
from ..core.compiler import CompilationResult, ZACCompiler
from ..core.config import ZACConfig
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from .code832 import LOGICAL_QUBITS_PER_BLOCK, PHYSICAL_QUBITS_PER_BLOCK
from .hiqp import HIQPCircuit, hiqp_block_interaction_circuit, hiqp_circuit


@dataclass
class LogicalCompilationResult:
    """Result of compiling a block-level transversal-gate circuit."""

    num_blocks: int
    num_logical_qubits: int
    num_physical_qubits: int
    num_transversal_cnots: int
    num_rydberg_stages: int
    block_movements: int
    duration_us: float
    compile_time_s: float
    zac_result: CompilationResult

    def summary(self) -> dict[str, float]:
        return {
            "num_blocks": self.num_blocks,
            "num_logical_qubits": self.num_logical_qubits,
            "num_physical_qubits": self.num_physical_qubits,
            "num_transversal_cnots": self.num_transversal_cnots,
            "num_rydberg_stages": self.num_rydberg_stages,
            "block_movements": self.block_movements,
            "duration_ms": self.duration_us / 1000.0,
            "compile_time_s": self.compile_time_s,
        }


class LogicalBlockCompiler:
    """Compile block-level transversal-gate circuits with ZAC."""

    def __init__(
        self,
        architecture: Architecture | None = None,
        config: ZACConfig | None = None,
        params: NeutralAtomParams = NEUTRAL_ATOM,
    ) -> None:
        self.config = config or ZACConfig(use_sa_initial_placement=False)
        self.params = params
        self._architecture = architecture

    def architecture_for(self, num_blocks: int) -> Architecture:
        """The logical architecture used for ``num_blocks`` code blocks."""
        if self._architecture is not None:
            return self._architecture
        return logical_block_architecture(num_blocks)

    def compile_hiqp(self, num_blocks: int = 128) -> LogicalCompilationResult:
        """Compile the hIQP circuit on ``num_blocks`` [[8,3,2]] blocks."""
        start = time.perf_counter()
        model = hiqp_circuit(num_blocks)
        block_circuit = hiqp_block_interaction_circuit(num_blocks)
        architecture = self.architecture_for(num_blocks)

        zac = ZACCompiler(architecture, self.config, self.params, lower_jobs=False)
        result = zac.compile(block_circuit)

        duration = result.metrics.duration_us + self._in_block_time_us(model)
        return LogicalCompilationResult(
            num_blocks=num_blocks,
            num_logical_qubits=LOGICAL_QUBITS_PER_BLOCK * num_blocks,
            num_physical_qubits=PHYSICAL_QUBITS_PER_BLOCK * num_blocks,
            num_transversal_cnots=model.num_transversal_cnots,
            num_rydberg_stages=result.metrics.num_rydberg_stages,
            block_movements=result.metrics.num_movements,
            duration_us=duration,
            compile_time_s=time.perf_counter() - start,
            zac_result=result,
        )

    def _in_block_time_us(self, model: HIQPCircuit) -> float:
        """Physical time contributed by the in-block (T-dagger) layers.

        Within one block the 8 T-dagger gates are applied by the Raman laser;
        conservatively (matching the paper's 1Q model) they execute
        sequentially within a block, and all blocks run in parallel.
        """
        per_layer = PHYSICAL_QUBITS_PER_BLOCK * self.params.t_1q_us
        return len(model.in_block_layers) * per_layer
