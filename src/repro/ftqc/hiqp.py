"""Hypercube IQP (hIQP) logical circuits (paper Section VIII, Fig. 16b).

The hIQP workload is a logical circuit on ``2**k`` [[8,3,2]] code blocks:
layers of in-block gates (transversal T-dagger, realising logical CCZ/CZ/Z)
interleaved with layers of inter-block transversal CNOTs whose stride doubles
every layer, producing hypercube connectivity between the blocks.  All
logical qubits start in ``|+>`` and are measured in the X basis.

For compilation purposes the circuit is represented at the *block* level:
each block is one movable unit, an in-block layer touches every block
individually, and a CNOT layer is a perfect matching between blocks at a
given stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import QuantumCircuit
from .code832 import CodeBlock, make_blocks


@dataclass(frozen=True)
class BlockGate:
    """A logical-level operation on one or two code blocks."""

    name: str
    blocks: tuple[int, ...]

    @property
    def is_two_block(self) -> bool:
        return len(self.blocks) == 2


@dataclass
class HIQPCircuit:
    """A block-level hIQP circuit.

    Attributes:
        num_blocks: Number of [[8,3,2]] code blocks (must be a power of two).
        layers: Alternating in-block and CNOT layers, each a list of
            :class:`BlockGate`.
    """

    num_blocks: int
    layers: list[list[BlockGate]] = field(default_factory=list)

    @property
    def num_logical_qubits(self) -> int:
        return 3 * self.num_blocks

    @property
    def num_physical_qubits(self) -> int:
        return 8 * self.num_blocks

    @property
    def cnot_layers(self) -> list[list[BlockGate]]:
        return [layer for layer in self.layers if layer and layer[0].is_two_block]

    @property
    def in_block_layers(self) -> list[list[BlockGate]]:
        return [layer for layer in self.layers if layer and not layer[0].is_two_block]

    @property
    def num_transversal_cnots(self) -> int:
        """Inter-block transversal CNOT count (the paper's 448 for 128 blocks)."""
        return sum(len(layer) for layer in self.cnot_layers)

    @property
    def num_block_gates(self) -> int:
        """Total block-level gate count (in-block gates + transversal CNOTs)."""
        return sum(len(layer) for layer in self.layers)

    def block_pairs(self) -> list[list[tuple[int, int]]]:
        """The inter-block CNOT layers as lists of block-index pairs."""
        return [
            [(g.blocks[0], g.blocks[1]) for g in layer] for layer in self.cnot_layers
        ]


def hiqp_circuit(num_blocks: int = 128) -> HIQPCircuit:
    """Build the hIQP circuit on ``num_blocks`` code blocks.

    The construction follows Fig. 16b: ``log2(num_blocks) + 1`` in-block
    layers interleaved with ``log2(num_blocks)`` CNOT layers whose stride
    doubles each time (1, 2, 4, ...).  For 128 blocks this yields 8 in-block
    layers and 7 CNOT layers of 64 transversal CNOTs each -- the paper's 448
    transversal gates.
    """
    if num_blocks < 2 or num_blocks & (num_blocks - 1):
        raise ValueError("the hIQP construction needs a power-of-two block count")

    circuit = HIQPCircuit(num_blocks=num_blocks)
    num_cnot_layers = num_blocks.bit_length() - 1  # log2(num_blocks)

    def in_block_layer() -> list[BlockGate]:
        return [BlockGate("in_block", (b,)) for b in range(num_blocks)]

    circuit.layers.append(in_block_layer())
    stride = 1
    for _ in range(num_cnot_layers):
        layer = []
        for start in range(0, num_blocks, 2 * stride):
            for offset in range(stride):
                a = start + offset
                b = start + offset + stride
                layer.append(BlockGate("cnot", (a, b)))
        circuit.layers.append(layer)
        circuit.layers.append(in_block_layer())
        stride *= 2
    return circuit


def hiqp_block_interaction_circuit(num_blocks: int = 128) -> QuantumCircuit:
    """Block-level two-'qubit' circuit for the CNOT layers only.

    Each code block is treated as a single movable qubit; in-block layers do
    not induce movement (the whole block is already together) so only the
    inter-block CNOT layers appear, as CZ-equivalent interactions.  This is
    the input handed to ZAC to plan the logical block movements.
    """
    circuit_model = hiqp_circuit(num_blocks)
    out = QuantumCircuit(num_blocks, name=f"hiqp_{num_blocks}blocks")
    for layer in circuit_model.block_pairs():
        for a, b in layer:
            out.cz(a, b)
    return out


def hiqp_physical_circuit(num_blocks: int = 8) -> QuantumCircuit:
    """Fully expanded physical circuit (for small block counts / testing).

    Expands in-block layers to physical T-dagger gates and CNOT layers to
    transversal physical CNOTs.  Intended for validation on small instances;
    the 128-block instance has 1024 physical qubits and is compiled at the
    block level instead.
    """
    circuit_model = hiqp_circuit(num_blocks)
    blocks: list[CodeBlock] = make_blocks(num_blocks)
    out = QuantumCircuit(8 * num_blocks, name=f"hiqp_physical_{num_blocks}blocks")
    for qubit in range(out.num_qubits):
        out.h(qubit)  # prepare |+> on every physical qubit
    for layer in circuit_model.layers:
        for gate in layer:
            if gate.is_two_block:
                control, target = blocks[gate.blocks[0]], blocks[gate.blocks[1]]
                for c, t in zip(control.physical_qubits, target.physical_qubits):
                    out.cx(c, t)
            else:
                for qubit in blocks[gate.blocks[0]].physical_qubits:
                    out.tdg(qubit)
    return out
