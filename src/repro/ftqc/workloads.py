"""Seeded FTQC logical-scale workload generators (ROADMAP item 5a).

The paper's FTQC evaluation is one fixed circuit (the 128-block hIQP
instance).  This module turns the ``ftqc`` layer into a *workload family*:
seeded logical circuits over [[8,3,2]] code blocks -- tens to hundreds of
logical qubits -- lowered to block-level interaction circuits that ZAC /
NALAC compile on the logical architecture, where every "trap" is a 2x4
block slot and every "qubit" is a code block.

Two generators join the :mod:`repro.circuits.random` registry (and with it
the fuzz harness, repro bundles, and the serve daemon's ``descriptor``
circuit spec):

``ftqc_hiqp``
    A seeded hIQP-style circuit: ``depth`` layers of inter-block
    transversal CNOTs whose stride doubles each layer (truncated-hypercube
    connectivity, so any block count >= 2 works, not just powers of two),
    interleaved with in-block transversal T-dagger layers, under a random
    relabelling of the blocks.  ``num_qubits`` counts *blocks*.
``ftqc_transversal``
    A random transversal-gate program: each layer is a random perfect
    matching of blocks (transversal CNOTs), optionally preceded by an
    in-block gate layer on a random block subset.

Both consume randomness layer by layer, so for a fixed seed the depth-``d``
circuit is a gate-list prefix of the depth-``d'`` circuit for ``d' > d``
(the property the fuzz harness's logical-depth-monotonicity ladders rely
on).  The logical model behind a workload is reproducible from its
descriptor via :func:`ftqc_model`; :func:`interaction_circuit` is the
deterministic lowering from model to compiled circuit, and
:func:`expand_physical` spells the model out at the physical level (8
qubits per block) for small-instance validation.

The logical<->physical correspondence the fuzz harness pins
(:mod:`repro.experiments.fuzz`, profile ``ftqc``):

* gate preservation -- the compiled program executes exactly one 2Q gate
  per transversal block CNOT;
* stage bounds -- the Rydberg stage count is at least the block circuit's
  2Q dependency depth and at most its 2Q gate count;
* lowering determinism -- descriptor -> model -> circuit is a pure
  function of ``(generator, seed, params)``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.random import GeneratorError, _random_matching, register_generator
from .code832 import make_blocks
from .hiqp import BlockGate, HIQPCircuit

#: Model builders behind the registered generators, keyed by generator name.
MODEL_BUILDERS: dict[str, Any] = {}


def ftqc_generator_names() -> list[str]:
    """Names of the registered FTQC logical workload generators."""
    return list(MODEL_BUILDERS)


def is_ftqc_generator(name: str) -> bool:
    """True when ``name`` is a logical (block-level) workload generator."""
    return name in MODEL_BUILDERS


def ftqc_model(generator: str, seed: int = 0, **params: Any) -> HIQPCircuit:
    """Rebuild the logical block-level model behind an FTQC descriptor.

    The same ``(generator, seed, params)`` triple that
    :func:`repro.circuits.random.generate` turns into the compiled
    interaction circuit; the model regenerates deterministically, so
    invariant checks can compare a compiled result against the logical
    circuit it came from.
    """
    if generator not in MODEL_BUILDERS:
        raise GeneratorError(
            f"{generator!r} is not an FTQC generator; known: {', '.join(MODEL_BUILDERS)}"
        )
    rng = np.random.default_rng(seed)
    return MODEL_BUILDERS[generator](rng, **params)


def interaction_circuit(model: HIQPCircuit, name: str = "ftqc_blocks") -> QuantumCircuit:
    """Lower a logical model to its block-interaction circuit.

    One circuit qubit per code block; each inter-block transversal CNOT
    becomes one CZ-equivalent interaction (the form ZAC plans block
    movements for).  In-block layers induce no movement -- the block is
    already together -- so they do not appear.
    """
    out = QuantumCircuit(model.num_blocks, name)
    for layer in model.block_pairs():
        for a, b in layer:
            out.cz(a, b)
    return out


def expand_physical(model: HIQPCircuit, name: str = "ftqc_physical") -> QuantumCircuit:
    """Expand a logical model to the full physical circuit (8 qubits/block).

    In-block gates become transversal physical T-daggers, block CNOTs
    become 8 physical CNOTs between corresponding qubits, and every
    physical qubit is prepared in ``|+>``.  Exponential in nothing, but
    meant for small-instance validation -- the 128-block instance is
    compiled at the block level instead.
    """
    blocks = make_blocks(model.num_blocks)
    out = QuantumCircuit(8 * model.num_blocks, name)
    for qubit in range(out.num_qubits):
        out.h(qubit)
    for layer in model.layers:
        for gate in layer:
            if gate.is_two_block:
                control, target = blocks[gate.blocks[0]], blocks[gate.blocks[1]]
                for c, t in zip(control.physical_qubits, target.physical_qubits):
                    out.cx(c, t)
            else:
                for qubit in blocks[gate.blocks[0]].physical_qubits:
                    out.tdg(qubit)
    return out


def logical_summary(model: HIQPCircuit) -> dict[str, int]:
    """Size card of a logical model (what fuzz bundles record as context)."""
    return {
        "num_blocks": model.num_blocks,
        "num_logical_qubits": model.num_logical_qubits,
        "num_physical_qubits": model.num_physical_qubits,
        "num_transversal_cnots": model.num_transversal_cnots,
        "num_cnot_layers": len(model.cnot_layers),
        "num_in_block_layers": len(model.in_block_layers),
        "num_block_gates": model.num_block_gates,
    }


# ---------------------------------------------------------------------------
# Model builders
# ---------------------------------------------------------------------------


def _require_blocks(num_qubits: int, depth: int) -> None:
    if num_qubits < 2:
        raise GeneratorError("FTQC workloads need at least 2 code blocks")
    if depth < 1:
        raise GeneratorError("FTQC workloads need depth >= 1")


def _stride_pairs(num_blocks: int, stride: int) -> list[tuple[int, int]]:
    """Hypercube-edge matching at ``stride``, truncated to ``num_blocks``.

    For power-of-two block counts this is exactly the hIQP construction's
    layer (pair ``start+offset`` with ``start+offset+stride``); for other
    counts the pairs whose partner falls past the register are dropped, so
    the layer stays a matching.
    """
    pairs = []
    for start in range(0, num_blocks, 2 * stride):
        for offset in range(stride):
            a = start + offset
            b = start + offset + stride
            if b < num_blocks:
                pairs.append((a, b))
    return pairs


def _in_block_layer(blocks: list[int]) -> list[BlockGate]:
    return [BlockGate("in_block", (b,)) for b in blocks]


def _hiqp_model(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
) -> HIQPCircuit:
    """Seeded hIQP: stride-doubling CNOT layers under a random relabelling.

    ``depth`` counts CNOT layers; strides cycle (1, 2, 4, ... back to 1)
    so any depth works, and the relabelling is drawn *before* the layers,
    preserving the depth-prefix property.  ``num_qubits`` is the block
    count (any >= 2; the hypercube matchings are truncated).
    """
    _require_blocks(num_qubits, depth)
    num_blocks = num_qubits
    relabel = [int(b) for b in rng.permutation(num_blocks)]
    num_strides = max(1, (num_blocks - 1).bit_length())

    model = HIQPCircuit(num_blocks=num_blocks)
    model.layers.append(_in_block_layer(list(range(num_blocks))))
    for index in range(depth):
        stride = 1 << (index % num_strides)
        layer = [
            BlockGate("cnot", (relabel[a], relabel[b]))
            for a, b in _stride_pairs(num_blocks, stride)
        ]
        model.layers.append(layer)
        model.layers.append(_in_block_layer(list(range(num_blocks))))
    return model


def _transversal_model(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    pair_prob: float = 0.9,
    in_block_prob: float = 0.5,
) -> HIQPCircuit:
    """Random transversal-gate program: matchings + random in-block layers.

    Each of the ``depth`` layers draws (in this order, so prefixes are
    stable): whether an in-block layer precedes it, the random block subset
    for that layer, and a random matching of blocks kept per-pair with
    ``pair_prob``.
    """
    _require_blocks(num_qubits, depth)
    num_blocks = num_qubits
    model = HIQPCircuit(num_blocks=num_blocks)
    for _ in range(depth):
        wants_in_block = rng.random() < in_block_prob
        subset = [int(b) for b in np.nonzero(rng.random(num_blocks) < 0.5)[0]]
        if wants_in_block and subset:
            model.layers.append(_in_block_layer(subset))
        pairs = _random_matching(rng, num_blocks, pair_prob)
        if pairs:
            model.layers.append([BlockGate("cnot", (a, b)) for a, b in pairs])
    if model.num_transversal_cnots == 0:  # vanishingly unlikely; keep non-empty
        model.layers.append([BlockGate("cnot", (0, 1))])
    return model


MODEL_BUILDERS["ftqc_hiqp"] = _hiqp_model
MODEL_BUILDERS["ftqc_transversal"] = _transversal_model


def _make_generator(name: str):
    def generator(rng: np.random.Generator, **params: Any) -> QuantumCircuit:
        return interaction_circuit(MODEL_BUILDERS[name](rng, **params), name=name)

    generator.__name__ = name
    return generator


for _name in MODEL_BUILDERS:
    register_generator(_name, _make_generator(_name))


__all__ = [
    "MODEL_BUILDERS",
    "expand_physical",
    "ftqc_generator_names",
    "ftqc_model",
    "interaction_circuit",
    "is_ftqc_generator",
    "logical_summary",
]
