"""The [[8,3,2]] colour code block (paper Section VIII, Fig. 16a).

The [[8,3,2]] code encodes 3 logical qubits into 8 physical qubits with
distance 2 (detecting any single-qubit error).  On a reconfigurable atom
array the 8 physical qubits of a block are laid out as a 2-row by 4-column
patch and always move together.

Two transversal logical operations matter for the hIQP workload:

* the **in-block gate** -- physical ``T``-dagger on every qubit of a block
  realises a combination of logical CCZ, CZ and Z gates;
* the **inter-block CNOT** -- physical CNOTs between corresponding qubits of
  two blocks realise transversal logical CNOTs on corresponding logical
  qubits.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of physical qubits per code block.
PHYSICAL_QUBITS_PER_BLOCK = 8
#: Number of logical qubits encoded per block.
LOGICAL_QUBITS_PER_BLOCK = 3
#: Code distance.
DISTANCE = 2
#: Physical layout of one block on the atom array (rows x columns of traps).
BLOCK_ROWS = 2
BLOCK_COLS = 4

#: Stabiliser generators of the [[8,3,2]] code (the cube code): X on all 8
#: qubits, Z on the 4 qubits of each cube face.  Qubits are indexed as the
#: vertices of a cube, numbered 0-7 with bit i of the index giving the
#: coordinate along axis i.
X_STABILIZER: tuple[int, ...] = tuple(range(8))
Z_STABILIZERS: tuple[tuple[int, ...], ...] = (
    (0, 1, 2, 3),  # face z = 0
    (4, 5, 6, 7),  # face z = 1
    (0, 1, 4, 5),  # face y = 0
    (0, 2, 4, 6),  # face x = 0
)


@dataclass(frozen=True)
class CodeBlock:
    """One [[8,3,2]] code block and the physical qubits it owns.

    Attributes:
        block_id: Index of the block within the computation.
        physical_qubits: The 8 physical qubit indices of this block, ordered
            by cube vertex (row-major within the 2x4 physical patch).
    """

    block_id: int
    physical_qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.physical_qubits) != PHYSICAL_QUBITS_PER_BLOCK:
            raise ValueError("an [[8,3,2]] block owns exactly 8 physical qubits")

    @property
    def logical_qubits(self) -> tuple[int, ...]:
        """Global indices of the 3 logical qubits this block encodes."""
        base = self.block_id * LOGICAL_QUBITS_PER_BLOCK
        return (base, base + 1, base + 2)

    def physical_layout(self) -> dict[int, tuple[int, int]]:
        """Map physical qubit -> (row, col) within the 2x4 block patch."""
        layout = {}
        for index, qubit in enumerate(self.physical_qubits):
            layout[qubit] = (index // BLOCK_COLS, index % BLOCK_COLS)
        return layout


def make_blocks(num_blocks: int) -> list[CodeBlock]:
    """Allocate ``num_blocks`` code blocks over a contiguous physical register."""
    if num_blocks <= 0:
        raise ValueError("need at least one code block")
    return [
        CodeBlock(
            block_id=b,
            physical_qubits=tuple(
                b * PHYSICAL_QUBITS_PER_BLOCK + i for i in range(PHYSICAL_QUBITS_PER_BLOCK)
            ),
        )
        for b in range(num_blocks)
    ]


def stabilizer_weight_parity_ok() -> bool:
    """Sanity property: all Z stabilisers have even weight (CSS, distance 2)."""
    return all(len(s) % 2 == 0 for s in Z_STABILIZERS)


def in_block_gate_physical_ops(block: CodeBlock) -> list[tuple[str, int]]:
    """Physical operations of the in-block logical gate: T-dagger on every qubit."""
    return [("tdg", q) for q in block.physical_qubits]


def transversal_cnot_physical_ops(
    control: CodeBlock, target: CodeBlock
) -> list[tuple[str, int, int]]:
    """Physical operations of an inter-block transversal CNOT.

    CNOTs act between corresponding physical qubits of the two blocks, so no
    physical gate couples qubits within one block and errors cannot spread
    inside a block (the transversality property).
    """
    return [
        ("cx", c, t)
        for c, t in zip(control.physical_qubits, target.physical_qubits)
    ]
