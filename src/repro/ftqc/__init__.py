"""Fault-tolerant quantum computing support: [[8,3,2]] blocks and hIQP compilation."""

from .code832 import (
    BLOCK_COLS,
    BLOCK_ROWS,
    DISTANCE,
    LOGICAL_QUBITS_PER_BLOCK,
    PHYSICAL_QUBITS_PER_BLOCK,
    CodeBlock,
    in_block_gate_physical_ops,
    make_blocks,
    transversal_cnot_physical_ops,
)
from .hiqp import (
    BlockGate,
    HIQPCircuit,
    hiqp_block_interaction_circuit,
    hiqp_circuit,
    hiqp_physical_circuit,
)
from .logical import LogicalBlockCompiler, LogicalCompilationResult
from .workloads import (
    ftqc_generator_names,
    ftqc_model,
    interaction_circuit,
    is_ftqc_generator,
    logical_summary,
)
from .workloads import expand_physical as expand_physical_circuit

__all__ = [
    "BLOCK_COLS",
    "BLOCK_ROWS",
    "BlockGate",
    "CodeBlock",
    "DISTANCE",
    "HIQPCircuit",
    "LOGICAL_QUBITS_PER_BLOCK",
    "LogicalBlockCompiler",
    "LogicalCompilationResult",
    "PHYSICAL_QUBITS_PER_BLOCK",
    "expand_physical_circuit",
    "ftqc_generator_names",
    "ftqc_model",
    "hiqp_block_interaction_circuit",
    "hiqp_circuit",
    "hiqp_physical_circuit",
    "in_block_gate_physical_ops",
    "interaction_circuit",
    "is_ftqc_generator",
    "logical_summary",
    "make_blocks",
    "transversal_cnot_physical_ops",
]
