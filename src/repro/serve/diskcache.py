"""Disk-backed compile cache: sharded, content-addressed, LRU byte budget.

The second cache level behind :class:`repro.api.CompileService`'s in-memory
:class:`~repro.api.parallel.CompileCache`.  Each entry is one shard file
under a two-hex-character fan-out directory (256 buckets, see
:func:`repro.core.result.result_shard_name`), written with the JSONL
serialization from :mod:`repro.core.result`
(:func:`~repro.core.result.save_results_stream` /
:func:`~repro.core.result.iter_results`), so a shard is also a perfectly
ordinary sweep-result file -- ``merge_results`` over ``iter_results`` of all
shards reconstructs the whole cache as one result list.

Semantics:

* **Content-addressed**: the shard name is the SHA-256 of the canonical
  ``repr`` of the compile-service cache key -- circuit content, backend,
  architecture fingerprint, and option ``repr``.  Equal requests hit the
  same shard across daemon restarts and across machines.
* **Slim-only**: :class:`~repro.core.result.CompileResult` serialization is
  metrics-only, so disk entries never carry programs.  The service layer
  therefore only serves disk hits to ``keep_programs=False`` requests and
  recompiles unvalidated entries instead of faking the ``validated`` flag
  (which IS persisted, in the shard header).
* **LRU byte budget**: the cache tracks total bytes and evicts
  least-recently-*used* shards (reads refresh recency) until under budget.
  A restarted daemon rebuilds the recency order from file mtimes, which
  ``get`` keeps bumped via ``os.utime``.
* **Corruption-tolerant**: every shard header carries a SHA-256 of the
  payload bytes, verified on read, so even *silent* corruption (valid JSON,
  wrong values) is caught -- the cache never serves corrupted bytes.  A
  truncated, hand-edited, or checksum-failing shard is skipped with a
  :class:`RuntimeWarning` (and unlinked) instead of taking the daemon down.
  Transient read errors (``OSError``) are served as misses *without*
  unlinking -- the shard may be fine once the IO blip passes.  ``.tmp``
  remnants of writes torn by a crash are quarantined (moved under
  ``quarantine/``) by the next startup scan.
* **TTL (optional)**: with ``ttl_seconds`` set, shards idle for longer than
  the TTL are treated as stale: the startup scan sweeps them, and ``get``
  evicts a stale shard lazily instead of serving it (counted separately
  from capacity evictions).  Staleness is measured from the file mtime,
  which every hit refreshes, so the TTL bounds time since last *use* --
  an entry in active rotation never expires.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from collections import OrderedDict
from pathlib import Path

from ..core.result import (
    CompileResult,
    iter_results,
    read_shard_header,
    result_shard_name,
)
from ..resilience.faults import fault_point

#: Default byte budget (256 MiB) -- generous for metrics-only entries, which
#: run a few KiB each.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Envelope version written into every shard header (bump on layout changes).
#: Schema 2 added the mandatory ``payload_sha256`` checksum; schema-1 shards
#: are treated as corrupted (dropped with a warning) -- acceptable for a cache.
SHARD_SCHEMA = 2


def cache_key_digest(key: tuple) -> str:
    """Stable content digest of a compile-service cache key.

    The key tuple is built from value types with deterministic ``repr``
    (strings, numbers, tuples, frozen gate dataclasses), so ``repr`` is a
    canonical serialization and its SHA-256 is stable across processes and
    restarts (no reliance on ``hash()``, which is salted).
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class DiskCompileCache:
    """Persistent, sharded, content-addressed store of slim compile results."""

    def __init__(
        self,
        root: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        ttl_seconds: float | None = None,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired = 0
        self.io_errors = 0
        self.torn_writes = 0
        self.quarantined = 0
        self.evictions_by_backend: dict[str, int] = {}
        #: digest -> size in bytes, in least-recently-used-first order.
        self._index: OrderedDict[str, int] = OrderedDict()
        self._total_bytes = 0
        self._scan()

    # -- startup scan ---------------------------------------------------------

    def _scan(self) -> None:
        """Rebuild the LRU index from the on-disk shards (mtime order).

        Shards already past the TTL are swept (unlinked and counted as
        expired) instead of indexed, so a restarted daemon starts from a
        fresh cache even if it was down for longer than the TTL.
        """
        self._quarantine_remnants()
        now = time.time()
        found: list[tuple[float, str, int]] = []
        for path in self.root.glob("??/*.jsonl"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced removal
                continue
            if self.ttl_seconds is not None and now - stat.st_mtime > self.ttl_seconds:
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - permissions
                    pass
                self.expired += 1
                continue
            found.append((stat.st_mtime, path.stem, stat.st_size))
        found.sort()
        for _, digest, size in found:
            self._index[digest] = size
            self._total_bytes += size

    def _quarantine_remnants(self) -> None:
        """Move ``.tmp`` remnants of torn writes into ``quarantine/``.

        A crash between the tmp-file write and ``os.replace`` leaves a
        ``<digest>.tmp`` file next to the shards.  Instead of warning about
        it forever (or worse, mistaking it for a shard), the next startup
        sweep moves it aside, preserving the bytes for post-mortem while
        keeping the cache directory clean.
        """
        remnants = sorted(self.root.glob("??/*.tmp"))
        if not remnants:
            return
        quarantine = self.root / "quarantine"
        try:
            quarantine.mkdir(exist_ok=True)
        except OSError:  # pragma: no cover - read-only cache dir
            return
        for remnant in remnants:
            target = quarantine / f"{remnant.parent.name}_{remnant.name}"
            try:
                os.replace(remnant, target)
            except OSError:  # pragma: no cover - raced removal
                continue
            self.quarantined += 1

    def _is_stale(self, path: Path) -> bool:
        if self.ttl_seconds is None:
            return False
        try:
            return time.time() - path.stat().st_mtime > self.ttl_seconds
        except OSError:
            return True

    # -- paths ----------------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / result_shard_name(digest)

    # -- get / put ------------------------------------------------------------

    def get(self, key: tuple) -> CompileResult | None:
        """Load the entry for ``key`` (``None`` on miss or corrupted shard).

        The returned result is freshly deserialized (callers may mutate it)
        with ``validated`` restored from the shard header.  A hit refreshes
        the entry's LRU position and file mtime.
        """
        digest = cache_key_digest(key)
        path = self.path_for(digest)
        if digest not in self._index and not path.exists():
            self.misses += 1
            return None
        if self._is_stale(path):
            self._drop(digest, unlink=True)
            self.expired += 1
            self.misses += 1
            return None
        try:
            fault_point("disk.get", label=digest)
            raw = path.read_bytes()
        except FileNotFoundError:
            self._drop(digest, unlink=False)
            self.misses += 1
            return None
        except OSError:
            # Transient IO error: serve a miss but keep the shard -- the
            # bytes may be perfectly fine once the blip passes.
            self.io_errors += 1
            self.misses += 1
            return None
        try:
            header, result = self._parse_shard(raw)
        except (ValueError, KeyError, TypeError) as exc:
            # json.JSONDecodeError is a ValueError; truncated shards raise
            # ValueError (checksum/format) or KeyError (missing fields).
            warnings.warn(
                f"skipping corrupted compile-cache shard {path}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            self._drop(digest, unlink=True)
            self.misses += 1
            return None
        result.validated = bool(header.get("validated", False))
        self._touch(digest, path)
        self.hits += 1
        return result

    @staticmethod
    def _parse_shard(raw: bytes) -> tuple[dict, CompileResult]:
        """Parse and checksum-verify a shard; raises ``ValueError`` on damage."""
        text = raw.decode("utf-8")
        newline = text.find("\n")
        if newline < 0:
            raise ValueError("shard has no header line")
        wrapper = json.loads(text[:newline])
        header = wrapper.get("shard_header") if isinstance(wrapper, dict) else None
        if not isinstance(header, dict):
            raise ValueError("shard header missing")
        if header.get("schema") != SHARD_SCHEMA:
            raise ValueError(f"unsupported shard schema {header.get('schema')!r}")
        payload = text[newline + 1 :]
        expected = header.get("payload_sha256")
        if not isinstance(expected, str):
            raise ValueError("shard header missing payload checksum")
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if actual != expected:
            raise ValueError(f"shard payload checksum mismatch ({actual[:12]} != {expected[:12]})")
        lines = [line for line in payload.splitlines() if line.strip()]
        if not lines:
            raise ValueError("shard payload empty")
        return header, CompileResult.from_dict(json.loads(lines[0]))

    def put(self, key: tuple, result: CompileResult, backend: str = "") -> None:
        """Write (or refresh) the entry for ``key``, then enforce the budget.

        The shard is written to a temp file and atomically renamed so a
        killed daemon never leaves a half-written shard under the final name.
        """
        digest = cache_key_digest(key)
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fault_point("disk.put", label=digest)
        # Same JSONL layout as save_results_stream, written by hand so the
        # header can carry a checksum of the exact payload bytes.
        payload = json.dumps(result.to_dict(), sort_keys=True) + "\n"
        header = {
            "schema": SHARD_SCHEMA,
            "key_digest": digest,
            "backend": backend or result.compiler_name,
            "validated": bool(result.validated),
            "payload_sha256": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({"shard_header": header}, sort_keys=True) + "\n" + payload)
        spec = fault_point("disk.replace", label=digest)
        if spec is not None and spec.kind == "disk-torn-write":
            # Simulated crash between the tmp write and the rename: the
            # remnant stays behind for the next startup sweep to quarantine.
            self.torn_writes += 1
            return
        os.replace(tmp, path)
        if spec is not None and spec.kind == "disk-corrupt":
            self._scribble(path)
        self._drop(digest, unlink=False)
        size = path.stat().st_size
        self._index[digest] = size
        self._total_bytes += size
        self._evict()

    @staticmethod
    def _scribble(path: Path) -> None:
        """Injected silent corruption: flip payload bytes in a committed shard."""
        try:
            size = path.stat().st_size
            with open(path, "r+b") as handle:
                handle.seek(max(0, size - 16))
                handle.write(b"\x00CORRUPTED\x00")
        except OSError:  # pragma: no cover - injection best-effort
            pass

    # -- LRU bookkeeping -------------------------------------------------------

    def _touch(self, digest: str, path: Path) -> None:
        if digest in self._index:
            self._index.move_to_end(digest)
        else:  # pre-existing shard not seen by the startup scan
            try:
                self._index[digest] = path.stat().st_size
                self._total_bytes += self._index[digest]
            except OSError:  # pragma: no cover - raced removal
                return
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - read-only cache dir
            pass

    def _drop(self, digest: str, unlink: bool) -> None:
        size = self._index.pop(digest, None)
        if size is not None:
            self._total_bytes -= size
        if unlink:
            try:
                self.path_for(digest).unlink(missing_ok=True)
            except OSError:  # pragma: no cover - permissions
                pass

    def _evict(self) -> None:
        """Drop least-recently-used shards until back under the byte budget."""
        while self._total_bytes > self.max_bytes and len(self._index) > 1:
            digest, size = self._index.popitem(last=False)
            self._total_bytes -= size
            backend = "unknown"
            path = self.path_for(digest)
            try:
                header = read_shard_header(path)
                if header and header.get("backend"):
                    backend = str(header["backend"])
            except (OSError, ValueError):
                pass
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - permissions
                pass
            self.evictions += 1
            self.evictions_by_backend[backend] = (
                self.evictions_by_backend.get(backend, 0) + 1
            )

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        """Remove every shard and reset the counters."""
        for digest in list(self._index):
            self._drop(digest, unlink=True)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired = 0
        self.io_errors = 0
        self.torn_writes = 0
        self.quarantined = 0
        self.evictions_by_backend = {}

    def __len__(self) -> int:
        return len(self._index)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def stats(self) -> dict:
        return {
            "entries": len(self._index),
            "bytes": self._total_bytes,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expired": self.expired,
            "io_errors": self.io_errors,
            "torn_writes": self.torn_writes,
            "quarantined": self.quarantined,
            "evictions_by_backend": dict(self.evictions_by_backend),
        }

    def digests(self) -> list[str]:
        """Shard digests in least-recently-used-first order (for tests)."""
        return list(self._index)


def load_all_results(cache: DiskCompileCache) -> list[CompileResult]:
    """Every cached result as one merged sweep-result list.

    Demonstrates the serialization contract: shards are ordinary
    :mod:`repro.core.result` files, so the whole cache round-trips through
    the standard streaming loader.
    """
    results: list[CompileResult] = []
    for digest in cache.digests():
        try:
            results.extend(iter_results(str(cache.path_for(digest))))
        except (OSError, ValueError, KeyError) as exc:
            warnings.warn(
                f"skipping corrupted compile-cache shard {digest}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return results


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DiskCompileCache",
    "cache_key_digest",
    "load_all_results",
]
