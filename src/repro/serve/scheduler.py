"""Priority scheduling with batch affinity and in-flight request coalescing.

The daemon's admission layer: every compile-shaped request becomes a
:class:`WorkItem` on a heap ordered by ``(-priority, batch, arrival)`` and is
executed by a small number of worker coroutines (one by default -- the
compile itself is CPU-bound and runs in a thread via ``asyncio.to_thread``,
which keeps the event loop free to accept and coalesce more requests).

* **Coalescing**: items are keyed by the compile-cache content digest.  A
  request whose key is already queued or running does not enqueue new work;
  it awaits the in-flight item's future (``repro serve`` then reports it as
  ``"coalesced"``).  N clients asking for the same circuit pay one compile.
* **Priority**: higher ``priority`` runs first (ties FIFO by batch arrival).
  A coalesced duplicate carrying a higher priority *boosts* the queued
  original: the item is re-pushed under the better key and the stale heap
  entry is lazily discarded when popped.
* **Batch affinity**: all items submitted through one :meth:`submit_batch`
  call share a batch sequence number, so sweep shards stay adjacent in the
  queue instead of interleaving with same-priority traffic that arrived
  between them (warm per-process prefix/staging caches stay warm).
"""

from __future__ import annotations

import asyncio
import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any


@dataclass
class WorkItem:
    """One schedulable unit of work (shared by its coalesced duplicates)."""

    key: str
    thunk: Callable[[], Any]
    future: asyncio.Future
    priority: int
    batch: int
    arrival: int
    started: bool = False
    #: Requests riding on this item beyond the first.
    coalesced: int = 0

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, self.batch, self.arrival)


@dataclass(order=True)
class _HeapEntry:
    order: tuple[int, int, int]
    item: WorkItem = field(compare=False)


class ServeScheduler:
    """Coalescing priority queue executing thunks on worker coroutines."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)
        self._heap: list[_HeapEntry] = []
        self._inflight: dict[str, WorkItem] = {}
        self._wakeup = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        self._batch_seq = 0
        self._arrival_seq = 0
        # Lifetime counters (surfaced by the daemon's `stats` method).
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.max_queue_depth = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker coroutines (idempotent)."""
        while len(self._tasks) < self.workers:
            self._tasks.append(asyncio.get_running_loop().create_task(self._worker()))

    async def stop(self) -> None:
        """Finish the queued work, then stop the workers."""
        self._stopping = True
        self._wakeup.set()
        for task in self._tasks:
            await task
        self._tasks.clear()

    # -- submission -----------------------------------------------------------

    def next_batch(self) -> int:
        """Reserve a batch sequence number (affinity group id)."""
        self._batch_seq += 1
        return self._batch_seq

    async def submit(
        self,
        key: str,
        thunk: Callable[[], Any],
        *,
        priority: int = 0,
        batch: int | None = None,
    ) -> tuple[Any, bool]:
        """Schedule ``thunk`` under ``key`` and await its result.

        Returns ``(result, coalesced)`` -- ``coalesced`` is True when the
        request attached to an identical in-flight item instead of enqueuing
        new work.  Exceptions raised by the thunk propagate to *every*
        coalesced awaiter.
        """
        self.submitted += 1
        existing = self._inflight.get(key)
        if existing is not None:
            existing.coalesced += 1
            self.coalesced += 1
            if priority > existing.priority and not existing.started:
                # Boost: re-push under the stronger key; the superseded heap
                # entry is discarded when popped (item.started check).
                existing.priority = priority
                heapq.heappush(self._heap, _HeapEntry(existing.sort_key(), existing))
                self._wakeup.set()
            return await asyncio.shield(existing.future), True

        if batch is None:
            batch = self.next_batch()
        self._arrival_seq += 1
        item = WorkItem(
            key=key,
            thunk=thunk,
            future=asyncio.get_running_loop().create_future(),
            priority=priority,
            batch=batch,
            arrival=self._arrival_seq,
        )
        self._inflight[key] = item
        heapq.heappush(self._heap, _HeapEntry(item.sort_key(), item))
        self.max_queue_depth = max(self.max_queue_depth, len(self._heap))
        self._wakeup.set()
        return await asyncio.shield(item.future), False

    async def submit_batch(
        self,
        items: list[tuple[str, Callable[[], Any]]],
        *,
        priority: int = 0,
    ) -> list[tuple[Any, bool]]:
        """Submit ``(key, thunk)`` items as one affinity group, await all.

        The shards are enqueued together under one batch id before any
        result is awaited, so they sit adjacently in the queue.
        """
        batch = self.next_batch()
        submissions = [
            self.submit(key, thunk, priority=priority, batch=batch)
            for key, thunk in items
        ]
        return list(await asyncio.gather(*submissions))

    # -- execution ------------------------------------------------------------

    def _pop_ready(self) -> WorkItem | None:
        while self._heap:
            item = heapq.heappop(self._heap).item
            if item.started:  # stale entry left behind by a priority boost
                continue
            return item
        return None

    async def _worker(self) -> None:
        while True:
            item = self._pop_ready()
            if item is None:
                if self._stopping:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            item.started = True
            self.executed += 1
            try:
                result = await asyncio.to_thread(item.thunk)
            except Exception as exc:  # noqa: BLE001 - delivered to awaiters
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            else:
                if not item.future.cancelled():
                    item.future.set_result(result)
            finally:
                if self._inflight.get(item.key) is item:
                    del self._inflight[item.key]

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "submitted": self.submitted,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "queued": len(self._inflight),
            "max_queue_depth": self.max_queue_depth,
        }


__all__ = ["ServeScheduler", "WorkItem"]
