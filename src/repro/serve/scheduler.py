"""Priority scheduling with batch affinity, coalescing, and overload control.

The daemon's admission layer: every compile-shaped request becomes a
:class:`WorkItem` on a heap ordered by ``(-priority, batch, arrival)`` and is
executed by a small number of worker coroutines (one by default -- the
compile itself is CPU-bound and runs in a thread via ``asyncio.to_thread``,
which keeps the event loop free to accept and coalesce more requests).

* **Coalescing**: items are keyed by the compile-cache content digest.  A
  request whose key is already queued or running does not enqueue new work;
  it awaits the in-flight item's future (``repro serve`` then reports it as
  ``"coalesced"``).  N clients asking for the same circuit pay one compile.
* **Priority**: higher ``priority`` runs first (ties FIFO by batch arrival).
  A coalesced duplicate carrying a higher priority *boosts* the queued
  original: the item is re-pushed under the better key and the stale heap
  entry is lazily discarded when popped.
* **Batch affinity**: all items submitted through one :meth:`submit_batch`
  call share a batch sequence number, so sweep shards stay adjacent in the
  queue instead of interleaving with same-priority traffic that arrived
  between them (warm per-process prefix/staging caches stay warm).
* **Deadlines**: a submit may carry ``deadline_s``; the awaiter gets
  :class:`DeadlineExceeded` when it elapses.  An expired item that never
  started is cancelled out of the queue (no wasted compute); one that is
  already running finishes for the benefit of the cache even though the
  original requester is gone.
* **Overload shedding**: with ``max_queue`` set, a submit that would push the
  count of *unstarted* items past the bound is rejected with
  :class:`OverloadedError` carrying a ``retry_after_s`` estimate (queue
  depth x smoothed execution time).  Coalescing requests are never shed --
  they add no work.
* **Bounded retry**: a thunk failing with a transient error (see
  :func:`repro.resilience.faults.is_transient`) is re-queued with
  exponential backoff + seeded jitter up to ``retry_policy.max_retries``
  times before the failure is delivered to the awaiters.
"""

from __future__ import annotations

import asyncio
import heapq
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..resilience.faults import RetryPolicy, is_transient

#: Serve-side retry policy: short delays -- a request is waiting.
SERVE_RETRY_POLICY = RetryPolicy(max_retries=2, base_delay_s=0.05, max_delay_s=0.5)


class OverloadedError(RuntimeError):
    """Queue bound reached; the caller should retry after ``retry_after_s``."""

    def __init__(self, queued: int, retry_after_s: float) -> None:
        super().__init__(f"scheduler overloaded ({queued} requests queued)")
        self.queued = queued
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """The per-request deadline elapsed before a result was available."""


class SchedulerDraining(RuntimeError):
    """Submission rejected because the scheduler is shutting down."""


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a future's exception retrieved (all awaiters already gave up)."""
    if future.cancelled():
        return
    future.exception()


@dataclass
class WorkItem:
    """One schedulable unit of work (shared by its coalesced duplicates)."""

    key: str
    thunk: Callable[[], Any]
    future: asyncio.Future
    priority: int
    batch: int
    arrival: int
    started: bool = False
    #: Requests riding on this item beyond the first.
    coalesced: int = 0
    #: Awaiters still waiting (drops when a deadline abandons the item).
    waiters: int = 0
    #: Earliest deadline among the awaiters (event-loop clock), if any.
    deadline: float | None = None
    retries_left: int = 0
    attempt: int = 0

    def sort_key(self) -> tuple[int, int, int]:
        return (-self.priority, self.batch, self.arrival)


@dataclass(order=True)
class _HeapEntry:
    order: tuple[int, int, int]
    item: WorkItem = field(compare=False)


class ServeScheduler:
    """Coalescing priority queue executing thunks on worker coroutines."""

    def __init__(
        self,
        workers: int = 1,
        *,
        max_queue: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.workers = max(1, workers)
        self.max_queue = max_queue
        self.retry_policy = retry_policy or SERVE_RETRY_POLICY
        self._rng = random.Random(0)  # jitter source; seeded for replayability
        self._heap: list[_HeapEntry] = []
        self._inflight: dict[str, WorkItem] = {}
        self._wakeup = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._stopping = False
        self._batch_seq = 0
        self._arrival_seq = 0
        self._avg_exec_s = 0.0
        # Lifetime counters (surfaced by the daemon's `stats` method).
        self.submitted = 0
        self.executed = 0
        self.coalesced = 0
        self.max_queue_depth = 0
        self.shed = 0
        self.retried = 0
        self.deadline_timeouts = 0
        self.deadline_expired = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker coroutines (idempotent)."""
        while len(self._tasks) < self.workers:
            self._tasks.append(asyncio.get_running_loop().create_task(self._worker()))

    async def stop(self) -> None:
        """Finish the queued work, then stop the workers (drain semantics)."""
        self._stopping = True
        self._wakeup.set()
        for task in self._tasks:
            await task
        self._tasks.clear()

    @property
    def stopping(self) -> bool:
        return self._stopping

    # -- submission -----------------------------------------------------------

    def next_batch(self) -> int:
        """Reserve a batch sequence number (affinity group id)."""
        self._batch_seq += 1
        return self._batch_seq

    def queue_depth(self) -> int:
        """Number of admitted items that have not started executing."""
        return sum(1 for item in self._inflight.values() if not item.started)

    def _retry_after(self, queued: int) -> float:
        """Back-pressure hint: how long until the queue likely has room."""
        return round((queued + 1) * max(self._avg_exec_s, 0.05), 3)

    async def submit(
        self,
        key: str,
        thunk: Callable[[], Any],
        *,
        priority: int = 0,
        batch: int | None = None,
        deadline_s: float | None = None,
    ) -> tuple[Any, bool]:
        """Schedule ``thunk`` under ``key`` and await its result.

        Returns ``(result, coalesced)`` -- ``coalesced`` is True when the
        request attached to an identical in-flight item instead of enqueuing
        new work.  Exceptions raised by the thunk propagate to *every*
        coalesced awaiter.

        Raises :class:`OverloadedError` when the queue bound would be
        exceeded, :class:`DeadlineExceeded` when ``deadline_s`` elapses
        first, and :class:`SchedulerDraining` after :meth:`stop` began.
        """
        if self._stopping:
            raise SchedulerDraining("scheduler is draining; not accepting new work")
        self.submitted += 1
        existing = self._inflight.get(key)
        if existing is not None:
            existing.coalesced += 1
            self.coalesced += 1
            if priority > existing.priority and not existing.started:
                # Boost: re-push under the stronger key; the superseded heap
                # entry is discarded when popped (item.started check).
                existing.priority = priority
                heapq.heappush(self._heap, _HeapEntry(existing.sort_key(), existing))
                self._wakeup.set()
            return await self._await_item(existing, deadline_s), True

        if self.max_queue is not None:
            queued = self.queue_depth()
            if queued >= self.max_queue:
                self.shed += 1
                raise OverloadedError(queued, self._retry_after(queued))

        if batch is None:
            batch = self.next_batch()
        self._arrival_seq += 1
        item = WorkItem(
            key=key,
            thunk=thunk,
            future=asyncio.get_running_loop().create_future(),
            priority=priority,
            batch=batch,
            arrival=self._arrival_seq,
            retries_left=self.retry_policy.max_retries,
        )
        self._inflight[key] = item
        heapq.heappush(self._heap, _HeapEntry(item.sort_key(), item))
        self.max_queue_depth = max(self.max_queue_depth, len(self._heap))
        self._wakeup.set()
        return await self._await_item(item, deadline_s), False

    async def _await_item(self, item: WorkItem, deadline_s: float | None) -> Any:
        """Await ``item`` with an optional per-awaiter deadline."""
        if deadline_s is None:
            item.waiters += 1
            try:
                return await asyncio.shield(item.future)
            finally:
                item.waiters -= 1
        loop = asyncio.get_running_loop()
        deadline = loop.time() + deadline_s
        # The worker uses the earliest awaiter deadline to skip items that
        # expire while still queued.
        item.deadline = deadline if item.deadline is None else min(item.deadline, deadline)
        item.waiters += 1
        try:
            return await asyncio.wait_for(asyncio.shield(item.future), deadline_s)
        except (TimeoutError, asyncio.TimeoutError):
            self.deadline_timeouts += 1
            if not item.started and item.waiters == 1:
                # Last awaiter gone and the item never started: cancel it out
                # of the queue so no compute is wasted on an abandoned request.
                item.started = True  # poisons the heap entry
                if self._inflight.get(item.key) is item:
                    del self._inflight[item.key]
                if not item.future.done():
                    item.future.set_exception(
                        DeadlineExceeded(f"deadline of {deadline_s:.3f}s exceeded while queued")
                    )
            item.future.add_done_callback(_consume_exception)
            raise DeadlineExceeded(f"deadline of {deadline_s:.3f}s exceeded") from None
        finally:
            item.waiters -= 1

    async def submit_batch(
        self,
        items: list[tuple[str, Callable[[], Any]]],
        *,
        priority: int = 0,
    ) -> list[tuple[Any, bool]]:
        """Submit ``(key, thunk)`` items as one affinity group, await all.

        The shards are enqueued together under one batch id before any
        result is awaited, so they sit adjacently in the queue.
        """
        batch = self.next_batch()
        submissions = [
            self.submit(key, thunk, priority=priority, batch=batch)
            for key, thunk in items
        ]
        return list(await asyncio.gather(*submissions))

    # -- execution ------------------------------------------------------------

    def _pop_ready(self) -> WorkItem | None:
        while self._heap:
            item = heapq.heappop(self._heap).item
            if item.started:  # stale entry left behind by a priority boost
                continue
            return item
        return None

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = self._pop_ready()
            if item is None:
                if self._stopping:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if item.deadline is not None and loop.time() >= item.deadline:
                # Expired while queued: terminal deadline error, never run.
                item.started = True
                self.deadline_expired += 1
                if self._inflight.get(item.key) is item:
                    del self._inflight[item.key]
                if not item.future.done():
                    item.future.set_exception(
                        DeadlineExceeded("deadline exceeded before execution started")
                    )
                    item.future.add_done_callback(_consume_exception)
                continue
            item.started = True
            self.executed += 1
            start = loop.time()
            try:
                result = await asyncio.to_thread(item.thunk)
            except Exception as exc:  # noqa: BLE001 - delivered to awaiters
                if item.retries_left > 0 and is_transient(exc) and not self._stopping:
                    # Bounded retry with backoff + jitter.  The worker sleeps
                    # (not a side task) so drain-on-stop can never orphan a
                    # re-queued item; serve delays are capped well under 1s.
                    item.retries_left -= 1
                    item.attempt += 1
                    self.retried += 1
                    await asyncio.sleep(self.retry_policy.delay(item.attempt - 1, self._rng))
                    item.started = False
                    heapq.heappush(self._heap, _HeapEntry(item.sort_key(), item))
                    self._wakeup.set()
                    continue
                if not item.future.done():
                    item.future.set_exception(exc)
                    item.future.add_done_callback(_consume_exception)
            else:
                elapsed = loop.time() - start
                self._avg_exec_s = (
                    elapsed if self._avg_exec_s == 0.0 else 0.8 * self._avg_exec_s + 0.2 * elapsed
                )
                if not item.future.done():
                    item.future.set_result(result)
            if self._inflight.get(item.key) is item:
                del self._inflight[item.key]

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "submitted": self.submitted,
            "executed": self.executed,
            "coalesced": self.coalesced,
            "queued": len(self._inflight),
            "queue_depth": self.queue_depth(),
            "max_queue": self.max_queue,
            "max_queue_depth": self.max_queue_depth,
            "shed": self.shed,
            "retried": self.retried,
            "deadline_timeouts": self.deadline_timeouts,
            "deadline_expired": self.deadline_expired,
            "avg_exec_s": round(self._avg_exec_s, 6),
        }


__all__ = [
    "DeadlineExceeded",
    "OverloadedError",
    "SERVE_RETRY_POLICY",
    "SchedulerDraining",
    "ServeScheduler",
    "WorkItem",
]
