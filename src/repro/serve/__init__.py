"""Compile-as-a-service: the persistent ``repro serve`` daemon.

The subsystem behind ``python -m repro serve`` (and its scripting client,
``python -m repro client``):

* :mod:`repro.serve.daemon` -- the asyncio front door (stdio JSON lines or
  localhost HTTP) accepting ``compile`` / ``validate`` / ``sweep`` /
  ``stats`` / ``shutdown`` requests.
* :mod:`repro.serve.scheduler` -- priority scheduling with batch affinity
  and in-flight coalescing of identical requests.
* :mod:`repro.serve.diskcache` -- the sharded, content-addressed,
  LRU-byte-budgeted disk cache that lets a restarted daemon answer
  previously-compiled requests without recompiling.
* :mod:`repro.serve.client` -- a pipelining stdio client (spawns the daemon
  as a child) plus a per-request HTTP client.
"""

from .client import DaemonClient, HttpClient, run_requests
from .daemon import PROTOCOL_VERSION, RequestError, ServeDaemon, build_circuit
from .diskcache import DEFAULT_MAX_BYTES, DiskCompileCache, cache_key_digest
from .scheduler import ServeScheduler

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DaemonClient",
    "DiskCompileCache",
    "HttpClient",
    "PROTOCOL_VERSION",
    "RequestError",
    "ServeDaemon",
    "ServeScheduler",
    "build_circuit",
    "cache_key_digest",
    "run_requests",
]
