"""Compile-as-a-service: the persistent ``repro serve`` daemon.

The subsystem behind ``python -m repro serve`` (and its scripting client,
``python -m repro client``):

* :mod:`repro.serve.daemon` -- the asyncio front door (stdio JSON lines or
  keep-alive localhost HTTP) accepting ``compile`` / ``validate`` /
  ``sweep`` / ``stats`` / ``health`` / ``shutdown`` requests, with
  per-request deadlines, overload shedding, and graceful degradation.
* :mod:`repro.serve.scheduler` -- priority scheduling with batch affinity,
  in-flight coalescing of identical requests, deadline cancellation, and
  bounded transient-failure retries.
* :mod:`repro.serve.diskcache` -- the sharded, content-addressed,
  LRU-byte-budgeted disk cache that lets a restarted daemon answer
  previously-compiled requests without recompiling.
* :mod:`repro.serve.client` -- a pipelining stdio client (spawns the daemon
  as a child) plus a keep-alive HTTP client that reconnects with backoff.
"""

from .client import DaemonClient, HttpClient, run_requests
from .daemon import PROTOCOL_VERSION, RequestError, ServeDaemon, build_circuit
from .diskcache import DEFAULT_MAX_BYTES, DiskCompileCache, cache_key_digest
from .scheduler import (
    DeadlineExceeded,
    OverloadedError,
    SchedulerDraining,
    ServeScheduler,
)

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DaemonClient",
    "DeadlineExceeded",
    "DiskCompileCache",
    "HttpClient",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "RequestError",
    "SchedulerDraining",
    "ServeDaemon",
    "ServeScheduler",
    "build_circuit",
    "cache_key_digest",
    "run_requests",
]
