"""``repro client``: a scripting/testing client for the ``repro serve`` daemon.

:class:`DaemonClient` spawns a stdio daemon as a child process (or connects
to a running ``--http`` daemon) and exchanges newline-delimited JSON with
it.  Requests can be pipelined: :meth:`send` returns immediately with the
assigned id, :meth:`recv`/:meth:`wait` collect responses in completion
order -- that is what lets two identical pipelined requests *coalesce*
inside the daemon instead of the second waiting to become a cache hit.

Typical session (what ``make smoke`` runs)::

    printf '%s\\n' \\
      '{"method":"compile","params":{"circuit":{"benchmark":"bv_n14"}}}' \\
      '{"method":"stats"}' '{"method":"shutdown"}' \\
      | python -m repro client --requests -
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any


class ClientError(RuntimeError):
    """Transport-level failure talking to the daemon."""


# ---------------------------------------------------------------------------
# Request generators: fuzz repro bundles and QASM corpora as daemon traffic
# ---------------------------------------------------------------------------


def profile_request_options(profile: str, backend: str) -> dict[str, Any] | None:
    """A fuzz compile profile's backend options as JSON request options.

    Dataclass options (e.g. a ``ZACConfig``) become field dicts, which the
    daemon's ``build_options`` reconstructs; scalars pass through.  Returns
    ``None`` when the profile leaves the backend on defaults.
    """
    from ..experiments.fuzz import _profile_options

    options = _profile_options(profile).get(backend, {})
    out: dict[str, Any] = {}
    for key, value in options.items():
        out[key] = dataclasses.asdict(value) if dataclasses.is_dataclass(value) else value
    return out or None


def bundle_requests(directory: str | Path) -> list[dict]:
    """Compile requests replaying the fuzz repro bundles under ``directory``.

    Every ``kind: "fuzz-repro"`` JSON bundle becomes one ``compile`` request
    against the bundle's backend, carrying the minimized circuit as QASM
    text (falling back to the workload descriptor) and the recorded
    profile's compile options.  This regenerates daemon traffic from real
    past failures -- the request-log replay workload generator.  Bundles for
    workload-level checks (no registered backend) are skipped.

    Raises:
        ClientError: if ``directory`` contains no fuzz repro bundles.
    """
    directory = Path(directory)
    requests: list[dict] = []
    for path in sorted(directory.glob("*.json")):
        try:
            bundle = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ClientError(f"cannot read bundle {path}: {exc}") from None
        if not isinstance(bundle, dict) or bundle.get("kind") != "fuzz-repro":
            continue
        backend = bundle.get("backend")
        if not backend or backend in ("workload", "daemon"):
            # Workload-level invariants and chaos fault bundles carry no
            # circuit a daemon could compile.
            continue
        if bundle.get("circuit_qasm"):
            spec: dict[str, Any] = {"qasm": bundle["circuit_qasm"], "name": path.stem}
        elif bundle.get("descriptor"):
            spec = {"descriptor": bundle["descriptor"]}
        else:
            continue
        params: dict[str, Any] = {"circuit": spec, "backend": backend}
        options = profile_request_options(bundle.get("profile", "default"), backend)
        if options:
            params["options"] = options
        requests.append({"method": "compile", "params": params})
    if not requests:
        raise ClientError(f"no fuzz repro bundles under {directory}")
    return requests


def corpus_requests(
    root: str | Path | None = None,
    backend: str = "zac",
    profile: str = "throughput",
) -> list[dict]:
    """Compile requests streaming a QASM corpus through a daemon.

    Parses each file locally first and skips unparseable ones (the ingest
    pipeline is where malformed files are *reported*; a traffic generator
    just shouldn't send requests known to fail).

    Raises:
        ClientError: if the corpus holds no parseable files.
    """
    from ..circuits.corpus import load_corpus

    loaded, _errors = load_corpus(root)
    if not loaded:
        raise ClientError(f"no parseable .qasm files under {root or 'the corpus'}")
    options = profile_request_options(profile, backend)
    requests = []
    for path, _circuit in loaded:
        params: dict[str, Any] = {
            "circuit": {"qasm": path.read_text(encoding="utf-8"), "name": path.stem},
            "backend": backend,
        }
        if options:
            params["options"] = options
        requests.append({"method": "compile", "params": params})
    return requests


class DaemonClient:
    """Talk to a ``repro serve`` daemon over a child process's stdio."""

    def __init__(self, process: subprocess.Popen) -> None:
        self.process = process
        self._next_id = 0
        self._pending: dict[Any, dict] = {}

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def spawn(
        cls,
        *,
        cache_dir: str | None = None,
        cache_bytes: int | None = None,
        cache_ttl: float | None = None,
        workers: int | None = None,
        python: str | None = None,
        extra_args: list[str] | None = None,
        env: dict[str, str] | None = None,
    ) -> "DaemonClient":
        """Start ``python -m repro serve --stdio`` as a child process.

        The child inherits the environment (``PYTHONPATH`` must make
        ``repro`` importable, exactly like the worker pool's spawn caveat);
        ``env`` adds/overrides variables on top -- e.g. ``REPRO_FAULT_PLAN``
        to run the daemon under an injected fault schedule.
        """
        argv = [python or sys.executable, "-u", "-m", "repro", "serve", "--stdio"]
        if cache_dir is not None:
            argv += ["--cache-dir", cache_dir]
        if cache_bytes is not None:
            argv += ["--cache-bytes", str(cache_bytes)]
        if cache_ttl is not None:
            argv += ["--cache-ttl", str(cache_ttl)]
        if workers is not None:
            argv += ["--workers", str(workers)]
        argv += list(extra_args or ())
        process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL if os.environ.get("REPRO_CLIENT_QUIET") else None,
            text=True,
            env={**os.environ, **env} if env else None,
        )
        return cls(process)

    def close(self, *, shutdown: bool = True, timeout: float = 30.0) -> int:
        """Shut the daemon down (politely, then firmly) and reap it."""
        if self.process.poll() is None:
            if shutdown:
                try:
                    self.send("shutdown")
                except (BrokenPipeError, OSError, ValueError):
                    pass
            try:
                self.process.stdin.close()
            except (BrokenPipeError, OSError, ValueError):
                pass
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()
        return self.process.returncode

    def kill(self) -> None:
        """Hard-kill the daemon (the restart test's power cut)."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        for pipe in (self.process.stdin, self.process.stdout):
            if pipe is not None:
                try:
                    pipe.close()
                except (BrokenPipeError, OSError):
                    pass

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ------------------------------------------------------

    def send(self, method: str, params: dict | None = None, *, id: Any = None) -> Any:
        """Write one request line (no waiting); returns the request id."""
        if id is None:
            self._next_id += 1
            id = self._next_id
        elif isinstance(id, int):
            # Keep auto-assigned ids clear of explicit ones so a mixed
            # pipeline (user ids + the appended shutdown) cannot collide.
            self._next_id = max(self._next_id, id)
        request = {"id": id, "method": method}
        if params is not None:
            request["params"] = params
        self.send_raw(request)
        return id

    def send_raw(self, request: dict) -> None:
        stdin = self.process.stdin
        if stdin is None or self.process.poll() is not None:
            raise ClientError("daemon is not running")
        stdin.write(json.dumps(request) + "\n")
        stdin.flush()

    def recv(self) -> dict:
        """Read the next response line (whatever request it answers)."""
        stdout = self.process.stdout
        if stdout is None:
            raise ClientError("daemon stdout is not captured")
        line = stdout.readline()
        if not line:
            raise ClientError("daemon closed the connection")
        return json.loads(line)

    def wait(self, id: Any) -> dict:
        """Read responses until the one matching ``id`` arrives."""
        if id in self._pending:
            return self._pending.pop(id)
        while True:
            response = self.recv()
            if response.get("id") == id:
                return response
            self._pending[response.get("id")] = response

    def request(self, method: str, params: dict | None = None) -> dict:
        """Send one request and block for its response."""
        return self.wait(self.send(method, params))


class HttpClient:
    """Keep-alive client for a daemon running in ``--http`` mode.

    One persistent connection carries every request (the daemon speaks
    HTTP/1.1 keep-alive).  When the connection drops -- daemon restart,
    idle-timeout reset, a fault-injected kill -- the client reconnects
    with bounded exponential backoff and resends; requests are idempotent
    (compiles are deterministic and cached), so a resend is safe.
    ``connects`` counts connection establishments, which is how tests
    distinguish reuse from churn.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_attempts: int = 4,
        backoff_s: float = 0.05,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.timeout = timeout
        self.connects = 0
        self._next_id = 0
        self._connection = None

    def _connect(self):
        import http.client

        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        connection.connect()
        self.connects += 1
        self._connection = connection
        return connection

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, params: dict | None = None) -> dict:
        import http.client

        self._next_id += 1
        payload: dict[str, Any] = {"id": self._next_id, "method": method}
        if params is not None:
            payload["params"] = params
        body = json.dumps(payload)
        headers = {"Content-Type": "application/json", "Connection": "keep-alive"}
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(min(1.0, self.backoff_s * (2 ** (attempt - 1))))
            try:
                connection = self._connection or self._connect()
                connection.request("POST", "/", body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                if response.will_close:
                    self.close()
                return json.loads(raw)
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                last_error = exc
                self.close()
        raise ClientError(
            f"http request to {self.host}:{self.port} failed after "
            f"{self.max_attempts} attempts: {last_error}"
        )


def run_requests(
    requests: list[dict],
    *,
    cache_dir: str | None = None,
    cache_bytes: int | None = None,
    cache_ttl: float | None = None,
    workers: int | None = None,
    connect: tuple[str, int] | None = None,
    output=None,
) -> int:
    """Drive a request list end to end (the ``repro client`` CLI core).

    Stdio mode pipelines: every request is written before any response is
    read, so identical neighbours can coalesce in the daemon.  A trailing
    ``shutdown`` is appended when the list does not end with one.  Responses
    are printed (to ``output``) as JSON lines in completion order.  Returns
    a process exit code: 0 iff every response has ``ok: true``.
    """
    output = output or sys.stdout
    if connect is not None:
        all_ok = True
        with HttpClient(*connect) as http:
            for request in requests:
                response = http.request(
                    request.get("method", ""), request.get("params")
                )
                print(json.dumps(response, sort_keys=True), file=output, flush=True)
                all_ok = all_ok and bool(response.get("ok"))
        return 0 if all_ok else 1

    if not any(request.get("method") == "shutdown" for request in requests):
        requests = [*requests, {"method": "shutdown"}]
    with DaemonClient.spawn(
        cache_dir=cache_dir, cache_bytes=cache_bytes, cache_ttl=cache_ttl, workers=workers
    ) as client:
        ids = []
        for request in requests:
            ids.append(
                client.send(
                    request.get("method", ""),
                    request.get("params"),
                    id=request.get("id"),
                )
            )
        all_ok = True
        for id in ids:
            response = client.wait(id)
            print(json.dumps(response, sort_keys=True), file=output, flush=True)
            all_ok = all_ok and bool(response.get("ok"))
    return 0 if all_ok else 1


__all__ = [
    "ClientError",
    "DaemonClient",
    "HttpClient",
    "bundle_requests",
    "corpus_requests",
    "profile_request_options",
    "run_requests",
]
