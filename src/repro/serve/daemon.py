"""The ``repro serve`` daemon: compile-as-a-service in front of the registry.

A long-running asyncio front door over :class:`repro.api.CompileService`.
Clients speak newline-delimited JSON (one request object per line, one
response object per line, matched by ``id``) over the daemon's stdio, or --
with ``--http PORT`` -- over ``POST /`` on localhost.

Request schema (see also the README "Serving" section)::

    {"id": 1, "method": "compile",
     "params": {"circuit": {"benchmark": "bv_n14"},
                "backend": "zac",
                "options": {"config": {"sa_iterations": 100}},
                "priority": 5}}

``circuit`` accepts three forms: ``{"benchmark": name}`` (paper benchmark),
``{"qasm": text}`` (OpenQASM 2 source), or ``{"descriptor": {...}}`` (a
:class:`repro.circuits.random.WorkloadDescriptor` dict -- the fuzz/replay
form).  Methods: ``compile``, ``validate``, ``sweep`` (a list of circuits
scheduled as one batch-affinity group), ``stats``, ``shutdown``.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"message": ...}}``.  Compile-shaped
responses carry ``served``: ``"compiled"`` (paid the full pipeline),
``"memory"`` / ``"disk"`` (cache hit), or ``"coalesced"`` (attached to an
identical in-flight request).  Identical concurrent requests are keyed by
the compile-cache content digest, so N clients asking for the same circuit
pay one compile; the disk cache (``--cache-dir``) persists results across
restarts so a rebooted daemon serves warm hits immediately.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import sys
import time
from typing import Any

from ..api.parallel import CompileService
from ..circuits.circuit import QuantumCircuit
from .diskcache import DEFAULT_MAX_BYTES, DiskCompileCache, cache_key_digest
from .scheduler import ServeScheduler

#: Protocol version reported by ``stats`` (bump on incompatible changes).
PROTOCOL_VERSION = 1


class RequestError(ValueError):
    """A malformed or unserviceable request (reported, never fatal)."""


def build_circuit(spec: Any) -> QuantumCircuit:
    """Materialize a request's circuit spec (benchmark / qasm / descriptor)."""
    if not isinstance(spec, dict):
        raise RequestError(
            "params.circuit must be an object with one of the keys "
            "'benchmark', 'qasm', or 'descriptor'"
        )
    if "benchmark" in spec:
        from ..circuits.library.registry import PAPER_BENCHMARKS

        name = spec["benchmark"]
        if name not in PAPER_BENCHMARKS:
            raise RequestError(f"unknown benchmark {name!r}")
        return PAPER_BENCHMARKS[name]()
    if "qasm" in spec:
        from ..circuits import qasm

        try:
            return qasm.loads(spec["qasm"], name=spec.get("name", "qasm_circuit"))
        except ValueError as exc:
            raise RequestError(f"bad qasm: {exc}") from None
    if "descriptor" in spec:
        from ..circuits.random import GeneratorError, WorkloadDescriptor

        try:
            return WorkloadDescriptor.from_dict(spec["descriptor"]).build()
        except (GeneratorError, KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"bad descriptor: {exc}") from None
    raise RequestError(
        "params.circuit needs one of the keys 'benchmark', 'qasm', 'descriptor'"
    )


def build_options(backend: str, options: Any) -> dict[str, Any]:
    """Turn a request's JSON options into typed backend options.

    Scalars pass through (the registry's option dataclass validates them).
    For the ``zac``/``ideal`` backends, ``config`` may be a preset name
    (``"vanilla"`` ... ``"full"``) or an object of
    :class:`~repro.core.config.ZACConfig` field overrides.
    """
    if options is None:
        return {}
    if not isinstance(options, dict):
        raise RequestError("params.options must be an object")
    built = dict(options)
    if backend in ("zac", "ideal") and "config" in built:
        from ..core.config import ZACConfig

        raw = built["config"]
        if isinstance(raw, str):
            presets = ("vanilla", "dyn_place", "dyn_place_reuse", "full")
            if raw not in presets:
                raise RequestError(
                    f"unknown zac config preset {raw!r}; choose from {presets}"
                )
            built["config"] = getattr(ZACConfig, raw)()
        elif isinstance(raw, dict):
            known = {spec.name for spec in dataclasses.fields(ZACConfig)}
            unknown = set(raw) - known
            if unknown:
                raise RequestError(f"unknown ZACConfig fields: {sorted(unknown)}")
            try:
                built["config"] = ZACConfig(**raw)
            except TypeError as exc:
                raise RequestError(f"bad config: {exc}") from None
        else:
            raise RequestError("params.options.config must be a preset name or object")
    return built


class ServeDaemon:
    """The request dispatcher behind ``python -m repro serve``."""

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        cache_ttl: float | None = None,
        workers: int = 0,
        service: CompileService | None = None,
    ) -> None:
        # A dedicated service instance: daemon statistics must not be
        # entangled with whatever the embedding process compiled before.
        self.service = service or CompileService()
        self.disk: DiskCompileCache | None = None
        if cache_dir is not None:
            self.disk = DiskCompileCache(
                cache_dir, max_bytes=max_cache_bytes, ttl_seconds=cache_ttl
            )
            self.service.attach_disk_cache(self.disk)
        #: Worker processes for sweep fan-out (0 = all compiles inline in
        #: the scheduler thread; prefix snapshots ship when > 1).
        self.workers = workers
        self.scheduler = ServeScheduler(workers=1)
        self.started_at = time.time()
        self.requests = 0
        #: Per-backend hit/miss/coalesce counters (served outcome of every
        #: compile-shaped request), reported by `stats`.
        self.backend_counters: dict[str, dict[str, int]] = {}
        self._shutdown = asyncio.Event()

    # -- accounting -----------------------------------------------------------

    def _count(self, backend: str, served: str) -> None:
        bucket = self.backend_counters.setdefault(
            backend,
            {"requests": 0, "hits": 0, "misses": 0, "coalesced": 0},
        )
        bucket["requests"] += 1
        if served in ("memory", "disk"):
            bucket["hits"] += 1
        elif served == "coalesced":
            bucket["coalesced"] += 1
        else:
            bucket["misses"] += 1

    # -- compile plumbing ------------------------------------------------------

    def _compile_params(self, params: dict) -> tuple[QuantumCircuit, str, dict, int]:
        circuit = build_circuit(params.get("circuit"))
        backend = params.get("backend", "zac")
        if not isinstance(backend, str):
            raise RequestError("params.backend must be a string")
        options = build_options(backend, params.get("options"))
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise RequestError("params.priority must be an integer")
        return circuit, backend, options, priority

    def _request_key(self, circuit: QuantumCircuit, backend: str, options: dict) -> str:
        from ..api.registry import UnknownBackendError

        try:
            key = self.service.cache_key(circuit, backend, None, options)
        except (UnknownBackendError, TypeError, ValueError) as exc:
            raise RequestError(str(exc)) from None
        return cache_key_digest(key)

    def _compile_thunk(
        self, circuit: QuantumCircuit, backend: str, options: dict, validate: bool
    ):
        def thunk() -> tuple[dict, str]:
            provenance: list = []
            result = self.service.compile_batch(
                [circuit],
                backend,
                None,
                parallel=0,
                validate=validate,
                cache=True,
                keep_programs=False,
                provenance=provenance,
                **options,
            )[0]
            payload = {
                "circuit": result.circuit_name,
                "backend": backend,
                "compiler": result.compiler_name,
                "architecture": result.architecture_name,
                "validated": result.validated,
                "summary": result.summary(),
            }
            return payload, provenance[0] or "compiled"

        return thunk

    async def _serve_compile(
        self,
        circuit: QuantumCircuit,
        backend: str,
        options: dict,
        *,
        priority: int,
        batch: int | None = None,
        validate: bool = True,
    ) -> dict:
        key = self._request_key(circuit, backend, options)
        thunk = self._compile_thunk(circuit, backend, options, validate)
        (payload, served), coalesced = await self.scheduler.submit(
            key, thunk, priority=priority, batch=batch
        )
        if coalesced:
            served = "coalesced"
        self._count(backend, served)
        return {**payload, "served": served}

    # -- methods ---------------------------------------------------------------

    async def _method_compile(self, params: dict) -> dict:
        circuit, backend, options, priority = self._compile_params(params)
        validate = params.get("validate", True)
        if not isinstance(validate, bool):
            raise RequestError("params.validate must be a boolean")
        return await self._serve_compile(
            circuit, backend, options, priority=priority, validate=validate
        )

    async def _method_validate(self, params: dict) -> dict:
        from ..zair.validation import ValidationError

        circuit, backend, options, priority = self._compile_params(params)
        try:
            payload = await self._serve_compile(
                circuit, backend, options, priority=priority, validate=True
            )
        except ValidationError as exc:
            return {
                "valid": False,
                "check": getattr(exc, "check", "generic"),
                "message": str(exc),
            }
        return {**payload, "valid": True}

    async def _method_sweep(self, params: dict) -> dict:
        specs = params.get("circuits")
        if not isinstance(specs, list) or not specs:
            raise RequestError("params.circuits must be a non-empty list")
        backend = params.get("backend", "zac")
        options = build_options(backend, params.get("options"))
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise RequestError("params.priority must be an integer")
        circuits = [build_circuit(spec) for spec in specs]
        if self.workers > 1:
            return await self._sweep_fanout(circuits, backend, options, priority)
        batch = self.scheduler.next_batch()
        # One affinity group: the shards enqueue together and stay adjacent.
        results = await asyncio.gather(
            *(
                self._serve_compile(
                    circuit, backend, options, priority=priority, batch=batch
                )
                for circuit in circuits
            ),
            return_exceptions=True,
        )
        payloads: list[dict] = []
        for outcome in results:
            if isinstance(outcome, BaseException):
                payloads.append({"error": str(outcome)})
            else:
                payloads.append(outcome)
        return {"results": payloads, "batch": batch}

    async def _sweep_fanout(
        self, circuits: list[QuantumCircuit], backend: str, options: dict, priority: int
    ) -> dict:
        """Run a sweep as one worker-pool batch, shipping prefix snapshots.

        The whole batch is a single scheduler item (its shards are adjacent
        by construction); ``compile_batch`` coalesces within-batch
        duplicates and ``ship_prefix=True`` gives depth-ladder shards
        cross-process prefix reuse (the workers' prefix hits are merged back
        into this service's ``cache_stats()``).
        """
        keys = [
            self._request_key(circuit, backend, options) for circuit in circuits
        ]
        batch = self.scheduler.next_batch()

        def thunk() -> list[tuple[dict, str]]:
            provenance: list = []
            results = self.service.compile_batch(
                circuits,
                backend,
                None,
                parallel=self.workers,
                validate=True,
                return_exceptions=True,
                cache=True,
                keep_programs=False,
                ship_prefix=True,
                provenance=provenance,
                **options,
            )
            out: list[tuple[dict, str]] = []
            for result, served in zip(results, provenance):
                if isinstance(result, Exception):
                    out.append(({"error": str(result)}, "error"))
                    continue
                out.append(
                    (
                        {
                            "circuit": result.circuit_name,
                            "backend": backend,
                            "compiler": result.compiler_name,
                            "architecture": result.architecture_name,
                            "validated": result.validated,
                            "summary": result.summary(),
                        },
                        served or "compiled",
                    )
                )
            return out

        (outcomes, coalesced) = await self.scheduler.submit(
            cache_key_digest(tuple(keys)), thunk, priority=priority, batch=batch
        )
        payloads: list[dict] = []
        for payload, served in outcomes:
            if coalesced:
                served = "coalesced"
            if served != "error":
                self._count(backend, served)
                payload = {**payload, "served": served}
            payloads.append(payload)
        return {"results": payloads, "batch": batch}

    async def _method_stats(self, _params: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "backends": {
                name: dict(counters)
                for name, counters in sorted(self.backend_counters.items())
            },
            "scheduler": self.scheduler.stats(),
            "cache": self.service.cache_stats(),
        }

    async def _method_shutdown(self, _params: dict) -> dict:
        self._shutdown.set()
        return {"stopping": True}

    # -- dispatch --------------------------------------------------------------

    async def handle(self, request: dict) -> dict:
        """Serve one request object, returning the response object."""
        request_id = request.get("id")
        self.requests += 1
        method = request.get("method")
        handler = {
            "compile": self._method_compile,
            "validate": self._method_validate,
            "sweep": self._method_sweep,
            "stats": self._method_stats,
            "shutdown": self._method_shutdown,
        }.get(method)
        if handler is None:
            return _error(request_id, f"unknown method {method!r}")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return _error(request_id, "params must be an object")
        try:
            result = await handler(params)
        except RequestError as exc:
            return _error(request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 - a request must never kill the daemon
            return _error(request_id, f"{type(exc).__name__}: {exc}")
        return {"id": request_id, "ok": True, "result": result}

    # -- transports ------------------------------------------------------------

    async def serve_stdio(self) -> None:
        """Newline-delimited JSON over this process's stdin/stdout."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, protocol, None, loop)
        await self._serve_stream(reader, writer, close_writer=False)

    async def serve_http(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Minimal localhost HTTP mode: each request is a ``POST /`` body.

        One request per connection; the response is the same JSON object the
        stdio transport would emit.  Prints the bound port on startup (port
        0 lets the OS pick) so test harnesses can connect.
        """
        server = await asyncio.start_server(self._serve_http_connection, host, port)
        bound = server.sockets[0].getsockname()[1]
        print(f"repro-serve listening on http://{host}:{bound}", flush=True)
        self.scheduler.start()
        async with server:
            await self._shutdown.wait()
        await self.scheduler.stop()

    async def _serve_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line.startswith(b"POST"):
                _http_respond(writer, 405, {"ok": False, "error": {"message": "POST only"}})
                return
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = await reader.readexactly(content_length)
            try:
                request = json.loads(body)
            except json.JSONDecodeError as exc:
                _http_respond(writer, 400, _error(None, f"bad json: {exc}"))
                return
            response = await self.handle(request)
            _http_respond(writer, 200, response)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    async def _serve_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        close_writer: bool = True,
    ) -> None:
        """Shared stdio loop: spawn a task per request, write as they finish."""
        self.scheduler.start()
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(request: dict) -> None:
            response = await self.handle(request)
            async with write_lock:
                writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()

        while not self._shutdown.is_set():
            read = asyncio.create_task(reader.readline())
            stop = asyncio.create_task(self._shutdown.wait())
            done, _ = await asyncio.wait(
                (read, stop), return_when=asyncio.FIRST_COMPLETED
            )
            if read not in done:
                read.cancel()
                stop.cancel()
                break
            stop.cancel()
            line = read.result()
            if not line:  # EOF: client went away
                self._shutdown.set()
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                async with write_lock:
                    writer.write(
                        (json.dumps(_error(None, f"bad json: {exc}")) + "\n").encode()
                    )
                    await writer.drain()
                continue
            task = asyncio.create_task(respond(request))
            pending.add(task)
            task.add_done_callback(pending.discard)

        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await self.scheduler.stop()
        if close_writer:
            writer.close()


def _error(request_id: Any, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": {"message": message}}


def _http_respond(writer: asyncio.StreamWriter, status: int, payload: dict) -> None:
    body = json.dumps(payload, sort_keys=True).encode()
    reason = {200: "OK", 400: "Bad Request", 405: "Method Not Allowed"}[status]
    writer.write(
        (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        + body
    )


__all__ = [
    "PROTOCOL_VERSION",
    "RequestError",
    "ServeDaemon",
    "build_circuit",
    "build_options",
]
