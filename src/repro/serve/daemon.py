"""The ``repro serve`` daemon: compile-as-a-service in front of the registry.

A long-running asyncio front door over :class:`repro.api.CompileService`.
Clients speak newline-delimited JSON (one request object per line, one
response object per line, matched by ``id``) over the daemon's stdio, or --
with ``--http PORT`` -- over ``POST /`` on localhost.

Request schema (see also the README "Serving" section)::

    {"id": 1, "method": "compile",
     "params": {"circuit": {"benchmark": "bv_n14"},
                "backend": "zac",
                "options": {"config": {"sa_iterations": 100}},
                "priority": 5}}

``circuit`` accepts three forms: ``{"benchmark": name}`` (paper benchmark),
``{"qasm": text}`` (OpenQASM 2 source), or ``{"descriptor": {...}}`` (a
:class:`repro.circuits.random.WorkloadDescriptor` dict -- the fuzz/replay
form).  Methods: ``compile``, ``validate``, ``sweep`` (a list of circuits
scheduled as one batch-affinity group), ``stats``, ``health``, ``shutdown``.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"message": ...}}``.  Compile-shaped
responses carry ``served``: ``"compiled"`` (paid the full pipeline),
``"memory"`` / ``"disk"`` (cache hit), or ``"coalesced"`` (attached to an
identical in-flight request).  Identical concurrent requests are keyed by
the compile-cache content digest, so N clients asking for the same circuit
pay one compile; the disk cache (``--cache-dir``) persists results across
restarts so a rebooted daemon serves warm hits immediately.

Resilience semantics (see the README "Resilience & chaos testing" section):

* ``params.deadline_ms`` puts a deadline on a compile-shaped request; when
  it elapses the client gets ``{"error": {"kind": "deadline", ...}}`` and a
  still-queued item is cancelled out of the queue.
* With ``--max-queue`` set, requests beyond the bound are shed with
  ``{"error": {"kind": "overloaded", "retry_after_s": ...}}``.
* Under deadline pressure (deep queue + a deadline'd request) the daemon
  *degrades gracefully*: it serves a slim cached result immediately
  (``served: "degraded-cache"``) or falls back to a cheaper deterministic
  ``ZACConfig`` (``served: "degraded"``); both carry ``degraded: true``.
* Oversized stdio lines / HTTP bodies (``--max-request-bytes``) get a
  structured ``kind: "oversized"`` error instead of wedging the transport.
* ``shutdown`` drains: queued work finishes and in-flight responses are
  written before the daemon exits; new work after the drain begins is
  rejected with ``kind: "draining"``.  ``health`` reports
  ``status: "ok" | "draining"`` plus scheduler/disk counters.
* The HTTP transport is keep-alive: one connection serves many requests
  (HTTP/1.1 semantics; ``Connection: close`` honored).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import sys
import time
from typing import Any

from ..api.parallel import CompileService
from ..circuits.circuit import QuantumCircuit
from ..resilience.faults import fault_point
from .diskcache import DEFAULT_MAX_BYTES, DiskCompileCache, cache_key_digest
from .scheduler import (
    DeadlineExceeded,
    OverloadedError,
    SchedulerDraining,
    ServeScheduler,
)

#: Protocol version reported by ``stats`` (bump on incompatible changes).
PROTOCOL_VERSION = 1

#: Largest accepted request: one stdio line or one HTTP body (8 MiB -- a
#: QASM circuit of hundreds of thousands of gates fits comfortably).
DEFAULT_MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: Queue depth at which a deadline'd request switches to degraded serving.
DEFAULT_DEGRADE_DEPTH = 4


class RequestError(ValueError):
    """A malformed or unserviceable request (reported, never fatal)."""


def build_circuit(spec: Any) -> QuantumCircuit:
    """Materialize a request's circuit spec (benchmark / qasm / descriptor)."""
    if not isinstance(spec, dict):
        raise RequestError(
            "params.circuit must be an object with one of the keys "
            "'benchmark', 'qasm', or 'descriptor'"
        )
    if "benchmark" in spec:
        from ..circuits.library.registry import PAPER_BENCHMARKS

        name = spec["benchmark"]
        if name not in PAPER_BENCHMARKS:
            raise RequestError(f"unknown benchmark {name!r}")
        return PAPER_BENCHMARKS[name]()
    if "qasm" in spec:
        from ..circuits import qasm

        try:
            return qasm.loads(spec["qasm"], name=spec.get("name", "qasm_circuit"))
        except ValueError as exc:
            raise RequestError(f"bad qasm: {exc}") from None
    if "descriptor" in spec:
        from ..circuits.random import GeneratorError, WorkloadDescriptor

        try:
            return WorkloadDescriptor.from_dict(spec["descriptor"]).build()
        except (GeneratorError, KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"bad descriptor: {exc}") from None
    raise RequestError(
        "params.circuit needs one of the keys 'benchmark', 'qasm', 'descriptor'"
    )


def degraded_zac_config(config=None):
    """The deterministic cheaper config used for degraded serving.

    Caps the SA budget and strips the placement/incremental frills; shared
    with the chaos harness so a degraded response can be reproduced
    bit-identically by a fault-free compile under the same transform.
    """
    from ..core.config import ZACConfig

    base = config if config is not None else ZACConfig()
    return dataclasses.replace(
        base,
        sa_iterations=min(base.sa_iterations, 25),
        use_sa_initial_placement=False,
        incremental=False,
        warm_start=False,
    )


def degrade_built_options(backend: str, built: dict) -> tuple[dict, bool]:
    """Degraded variant of built options: ``(options, degraded)``.

    Only the ``zac`` / ``ideal`` backends have a cost knob worth turning;
    other backends serve undegraded.
    """
    if backend not in ("zac", "ideal"):
        return built, False
    degraded = dict(built)
    degraded["config"] = degraded_zac_config(degraded.get("config"))
    return degraded, True


def build_options(backend: str, options: Any) -> dict[str, Any]:
    """Turn a request's JSON options into typed backend options.

    Scalars pass through (the registry's option dataclass validates them).
    For the ``zac``/``ideal`` backends, ``config`` may be a preset name
    (``"vanilla"`` ... ``"full"``) or an object of
    :class:`~repro.core.config.ZACConfig` field overrides.
    """
    if options is None:
        return {}
    if not isinstance(options, dict):
        raise RequestError("params.options must be an object")
    built = dict(options)
    if backend in ("zac", "ideal") and "config" in built:
        from ..core.config import ZACConfig

        raw = built["config"]
        if isinstance(raw, str):
            presets = ("vanilla", "dyn_place", "dyn_place_reuse", "full")
            if raw not in presets:
                raise RequestError(
                    f"unknown zac config preset {raw!r}; choose from {presets}"
                )
            built["config"] = getattr(ZACConfig, raw)()
        elif isinstance(raw, dict):
            known = {spec.name for spec in dataclasses.fields(ZACConfig)}
            unknown = set(raw) - known
            if unknown:
                raise RequestError(f"unknown ZACConfig fields: {sorted(unknown)}")
            try:
                built["config"] = ZACConfig(**raw)
            except TypeError as exc:
                raise RequestError(f"bad config: {exc}") from None
        else:
            raise RequestError("params.options.config must be a preset name or object")
    return built


class ServeDaemon:
    """The request dispatcher behind ``python -m repro serve``."""

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        max_cache_bytes: int = DEFAULT_MAX_BYTES,
        cache_ttl: float | None = None,
        workers: int = 0,
        service: CompileService | None = None,
        max_queue: int | None = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        degrade_depth: int | None = DEFAULT_DEGRADE_DEPTH,
    ) -> None:
        # A dedicated service instance: daemon statistics must not be
        # entangled with whatever the embedding process compiled before.
        self.service = service or CompileService()
        self.disk: DiskCompileCache | None = None
        if cache_dir is not None:
            self.disk = DiskCompileCache(
                cache_dir, max_bytes=max_cache_bytes, ttl_seconds=cache_ttl
            )
            self.service.attach_disk_cache(self.disk)
        #: Worker processes for sweep fan-out (0 = all compiles inline in
        #: the scheduler thread; prefix snapshots ship when > 1).
        self.workers = workers
        self.scheduler = ServeScheduler(workers=1, max_queue=max_queue)
        self.max_request_bytes = max_request_bytes
        self.degrade_depth = degrade_depth
        self.started_at = time.time()
        self.requests = 0
        self.degraded_served = 0
        self.draining = False
        #: Per-backend hit/miss/coalesce counters (served outcome of every
        #: compile-shaped request), reported by `stats`.
        self.backend_counters: dict[str, dict[str, int]] = {}
        self._shutdown = asyncio.Event()

    # -- accounting -----------------------------------------------------------

    def _count(self, backend: str, served: str) -> None:
        bucket = self.backend_counters.setdefault(
            backend,
            {"requests": 0, "hits": 0, "misses": 0, "coalesced": 0},
        )
        bucket["requests"] += 1
        if served in ("memory", "disk"):
            bucket["hits"] += 1
        elif served == "coalesced":
            bucket["coalesced"] += 1
        else:
            bucket["misses"] += 1

    # -- compile plumbing ------------------------------------------------------

    def _compile_params(self, params: dict) -> tuple[QuantumCircuit, str, dict, int]:
        circuit = build_circuit(params.get("circuit"))
        backend = params.get("backend", "zac")
        if not isinstance(backend, str):
            raise RequestError("params.backend must be a string")
        options = build_options(backend, params.get("options"))
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise RequestError("params.priority must be an integer")
        return circuit, backend, options, priority

    @staticmethod
    def _parse_deadline(params: dict) -> float | None:
        raw = params.get("deadline_ms")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
            raise RequestError("params.deadline_ms must be a positive number")
        return float(raw) / 1000.0

    def _request_key(self, circuit: QuantumCircuit, backend: str, options: dict) -> str:
        from ..api.registry import UnknownBackendError

        try:
            key = self.service.cache_key(circuit, backend, None, options)
        except (UnknownBackendError, TypeError, ValueError) as exc:
            raise RequestError(str(exc)) from None
        return cache_key_digest(key)

    def _compile_thunk(
        self, circuit: QuantumCircuit, backend: str, options: dict, validate: bool
    ):
        def thunk() -> tuple[dict, str]:
            provenance: list = []
            result = self.service.compile_batch(
                [circuit],
                backend,
                None,
                parallel=0,
                validate=validate,
                cache=True,
                keep_programs=False,
                provenance=provenance,
                **options,
            )[0]
            payload = {
                "circuit": result.circuit_name,
                "backend": backend,
                "compiler": result.compiler_name,
                "architecture": result.architecture_name,
                "validated": result.validated,
                "summary": result.summary(),
            }
            return payload, provenance[0] or "compiled"

        return thunk

    def _cached_slim_payload(
        self, circuit: QuantumCircuit, backend: str, options: dict, validate: bool
    ) -> dict | None:
        """Peek both cache levels without compiling (the degraded fast path).

        Keys on the resolved default architecture exactly like
        ``compile_batch`` does, so the peek addresses the same cache cells.
        """
        from ..api.registry import UnknownBackendError, create_backend

        try:
            compiler = create_backend(backend, arch=None, **options)
            key_arch = getattr(compiler, "architecture", None)
            key = self.service.cache_key(circuit, backend, key_arch, options)
        except (UnknownBackendError, TypeError, ValueError) as exc:
            raise RequestError(str(exc)) from None
        hit = self.service.cache.get(key, need_programs=False)
        if hit is None and self.disk is not None:
            hit = self.disk.get(key)
        if hit is None or (validate and not hit.validated):
            return None
        return {
            "circuit": hit.circuit_name,
            "backend": backend,
            "compiler": hit.compiler_name,
            "architecture": hit.architecture_name,
            "validated": hit.validated,
            "summary": hit.summary(),
        }

    async def _serve_compile(
        self,
        circuit: QuantumCircuit,
        backend: str,
        options: dict,
        *,
        priority: int,
        batch: int | None = None,
        validate: bool = True,
        deadline_s: float | None = None,
    ) -> dict:
        degraded = False
        if (
            deadline_s is not None
            and self.degrade_depth is not None
            and self.scheduler.queue_depth() >= self.degrade_depth
        ):
            # Deadline pressure: a cached slim result *now* beats a perfect
            # result the client will never wait for.
            cached = self._cached_slim_payload(circuit, backend, options, validate)
            if cached is not None:
                self.degraded_served += 1
                self._count(backend, "memory")
                return {**cached, "served": "degraded-cache", "degraded": True}
            # No cached answer: fall back to a cheaper deterministic config.
            options, degraded = degrade_built_options(backend, options)
        key = self._request_key(circuit, backend, options)
        thunk = self._compile_thunk(circuit, backend, options, validate)
        (payload, served), coalesced = await self.scheduler.submit(
            key, thunk, priority=priority, batch=batch, deadline_s=deadline_s
        )
        if coalesced:
            served = "coalesced"
        if degraded:
            self.degraded_served += 1
            payload = {**payload, "degraded": True}
            if served == "compiled":
                served = "degraded"
        self._count(backend, served)
        payload = {**payload, "served": served}
        tamper = fault_point("daemon.result", label=backend)
        if tamper is not None and tamper.kind == "result-tamper":
            # Deliberately unhardened: nothing downstream re-verifies a
            # payload, so this injection MUST be caught by the chaos
            # harness's bit-identity invariant (a regression test that the
            # harness itself still bites).
            payload["summary"] = {
                name: (value + 1 if isinstance(value, (int, float)) and not isinstance(value, bool) else value)
                for name, value in payload.get("summary", {}).items()
            }
        return payload

    # -- methods ---------------------------------------------------------------

    async def _method_compile(self, params: dict) -> dict:
        circuit, backend, options, priority = self._compile_params(params)
        validate = params.get("validate", True)
        if not isinstance(validate, bool):
            raise RequestError("params.validate must be a boolean")
        deadline_s = self._parse_deadline(params)
        return await self._serve_compile(
            circuit,
            backend,
            options,
            priority=priority,
            validate=validate,
            deadline_s=deadline_s,
        )

    async def _method_validate(self, params: dict) -> dict:
        from ..zair.validation import ValidationError

        circuit, backend, options, priority = self._compile_params(params)
        try:
            payload = await self._serve_compile(
                circuit, backend, options, priority=priority, validate=True
            )
        except ValidationError as exc:
            return {
                "valid": False,
                "check": getattr(exc, "check", "generic"),
                "message": str(exc),
            }
        return {**payload, "valid": True}

    async def _method_sweep(self, params: dict) -> dict:
        specs = params.get("circuits")
        if not isinstance(specs, list) or not specs:
            raise RequestError("params.circuits must be a non-empty list")
        backend = params.get("backend", "zac")
        options = build_options(backend, params.get("options"))
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise RequestError("params.priority must be an integer")
        deadline_s = self._parse_deadline(params)
        circuits = [build_circuit(spec) for spec in specs]
        if self.workers > 1:
            return await self._sweep_fanout(circuits, backend, options, priority)
        batch = self.scheduler.next_batch()
        # One affinity group: the shards enqueue together and stay adjacent.
        results = await asyncio.gather(
            *(
                self._serve_compile(
                    circuit,
                    backend,
                    options,
                    priority=priority,
                    batch=batch,
                    deadline_s=deadline_s,
                )
                for circuit in circuits
            ),
            return_exceptions=True,
        )
        payloads: list[dict] = []
        for outcome in results:
            if isinstance(outcome, BaseException):
                payloads.append(_slot_error(outcome))
            else:
                payloads.append(outcome)
        return {"results": payloads, "batch": batch}

    async def _sweep_fanout(
        self, circuits: list[QuantumCircuit], backend: str, options: dict, priority: int
    ) -> dict:
        """Run a sweep as one worker-pool batch, shipping prefix snapshots.

        The whole batch is a single scheduler item (its shards are adjacent
        by construction); ``compile_batch`` coalesces within-batch
        duplicates and ``ship_prefix=True`` gives depth-ladder shards
        cross-process prefix reuse (the workers' prefix hits are merged back
        into this service's ``cache_stats()``).
        """
        keys = [
            self._request_key(circuit, backend, options) for circuit in circuits
        ]
        batch = self.scheduler.next_batch()

        def thunk() -> list[tuple[dict, str]]:
            provenance: list = []
            results = self.service.compile_batch(
                circuits,
                backend,
                None,
                parallel=self.workers,
                validate=True,
                return_exceptions=True,
                cache=True,
                keep_programs=False,
                ship_prefix=True,
                provenance=provenance,
                **options,
            )
            out: list[tuple[dict, str]] = []
            for result, served in zip(results, provenance):
                if isinstance(result, Exception):
                    out.append(({"error": str(result)}, "error"))
                    continue
                out.append(
                    (
                        {
                            "circuit": result.circuit_name,
                            "backend": backend,
                            "compiler": result.compiler_name,
                            "architecture": result.architecture_name,
                            "validated": result.validated,
                            "summary": result.summary(),
                        },
                        served or "compiled",
                    )
                )
            return out

        (outcomes, coalesced) = await self.scheduler.submit(
            cache_key_digest(tuple(keys)), thunk, priority=priority, batch=batch
        )
        payloads: list[dict] = []
        for payload, served in outcomes:
            if coalesced:
                served = "coalesced"
            if served != "error":
                self._count(backend, served)
                payload = {**payload, "served": served}
            payloads.append(payload)
        return {"results": payloads, "batch": batch}

    async def _method_stats(self, _params: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "backends": {
                name: dict(counters)
                for name, counters in sorted(self.backend_counters.items())
            },
            "scheduler": self.scheduler.stats(),
            "cache": self.service.cache_stats(),
        }

    async def _method_health(self, _params: dict) -> dict:
        payload = {
            "status": "draining" if self.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "degraded_served": self.degraded_served,
            "scheduler": self.scheduler.stats(),
        }
        if self.disk is not None:
            payload["disk"] = self.disk.stats()
        return payload

    async def _method_shutdown(self, _params: dict) -> dict:
        self.draining = True
        self._shutdown.set()
        return {"stopping": True}

    # -- dispatch --------------------------------------------------------------

    async def handle(self, request: dict) -> dict:
        """Serve one request object, returning the response object."""
        request_id = request.get("id")
        self.requests += 1
        method = request.get("method")
        handler = {
            "compile": self._method_compile,
            "validate": self._method_validate,
            "sweep": self._method_sweep,
            "stats": self._method_stats,
            "health": self._method_health,
            "shutdown": self._method_shutdown,
        }.get(method)
        if handler is None:
            return _error(request_id, f"unknown method {method!r}")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return _error(request_id, "params must be an object")
        try:
            result = await handler(params)
        except RequestError as exc:
            return _error(request_id, str(exc))
        except OverloadedError as exc:
            return _error(
                request_id, str(exc), kind="overloaded", retry_after_s=exc.retry_after_s
            )
        except DeadlineExceeded as exc:
            return _error(request_id, str(exc), kind="deadline")
        except SchedulerDraining as exc:
            return _error(request_id, str(exc), kind="draining")
        except Exception as exc:  # noqa: BLE001 - a request must never kill the daemon
            return _error(request_id, f"{type(exc).__name__}: {exc}")
        return {"id": request_id, "ok": True, "result": result}

    # -- transports ------------------------------------------------------------

    async def serve_stdio(self) -> None:
        """Newline-delimited JSON over this process's stdin/stdout."""
        loop = asyncio.get_running_loop()
        # The reader limit is the oversized-request guard: without it a
        # single huge line raises ValueError at 64 KiB and used to kill the
        # transport loop.
        reader = asyncio.StreamReader(limit=self.max_request_bytes)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, protocol, None, loop)
        await self._serve_stream(reader, writer, close_writer=False)

    async def serve_http(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Minimal localhost HTTP mode: each request is a ``POST /`` body.

        One request per connection; the response is the same JSON object the
        stdio transport would emit.  Prints the bound port on startup (port
        0 lets the OS pick) so test harnesses can connect.
        """
        server = await asyncio.start_server(self._serve_http_connection, host, port)
        bound = server.sockets[0].getsockname()[1]
        print(f"repro-serve listening on http://{host}:{bound}", flush=True)
        self.scheduler.start()
        async with server:
            await self._shutdown.wait()
        await self.scheduler.stop()

    async def _serve_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Keep-alive connection loop: serve requests until close/EOF.

        HTTP/1.1 semantics: the connection persists across requests unless
        the client sends ``Connection: close`` (HTTP/1.0 closes unless it
        sends ``Connection: keep-alive``).  Oversized bodies get 413 and a
        close -- the daemon will not read an unbounded body.
        """
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                parts = request_line.split()
                version = parts[2].decode("latin-1", "replace") if len(parts) >= 3 else "HTTP/1.0"
                content_length = 0
                connection = ""
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    name = name.strip().lower()
                    if name == "content-length":
                        try:
                            content_length = int(value.strip())
                        except ValueError:
                            content_length = -1
                    elif name == "connection":
                        connection = value.strip().lower()
                keep_alive = (
                    connection == "keep-alive"
                    or (version == "HTTP/1.1" and connection != "close")
                )
                if not request_line.startswith(b"POST"):
                    if content_length > 0:
                        await self._drain_body(reader, content_length)
                    _http_respond(
                        writer,
                        405,
                        {"ok": False, "error": {"message": "POST only"}},
                        keep_alive=keep_alive,
                    )
                elif content_length < 0 or content_length > self.max_request_bytes:
                    # Refuse to read an unbounded/oversized body; the unread
                    # bytes poison the connection, so close it.
                    keep_alive = False
                    _http_respond(
                        writer,
                        413,
                        _error(
                            None,
                            f"request body exceeds {self.max_request_bytes} bytes",
                            kind="oversized",
                        ),
                        keep_alive=False,
                    )
                else:
                    body = await reader.readexactly(content_length)
                    try:
                        request = json.loads(body)
                    except json.JSONDecodeError as exc:
                        _http_respond(
                            writer, 400, _error(None, f"bad json: {exc}"), keep_alive=keep_alive
                        )
                    else:
                        response = await self.handle(request)
                        _http_respond(writer, 200, response, keep_alive=keep_alive)
                await writer.drain()
                if not keep_alive or self._shutdown.is_set():
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass

    @staticmethod
    async def _drain_body(reader: asyncio.StreamReader, length: int) -> None:
        """Consume and discard a request body in bounded chunks."""
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    async def _serve_stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        close_writer: bool = True,
    ) -> None:
        """Shared stdio loop: spawn a task per request, write as they finish."""
        self.scheduler.start()
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(request: dict) -> None:
            response = await self.handle(request)
            async with write_lock:
                writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                await writer.drain()

        while not self._shutdown.is_set():
            read = asyncio.create_task(reader.readline())
            stop = asyncio.create_task(self._shutdown.wait())
            done, _ = await asyncio.wait(
                (read, stop), return_when=asyncio.FIRST_COMPLETED
            )
            if read not in done:
                read.cancel()
                stop.cancel()
                break
            stop.cancel()
            try:
                line = read.result()
            except ValueError:
                # Oversized line: the reader discarded its buffer; report a
                # structured error and keep serving (the line's tail arrives
                # as a separate junk line and gets a bad-json error).
                response = _error(
                    None,
                    f"request line exceeds {self.max_request_bytes} bytes",
                    kind="oversized",
                )
                async with write_lock:
                    writer.write((json.dumps(response, sort_keys=True) + "\n").encode())
                    await writer.drain()
                continue
            if not line:  # EOF: client went away
                self._shutdown.set()
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                async with write_lock:
                    writer.write(
                        (json.dumps(_error(None, f"bad json: {exc}")) + "\n").encode()
                    )
                    await writer.drain()
                continue
            task = asyncio.create_task(respond(request))
            pending.add(task)
            task.add_done_callback(pending.discard)

        # Drain: every accepted request writes its response before the
        # scheduler (and the daemon) goes away.
        self.draining = True
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await self.scheduler.stop()
        if close_writer:
            writer.close()


def _error(request_id: Any, message: str, *, kind: str | None = None, **fields: Any) -> dict:
    error: dict[str, Any] = {"message": message}
    if kind is not None:
        error["kind"] = kind
    error.update(fields)
    return {"id": request_id, "ok": False, "error": error}


def _slot_error(exc: BaseException) -> dict:
    """Structured per-slot error entry for sweep results."""
    entry: dict[str, Any] = {"error": str(exc)}
    if isinstance(exc, OverloadedError):
        entry["kind"] = "overloaded"
        entry["retry_after_s"] = exc.retry_after_s
    elif isinstance(exc, DeadlineExceeded):
        entry["kind"] = "deadline"
    elif isinstance(exc, SchedulerDraining):
        entry["kind"] = "draining"
    return entry


def _http_respond(
    writer: asyncio.StreamWriter, status: int, payload: dict, *, keep_alive: bool = False
) -> None:
    body = json.dumps(payload, sort_keys=True).encode()
    reason = {
        200: "OK",
        400: "Bad Request",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        503: "Service Unavailable",
    }[status]
    connection = "keep-alive" if keep_alive else "close"
    writer.write(
        (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode()
        + body
    )


__all__ = [
    "DEFAULT_DEGRADE_DEPTH",
    "DEFAULT_MAX_REQUEST_BYTES",
    "PROTOCOL_VERSION",
    "RequestError",
    "ServeDaemon",
    "build_circuit",
    "build_options",
    "degrade_built_options",
    "degraded_zac_config",
]
