"""Experiment E7 -- Fig. 14: effect of the number of AODs on fidelity.

Runs ZAC on the reference zoned architecture equipped with 1 to 4 AODs.
More AODs let rearrangement jobs of one epoch run in parallel, shortening
the schedule and reducing decoherence.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import create_backend
from ..arch.presets import reference_zoned_architecture, with_num_aods
from .harness import geometric_mean, records_by_compiler, run_matrix
from .reporting import format_table

#: AOD counts swept in Fig. 14.
AOD_COUNTS = (1, 2, 3, 4)


def run_aod_sweep(
    circuit_names: Sequence[str] | None = None,
    aod_counts: Sequence[int] = AOD_COUNTS,
    parallel: int | bool = 0,
) -> list[dict[str, object]]:
    """One row per circuit with a fidelity column per AOD count."""
    base = reference_zoned_architecture()
    compilers = {
        f"{count}AOD": create_backend("zac", arch=with_num_aods(base, count))
        for count in aod_counts
    }
    grouped = records_by_compiler(run_matrix(circuit_names, compilers, parallel=parallel))
    circuits = [record.circuit for record in grouped[next(iter(compilers))]]
    rows: list[dict[str, object]] = []
    for index, name in enumerate(circuits):
        row: dict[str, object] = {"circuit": name}
        for label in compilers:
            row[label] = grouped[label][index].fidelity
        rows.append(row)
    gmean: dict[str, object] = {"circuit": "GMean"}
    for label in compilers:
        gmean[label] = geometric_mean(float(row[label]) for row in rows)
    rows.append(gmean)
    return rows


def aod_gains(rows: list[dict[str, object]]) -> dict[str, float]:
    """Relative geomean fidelity gain of each AOD count over a single AOD."""
    gmean_row = rows[-1]
    base = float(gmean_row["1AOD"])
    return {
        label: float(value) / base - 1.0
        for label, value in gmean_row.items()
        if label not in ("circuit", "1AOD")
    }


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 14 table."""
    rows = run_aod_sweep(circuit_names, parallel=parallel)
    lines = [format_table(rows), "", "Gain over 1 AOD (geomean):"]
    for label, gain in aod_gains(rows).items():
        lines.append(f"  {label}: {gain * 100:+.1f}%")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
