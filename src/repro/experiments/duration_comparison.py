"""Experiment E3 -- Fig. 10: circuit duration across neutral-atom compilers."""

from __future__ import annotations

from collections.abc import Sequence

from .fidelity_breakdown import breakdown_compilers, run_fidelity_breakdown
from .harness import RunRecord, geometric_mean, records_by_compiler
from .reporting import format_table


def run_duration_comparison(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, object] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Same runs as the fidelity breakdown; the duration fields are reused."""
    return run_fidelity_breakdown(
        circuit_names, compilers or breakdown_compilers(), parallel=parallel
    )


def duration_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per circuit with a duration (ms) column per compiler."""
    grouped = records_by_compiler(records)
    compilers = list(grouped)
    circuits = [r.circuit for r in grouped[compilers[0]]]
    rows: list[dict[str, object]] = []
    for index, circuit in enumerate(circuits):
        row: dict[str, object] = {"circuit": circuit}
        for compiler in compilers:
            row[f"{compiler}_ms"] = grouped[compiler][index].duration_us / 1000.0
        rows.append(row)
    mean_row: dict[str, object] = {"circuit": "GMean"}
    for compiler in compilers:
        mean_row[f"{compiler}_ms"] = geometric_mean(
            r.duration_us / 1000.0 for r in grouped[compiler]
        )
    rows.append(mean_row)
    return rows


def duration_ratios(records: list[RunRecord]) -> dict[str, float]:
    """ZAC duration relative to each baseline (values < 1 mean ZAC is shorter)."""
    grouped = records_by_compiler(records)
    zac = geometric_mean(r.duration_us for r in grouped.get("ZAC", []))
    return {
        label: zac / geometric_mean(r.duration_us for r in rows)
        for label, rows in grouped.items()
        if label != "ZAC" and rows
    }


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 10 table."""
    records = run_duration_comparison(circuit_names, parallel=parallel)
    lines = [format_table(duration_table(records)), "", "ZAC duration ratio (geomean):"]
    for label, ratio in duration_ratios(records).items():
        lines.append(f"  vs {label}: {ratio:.2f}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
