"""Shared experiment harness.

Every experiment module runs one or more *compilers* (objects satisfying the
:class:`repro.api.Compiler` protocol) over a set of benchmark circuits and
collects :class:`RunRecord` rows.  Compiler dictionaries are built through
the backend registry (:func:`repro.api.create_backend`), so a newly
registered backend automatically becomes sweepable.  Helper functions
compute geometric means and render the rows as text tables or CSV, mirroring
the data behind each figure and table of the paper.

:func:`run_matrix` executes a full (circuit x compiler) sweep and can fan
the independent runs out over a process pool (``parallel=``, via
:func:`repro.api.fanout_map`), since every pair is an isolated compilation.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..api import Compiler, create_backend, fanout_map
from ..arch.presets import reference_zoned_architecture
from ..arch.spec import Architecture
from ..circuits.library.registry import PAPER_BENCHMARKS, get_benchmark
from ..core.config import ZACConfig


@dataclass
class RunRecord:
    """One (circuit, compiler) data point."""

    circuit: str
    compiler: str
    fidelity: float
    fidelity_2q: float
    fidelity_1q: float
    fidelity_transfer: float
    fidelity_decoherence: float
    duration_us: float
    num_2q_gates: int
    num_transfers: int
    num_excitations: int
    num_rydberg_stages: int
    compile_time_s: float


def run_compiler(compiler, circuit, compiler_name: str | None = None) -> RunRecord:
    """Compile ``circuit`` with ``compiler`` and flatten the result."""
    result = compiler.compile(circuit)
    summary = result.summary()
    name = compiler_name or getattr(compiler, "name", type(compiler).__name__)
    return RunRecord(
        circuit=circuit.name,
        compiler=name,
        fidelity=summary["fidelity"],
        fidelity_2q=summary["fidelity_2q"],
        fidelity_1q=summary["fidelity_1q"],
        fidelity_transfer=summary["fidelity_transfer"],
        fidelity_decoherence=summary["fidelity_decoherence"],
        duration_us=summary["duration_us"],
        num_2q_gates=int(summary["num_2q_gates"]),
        num_transfers=int(summary["num_transfers"]),
        num_excitations=int(summary["num_excitations"]),
        num_rydberg_stages=int(summary["num_rydberg_stages"]),
        compile_time_s=summary["compile_time_s"],
    )


def _run_pair(pair: tuple[str, object, object]) -> RunRecord:
    """Top-level worker (picklable) compiling one (compiler, circuit) pair."""
    label, compiler, circuit = pair
    return run_compiler(compiler, circuit, compiler_name=label)


def run_matrix(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, Compiler] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Run every (circuit, compiler) pair and return the records in sweep order.

    Args:
        circuit_names: Benchmarks to run (None means the full paper set).
        compilers: Compilers keyed by legend label (default: Fig. 8 set).
        parallel: Worker-process count for fanning the runs out over a
            process pool (see :func:`repro.api.fanout_map`); ``True`` means
            one per CPU, ``0``/``1``/``False`` run serially.  Compilers and
            circuits must be picklable (all in-repo ones are).

    Returns:
        One record per pair, ordered circuits-outer / compilers-inner
        regardless of ``parallel``, so grouping helpers see a stable order.
    """
    compilers = compilers or default_compilers()
    pairs = [
        (label, compiler, circuit)
        for _, circuit in benchmark_circuits(circuit_names)
        for label, compiler in compilers.items()
    ]
    return fanout_map(_run_pair, pairs, parallel=parallel)


def geometric_mean(values: Iterable[float], floor: float = 1e-12) -> float:
    """Geometric mean, flooring non-positive values at ``floor``."""
    values = [max(float(v), floor) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def benchmark_circuits(names: Sequence[str] | None = None):
    """Instantiate the requested benchmarks (default: the full paper set)."""
    selected = list(names) if names is not None else list(PAPER_BENCHMARKS)
    return [(name, get_benchmark(name)) for name in selected]


def default_compilers(
    architecture: Architecture | None = None,
    zac_config: ZACConfig | None = None,
    include_superconducting: bool = True,
) -> dict[str, Compiler]:
    """The six compilers compared in Fig. 8, keyed by their legend label."""
    arch = architecture or reference_zoned_architecture()
    compilers: dict[str, Compiler] = {}
    if include_superconducting:
        compilers["SC-Heron"] = create_backend("sc", variant="heron")
        compilers["SC-Grid"] = create_backend("sc", variant="grid")
    compilers["Monolithic-Atomique"] = create_backend("atomique")
    compilers["Monolithic-Enola"] = create_backend("enola")
    compilers["Zoned-NALAC"] = create_backend("nalac", arch=arch)
    compilers["Zoned-ZAC"] = create_backend(
        "zac", arch=arch, config=zac_config or ZACConfig.full()
    )
    return compilers


def records_by_compiler(records: list[RunRecord]) -> dict[str, list[RunRecord]]:
    """Group run records by compiler name, preserving circuit order."""
    grouped: dict[str, list[RunRecord]] = {}
    for record in records:
        grouped.setdefault(record.compiler, []).append(record)
    return grouped
