"""Experiment harnesses regenerating every table and figure of the paper.

=================  ==========================================================
Paper artifact     Module
=================  ==========================================================
Fig. 8             :mod:`repro.experiments.architecture_comparison`
Fig. 9             :mod:`repro.experiments.fidelity_breakdown`
Fig. 10            :mod:`repro.experiments.duration_comparison`
Fig. 11            :mod:`repro.experiments.ablation`
Fig. 12            :mod:`repro.experiments.scalability`
Fig. 13            :mod:`repro.experiments.optimality`
Fig. 14            :mod:`repro.experiments.aod_sweep`
Table II           :mod:`repro.experiments.table2`
Section VII-H      :mod:`repro.experiments.multi_zone`
Section VIII       :mod:`repro.experiments.ftqc_hiqp`
Section IX         :mod:`repro.experiments.zair_stats`
=================  ==========================================================

Beyond the paper's artifacts, :mod:`repro.experiments.fuzz` differentially
fuzzes every registered backend with generated workloads
(``python -m repro fuzz``; the ``ftqc`` and ``corpus`` profiles sweep
logical-block and real-corpus workloads), and
:mod:`repro.experiments.ingest` streams external OpenQASM files through
compile + validate with per-file error isolation
(``python -m repro ingest``).
"""

from .ablation import ABLATION_CONFIGS, run_ablation
from .aod_sweep import AOD_COUNTS, run_aod_sweep
from .architecture_comparison import improvement_summary, run_architecture_comparison
from .duration_comparison import run_duration_comparison
from .fidelity_breakdown import run_fidelity_breakdown
from .ftqc_hiqp import run_ftqc_hiqp
from .fuzz import (
    PROFILES,
    FuzzFailure,
    FuzzProfile,
    FuzzReport,
    minimize_circuit,
    replay_bundle,
    run_fuzz,
    sample_corpus_workloads,
    sample_workloads,
)
from .ingest import IngestRecord, IngestReport, ingest_dir, ingest_paths
from .harness import (
    RunRecord,
    benchmark_circuits,
    default_compilers,
    geometric_mean,
    run_compiler,
    run_matrix,
)
from .multi_zone import run_multi_zone
from .optimality import run_optimality
from .reporting import format_table, to_csv, write_csv
from .scalability import run_scalability
from .table2 import run_table2
from .zair_stats import run_zair_stats

__all__ = [
    "ABLATION_CONFIGS",
    "AOD_COUNTS",
    "PROFILES",
    "FuzzFailure",
    "FuzzProfile",
    "FuzzReport",
    "IngestRecord",
    "IngestReport",
    "RunRecord",
    "benchmark_circuits",
    "default_compilers",
    "format_table",
    "geometric_mean",
    "improvement_summary",
    "ingest_dir",
    "ingest_paths",
    "minimize_circuit",
    "replay_bundle",
    "run_fuzz",
    "sample_corpus_workloads",
    "sample_workloads",
    "run_ablation",
    "run_aod_sweep",
    "run_architecture_comparison",
    "run_compiler",
    "run_duration_comparison",
    "run_fidelity_breakdown",
    "run_ftqc_hiqp",
    "run_matrix",
    "run_multi_zone",
    "run_optimality",
    "run_scalability",
    "run_table2",
    "run_zair_stats",
    "to_csv",
    "write_csv",
]
