"""Experiment E4 -- Fig. 11: ablation of ZAC's compilation techniques.

Compares the four ZAC settings of the paper: ``Vanilla`` (trivial, static
placement, no reuse), ``dynPlace`` (dynamic placement), ``dynPlace+reuse``
(adds reuse-aware placement) and ``SA+dynPlace+reuse`` (adds the simulated-
annealing initial placement).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import create_backend
from ..arch.presets import reference_zoned_architecture
from ..core.config import ZACConfig
from .harness import (
    RunRecord,
    geometric_mean,
    records_by_compiler,
    run_matrix,
)
from .reporting import format_table

#: The four ablation settings in the paper's legend order.
ABLATION_CONFIGS: dict[str, ZACConfig] = {
    "Vanilla": ZACConfig.vanilla(),
    "dynPlace": ZACConfig.dyn_place(),
    "dynPlace+reuse": ZACConfig.dyn_place_reuse(),
    "SA+dynPlace+reuse": ZACConfig.full(),
}


def run_ablation(
    circuit_names: Sequence[str] | None = None,
    architecture=None,
    configs: dict[str, ZACConfig] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Run every ablation setting on every benchmark.

    Each ablation setting is a ``zac`` backend instance whose pass pipeline
    is composed for that configuration.
    """
    arch = architecture or reference_zoned_architecture()
    configs = configs or ABLATION_CONFIGS
    compilers = {
        label: create_backend("zac", arch=arch, config=config)
        for label, config in configs.items()
    }
    return run_matrix(circuit_names, compilers, parallel=parallel)


def ablation_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per circuit with a fidelity column per ablation setting."""
    grouped = records_by_compiler(records)
    settings = list(grouped)
    circuits = [r.circuit for r in grouped[settings[0]]]
    rows: list[dict[str, object]] = []
    for index, circuit in enumerate(circuits):
        row: dict[str, object] = {"circuit": circuit}
        for setting in settings:
            row[setting] = grouped[setting][index].fidelity
        rows.append(row)
    gmean_row: dict[str, object] = {"circuit": "GMean"}
    for setting in settings:
        gmean_row[setting] = geometric_mean(r.fidelity for r in grouped[setting])
    rows.append(gmean_row)
    return rows


def stepwise_improvements(records: list[RunRecord]) -> dict[str, float]:
    """Relative geomean fidelity gain of each setting over the previous one."""
    grouped = records_by_compiler(records)
    order = [s for s in ABLATION_CONFIGS if s in grouped]
    gains: dict[str, float] = {}
    previous = None
    for setting in order:
        value = geometric_mean(r.fidelity for r in grouped[setting])
        if previous is not None:
            gains[setting] = value / previous - 1.0
        previous = value
    return gains


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 11 table."""
    records = run_ablation(circuit_names, parallel=parallel)
    lines = [format_table(ablation_table(records)), "", "Step-wise geomean gains:"]
    for setting, gain in stepwise_improvements(records).items():
        lines.append(f"  {setting}: {gain * 100:+.1f}%")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
