"""Experiment E2 -- Fig. 9: fidelity breakdown per error source.

For Atomique, Enola, NALAC and ZAC, reports the two-qubit-gate fidelity
(including Rydberg-excitation errors), the atom-transfer fidelity, and the
decoherence fidelity per circuit plus geometric means.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..arch.presets import reference_zoned_architecture
from ..baselines import AtomiqueCompiler, EnolaCompiler, NALACCompiler
from ..core.compiler import ZACCompiler
from .harness import (
    RunRecord,
    benchmark_circuits,
    geometric_mean,
    records_by_compiler,
    run_compiler,
)
from .reporting import format_table


def breakdown_compilers(architecture=None) -> dict[str, object]:
    """The four neutral-atom compilers compared in Fig. 9."""
    arch = architecture or reference_zoned_architecture()
    return {
        "Atomique": AtomiqueCompiler(),
        "Enola": EnolaCompiler(),
        "NALAC": NALACCompiler(arch),
        "ZAC": ZACCompiler(arch),
    }


def run_fidelity_breakdown(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, object] | None = None,
) -> list[RunRecord]:
    """Collect per-error-source fidelity records."""
    compilers = compilers or breakdown_compilers()
    records: list[RunRecord] = []
    for _, circuit in benchmark_circuits(circuit_names):
        for label, compiler in compilers.items():
            records.append(run_compiler(compiler, circuit, compiler_name=label))
    return records


def breakdown_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per (circuit, compiler) with the three Fig. 9 panels."""
    rows = [
        {
            "circuit": r.circuit,
            "compiler": r.compiler,
            "2q_gate": r.fidelity_2q,
            "atom_transfer": r.fidelity_transfer,
            "decoherence": r.fidelity_decoherence,
        }
        for r in records
    ]
    for compiler, group in records_by_compiler(records).items():
        rows.append(
            {
                "circuit": "GMean",
                "compiler": compiler,
                "2q_gate": geometric_mean(r.fidelity_2q for r in group),
                "atom_transfer": geometric_mean(r.fidelity_transfer for r in group),
                "decoherence": geometric_mean(r.fidelity_decoherence for r in group),
            }
        )
    return rows


def main(circuit_names: Sequence[str] | None = None) -> str:
    """Run the experiment and return the formatted Fig. 9 table."""
    return format_table(breakdown_table(run_fidelity_breakdown(circuit_names)))


if __name__ == "__main__":  # pragma: no cover
    print(main())
