"""Experiment E2 -- Fig. 9: fidelity breakdown per error source.

For Atomique, Enola, NALAC and ZAC, reports the two-qubit-gate fidelity
(including Rydberg-excitation errors), the atom-transfer fidelity, and the
decoherence fidelity per circuit plus geometric means.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import Compiler, create_backend
from ..arch.presets import reference_zoned_architecture
from .harness import (
    RunRecord,
    geometric_mean,
    records_by_compiler,
    run_matrix,
)
from .reporting import format_table


def breakdown_compilers(architecture=None) -> dict[str, Compiler]:
    """The four neutral-atom compilers compared in Fig. 9."""
    arch = architecture or reference_zoned_architecture()
    return {
        "Atomique": create_backend("atomique"),
        "Enola": create_backend("enola"),
        "NALAC": create_backend("nalac", arch=arch),
        "ZAC": create_backend("zac", arch=arch),
    }


def run_fidelity_breakdown(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, Compiler] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Collect per-error-source fidelity records."""
    return run_matrix(
        circuit_names, compilers or breakdown_compilers(), parallel=parallel
    )


def breakdown_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per (circuit, compiler) with the three Fig. 9 panels."""
    rows = [
        {
            "circuit": r.circuit,
            "compiler": r.compiler,
            "2q_gate": r.fidelity_2q,
            "atom_transfer": r.fidelity_transfer,
            "decoherence": r.fidelity_decoherence,
        }
        for r in records
    ]
    for compiler, group in records_by_compiler(records).items():
        rows.append(
            {
                "circuit": "GMean",
                "compiler": compiler,
                "2q_gate": geometric_mean(r.fidelity_2q for r in group),
                "atom_transfer": geometric_mean(r.fidelity_transfer for r in group),
                "decoherence": geometric_mean(r.fidelity_decoherence for r in group),
            }
        )
    return rows


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 9 table."""
    return format_table(
        breakdown_table(run_fidelity_breakdown(circuit_names, parallel=parallel))
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
