"""Experiment E1 -- Fig. 8: circuit fidelity across architectures.

Compares the six compiler/architecture combinations of the paper (SC-Heron,
SC-Grid, Monolithic-Atomique, Monolithic-Enola, Zoned-NALAC, Zoned-ZAC) on
the benchmark set and reports per-circuit fidelity plus the geometric mean.
"""

from __future__ import annotations

from collections.abc import Sequence

from .harness import (
    RunRecord,
    geometric_mean,
    records_by_compiler,
    run_matrix,
)
from .reporting import format_table


def run_architecture_comparison(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, object] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Run every compiler on every benchmark and return the raw records.

    ``parallel`` fans the (circuit, compiler) runs out over worker processes
    (see :func:`repro.experiments.harness.run_matrix`).
    """
    return run_matrix(circuit_names, compilers, parallel=parallel)


def fidelity_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """Pivot the records into one row per circuit with a column per compiler."""
    grouped = records_by_compiler(records)
    compilers = list(grouped)
    circuits = [r.circuit for r in grouped[compilers[0]]]
    rows: list[dict[str, object]] = []
    for index, circuit in enumerate(circuits):
        row: dict[str, object] = {"circuit": circuit}
        for compiler in compilers:
            row[compiler] = grouped[compiler][index].fidelity
        rows.append(row)
    gmean_row: dict[str, object] = {"circuit": "GMean"}
    for compiler in compilers:
        gmean_row[compiler] = geometric_mean(r.fidelity for r in grouped[compiler])
    rows.append(gmean_row)
    return rows


def improvement_summary(records: list[RunRecord]) -> dict[str, float]:
    """Geometric-mean fidelity improvement of ZAC over every baseline."""
    grouped = records_by_compiler(records)
    zac = geometric_mean(r.fidelity for r in grouped.get("Zoned-ZAC", []))
    return {
        label: zac / geometric_mean(r.fidelity for r in rows)
        for label, rows in grouped.items()
        if label != "Zoned-ZAC" and rows
    }


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 8 table."""
    records = run_architecture_comparison(circuit_names, parallel=parallel)
    table = format_table(fidelity_table(records))
    ratios = improvement_summary(records)
    lines = [table, "", "ZAC fidelity improvement (geometric mean):"]
    for label, ratio in ratios.items():
        lines.append(f"  vs {label}: {ratio:.2f}x")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
