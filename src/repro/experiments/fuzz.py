"""Cross-backend differential fuzzing over generated workloads.

The harness samples random workloads from a size/shape grid
(:func:`sample_workloads`), compiles every one on every registered backend
(:func:`repro.compile_many` with ``return_exceptions=True``), replays each
emitted ZAIR program through :func:`repro.zair.validate_program`, and checks
the cross-backend metamorphic invariants:

``duration-positive``
    Every backend reports a strictly positive duration for a non-empty
    circuit.
``ideal-dominates``
    The idealised upper bound's fidelity is at least the real ZAC run's.
    (The bound idealises a *ZAC* compilation -- see
    :mod:`repro.baselines.ideal` -- so it dominates ZAC by construction.
    Backends with different device models are deliberately not compared
    against it: the superconducting error model, for one, has no movement
    term and can legitimately beat a movement-laden neutral-atom bound.)
``determinism``
    Two seeded runs of the same (circuit, backend) pair produce identical
    results (modulo wall-clock timing fields).
``legacy-conformance``
    Where a backend retains its hand-accumulated ``compile_legacy`` path, the
    interpreter-derived numbers match it within 1e-9.
``depth-monotonic``
    For a fixed generator and seed, circuit duration is non-decreasing in
    depth (the generators guarantee the shallower circuit is a gate-list
    prefix of the deeper one).
``ftqc-correspondence`` (profile ``ftqc``)
    The logical<->physical correspondence for FTQC block-level workloads:
    the compiled program executes exactly one 2Q gate per transversal block
    CNOT, and its Rydberg stage count is bounded by the block circuit's 2Q
    dependency depth from below and its 2Q gate count from above.
``ftqc-lowering-determinism`` (profile ``ftqc``)
    Rebuilding an FTQC workload from its descriptor -- and re-lowering its
    logical model through :func:`repro.ftqc.workloads.interaction_circuit`
    -- reproduces the sampled circuit gate for gate.

Sweeps are shaped by named :class:`FuzzProfile`\\ s (:data:`PROFILES`): the
``ftqc`` profile samples logical block workloads (tens to hundreds of
logical qubits) compiled on the logical-block architecture, and the
``corpus`` profile draws real OpenQASM files from the committed mini-corpus
(:mod:`repro.circuits.corpus`) instead of synthetic generators.  The
``chaos`` profile is different in kind: it delegates to
:mod:`repro.resilience.chaos`, driving seeded request storms through an
in-process ``repro serve`` daemon under sampled fault-injection plans
(``budget`` counts plans, and its invariants -- ``chaos-no-wedge``,
``chaos-terminal``, ``chaos-bit-identical``, ``chaos-health`` -- are
serving-level, not compile-level).

Failures are shrunk by bisecting the gate list (:func:`minimize_circuit`)
until no chunk can be removed without losing the failure, then dumped as
replayable JSON repro bundles: descriptor + minimized QASM + the serialized
results involved.  ``python -m repro fuzz --replay <bundle.json>`` re-runs
exactly the failed check (see :func:`replay_bundle`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import api
from ..arch.presets import logical_block_architecture
from ..circuits import qasm
from ..circuits.circuit import QuantumCircuit
from ..circuits.corpus import sample_corpus_circuits
from ..circuits.random import WorkloadDescriptor, Workload, generate, generator_names
from ..circuits.scheduling import forget_preprocess
from ..core.config import ZACConfig
from ..core.result import CompileResult
from ..ftqc.workloads import ftqc_model, interaction_circuit, is_ftqc_generator
from ..zair.validation import ValidationError

#: Generators sampled by default: every registered synthetic family.  FTQC
#: block-level generators are deliberately excluded -- they model a different
#: abstraction level (qubits are code blocks on the logical architecture) and
#: have their own ``ftqc`` profile -- so registering them does not silently
#: reshape the default sweep's sampling sequence.
DEFAULT_GENERATORS: tuple[str, ...] = tuple(
    name for name in generator_names() if not is_ftqc_generator(name)
)

#: ZAC configuration of the "throughput" compile profile: a lighter SA
#: schedule (the full pipeline and every ablation switch stay on).  The fuzz
#: harness checks hardware invariants and cross-backend metamorphic
#: properties -- not placement quality -- so it trades annealing effort for
#: sweep throughput.  The `ideal` bound idealises the same configuration, so
#: the ideal-dominates invariant is unaffected.
FUZZ_ZAC_CONFIG = ZACConfig(sa_iterations=100)

#: The "incremental" profile: the throughput SA schedule plus prefix-reuse
#: compilation (:mod:`repro.core.incremental`).  Depth ladders compile their
#: rungs shallowest-first, so every deeper rung resumes from the previous
#: one's cached prefix -- the O(delta) recompile path this profile exists to
#: exercise.  The ``ideal`` bound idealises the same configuration, so its
#: inner ZAC run shares the prefix-cache scope and the ideal-dominates
#: invariant stays well-posed.  The determinism invariant remains meaningful:
#: its ``fresh=True`` recompile bypasses only the *result* cache, and a
#: prefix-cache full-match resume is pinned bit-identical to the compile
#: that stored the entry.
FUZZ_ZAC_INCREMENTAL_CONFIG = ZACConfig(
    sa_iterations=100, incremental=True, warm_start=True
)

#: The ``ftqc`` profile's ZAC configuration: the throughput SA schedule
#: without SA initial placement -- the round-robin layout is how
#: :class:`repro.ftqc.logical.LogicalBlockCompiler` places code blocks, and
#: block counts reach 64+, where per-workload annealing of the initial
#: layout would dominate the sweep.
FUZZ_FTQC_ZAC_CONFIG = ZACConfig(sa_iterations=100, use_sa_initial_placement=False)

#: Named per-backend option profiles used by :func:`run_fuzz`.  Repro
#: bundles record the profile name so replays compile exactly as the sweep
#: did.
COMPILE_PROFILES: dict[str, dict[str, dict]] = {
    "default": {},
    "throughput": {
        "zac": {"config": FUZZ_ZAC_CONFIG},
        "ideal": {"config": FUZZ_ZAC_CONFIG},
    },
    "incremental": {
        "zac": {"config": FUZZ_ZAC_INCREMENTAL_CONFIG},
        "ideal": {"config": FUZZ_ZAC_INCREMENTAL_CONFIG},
    },
    "ftqc": {
        "zac": {"config": FUZZ_FTQC_ZAC_CONFIG},
        "ideal": {"config": FUZZ_FTQC_ZAC_CONFIG},
    },
    "corpus": {
        "zac": {"config": FUZZ_ZAC_CONFIG},
        "ideal": {"config": FUZZ_ZAC_CONFIG},
    },
}


def _profile_options(profile: str) -> dict[str, dict]:
    try:
        return COMPILE_PROFILES[profile]
    except KeyError:
        raise FuzzError(
            f"unknown compile profile {profile!r}; known: {', '.join(COMPILE_PROFILES)}"
        ) from None

#: Qubit-count axis of the default size/shape grid.
DEFAULT_NUM_QUBITS: tuple[int, ...] = (4, 6, 8, 12, 16)

#: Depth axis of the default size/shape grid.
DEFAULT_DEPTHS: tuple[int, ...] = (2, 4, 8)

#: Generators whose depth-prefix guarantee feeds the depth-monotonic ladder.
DEFAULT_LADDER_GENERATORS: tuple[str, ...] = ("brickwork", "qaoa_erdos_renyi")


@dataclass(frozen=True)
class FuzzProfile:
    """A named sweep shape: workload source, grid, backends, and invariants.

    ``run_fuzz`` arguments override any field; the profile supplies the
    defaults.  ``options`` is the per-backend compile-option table also used
    by bundle replay and :mod:`repro.experiments.ingest` (kept in
    :data:`COMPILE_PROFILES` under the same name, so old bundles resolve).
    """

    name: str
    options: dict[str, dict]
    backends: tuple[str, ...] | None = None  #: None = every registered backend
    generators: tuple[str, ...] | None = None  #: None = :data:`DEFAULT_GENERATORS`
    num_qubits: tuple[int, ...] = DEFAULT_NUM_QUBITS
    depths: tuple[int, ...] = DEFAULT_DEPTHS
    ladder_generators: tuple[str, ...] = DEFAULT_LADDER_GENERATORS
    corpus: bool = False  #: sample committed QASM corpus files, not generators
    ftqc: bool = False  #: check the logical<->physical correspondence invariants
    check_legacy: bool = True
    check_depth_monotonic: bool = True
    arch_factory: Any = None  #: () -> Architecture, None = backend default


#: The named sweep profiles selectable via ``python -m repro fuzz --profile``.
PROFILES: dict[str, FuzzProfile] = {
    "default": FuzzProfile(name="default", options=COMPILE_PROFILES["default"]),
    "throughput": FuzzProfile(
        name="throughput", options=COMPILE_PROFILES["throughput"]
    ),
    "incremental": FuzzProfile(
        name="incremental", options=COMPILE_PROFILES["incremental"]
    ),
    # Logical-scale FTQC: block-level workloads (a "qubit" is an [[8,3,2]]
    # code block; 8-64 blocks = 24-192 logical / 64-512 physical qubits)
    # compiled on the logical-block architecture, plus the correspondence
    # invariants.  NALAC joins ZAC because both lower block movements; the
    # ideal bound keeps ideal-dominates meaningful at this scale.
    "ftqc": FuzzProfile(
        name="ftqc",
        options=COMPILE_PROFILES["ftqc"],
        backends=("zac", "nalac", "ideal"),
        generators=("ftqc_hiqp", "ftqc_transversal"),
        num_qubits=(8, 16, 32, 64),
        depths=(2, 3, 5),
        ladder_generators=("ftqc_hiqp", "ftqc_transversal"),
        ftqc=True,
        arch_factory=lambda: logical_block_architecture(64),
    ),
    # Real-circuit corpus: seeded draws from the committed OpenQASM corpus.
    # Depth ladders need the generators' depth-prefix guarantee, which fixed
    # files cannot offer, so the depth-monotonic invariant is off.
    "corpus": FuzzProfile(
        name="corpus",
        options=COMPILE_PROFILES["corpus"],
        ladder_generators=(),
        corpus=True,
        check_depth_monotonic=False,
    ),
}


def _resolve_profile(profile: str) -> FuzzProfile:
    try:
        return PROFILES[profile]
    except KeyError:
        raise FuzzError(
            f"unknown fuzz profile {profile!r}; known: {', '.join(PROFILES)}"
        ) from None


#: Backends that retain a hand-accumulated ``compile_legacy`` oracle.
LEGACY_BACKENDS: tuple[str, ...] = ("enola", "atomique", "nalac", "sc")

#: Relative tolerance for the legacy-conformance invariant.
CONFORMANCE_REL_TOL = 1.0e-9

#: Metric count fields compared bit-exactly against the legacy oracles.
_COUNT_FIELDS = (
    "num_1q_gates",
    "num_2q_gates",
    "num_excitations",
    "num_transfers",
    "num_rydberg_stages",
    "num_movements",
)

#: Bundle schema version.
BUNDLE_SCHEMA = 1


class FuzzError(ValueError):
    """Raised for invalid fuzz-harness arguments or malformed repro bundles."""


# ---------------------------------------------------------------------------
# Workload sampling
# ---------------------------------------------------------------------------


def sample_workloads(
    budget: int,
    seed: int = 0,
    generators: tuple[str, ...] | None = None,
    num_qubits: tuple[int, ...] = DEFAULT_NUM_QUBITS,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
) -> list[Workload]:
    """Sample ``budget`` workloads from the (generator x qubits x depth) grid.

    One master ``numpy.random.Generator`` seeded with ``seed`` drives grid
    choices and per-workload sub-seeds, so a (budget, seed) pair names a
    reproducible workload set.
    """
    if budget < 1:
        raise FuzzError("fuzz budget must be at least 1")
    generators = tuple(generators or DEFAULT_GENERATORS)
    rng = np.random.default_rng(seed)
    workloads = []
    for _ in range(budget):
        name = generators[int(rng.integers(len(generators)))]
        n = int(num_qubits[int(rng.integers(len(num_qubits)))])
        depth = int(depths[int(rng.integers(len(depths)))])
        sub_seed = int(rng.integers(2**31))
        workloads.append(generate(name, seed=sub_seed, num_qubits=n, depth=depth))
    return workloads


def sample_corpus_workloads(
    budget: int, seed: int = 0, root: str | None = None
) -> list[Workload]:
    """Sample ``budget`` workloads from the committed OpenQASM corpus.

    Each draw is tagged with a ``corpus`` pseudo-descriptor recording the
    source file; bundles for corpus failures always carry the circuit as
    QASM text, so replay never needs to rebuild from the descriptor.
    """
    if budget < 1:
        raise FuzzError("fuzz budget must be at least 1")
    workloads = []
    for index, (path, circuit) in enumerate(
        sample_corpus_circuits(budget, seed=seed, root=root)
    ):
        descriptor = WorkloadDescriptor(
            generator="corpus", seed=seed, params={"file": path.name, "index": index}
        )
        workloads.append(Workload(circuit=circuit, descriptor=descriptor))
    return workloads


# ---------------------------------------------------------------------------
# Failures and reports
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """One check that failed during a fuzz run."""

    check: str  #: e.g. ``"validation:trap-occupancy"`` or ``"invariant:determinism"``
    backend: str
    message: str
    descriptor: dict[str, Any]
    circuit_qasm: str | None = None  #: minimized reproducer (QASM text)
    original_num_gates: int | None = None
    minimized_num_gates: int | None = None
    results: list[dict[str, Any]] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)  #: check-specific context
    bundle_path: str | None = None
    profile: str = "default"  #: compile profile the sweep ran under

    def to_bundle(self) -> dict[str, Any]:
        """The replayable JSON payload written to disk."""
        return {
            "kind": "fuzz-repro",
            "schema": BUNDLE_SCHEMA,
            "check": self.check,
            "profile": self.profile,
            "backend": self.backend,
            "message": self.message,
            "descriptor": self.descriptor,
            "circuit_qasm": self.circuit_qasm,
            "original_num_gates": self.original_num_gates,
            "minimized_num_gates": self.minimized_num_gates,
            "results": self.results,
            "extra": self.extra,
            "replay": "python -m repro fuzz --replay <this file>",
        }


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    budget: int
    seed: int
    backends: list[str]
    num_circuits: int = 0
    num_compiles: int = 0
    invariant_checks: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def circuits_per_s(self) -> float:
        return self.num_circuits / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def compiles_per_s(self) -> float:
        return self.num_compiles / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzzed {self.num_circuits} circuits x {len(self.backends)} backends "
            f"({', '.join(self.backends)})",
            f"  seed={self.seed} compiles={self.num_compiles} "
            f"elapsed={self.elapsed_s:.1f}s "
            f"({self.circuits_per_s:.2f} circuits/s, {self.compiles_per_s:.1f} compiles/s)",
        ]
        for name in sorted(self.invariant_checks):
            lines.append(f"  checked {name:18s}: {self.invariant_checks[name]}")
        if self.ok:
            lines.append("  all checks passed")
        else:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                where = f" -> {failure.bundle_path}" if failure.bundle_path else ""
                lines.append(
                    f"    [{failure.check}] backend={failure.backend}: "
                    f"{failure.message}{where}"
                )
        return lines


# ---------------------------------------------------------------------------
# Failure minimization (gate-list bisection)
# ---------------------------------------------------------------------------


def minimize_circuit(
    circuit: QuantumCircuit,
    failing,
    max_attempts: int = 120,
) -> QuantumCircuit:
    """Shrink ``circuit`` by bisecting its gate list while ``failing`` holds.

    Classic delta-debugging over the gate list: repeatedly try dropping
    contiguous chunks (halving the chunk size down to single gates), keeping
    any reduction for which ``failing(smaller_circuit)`` is still true.  Each
    predicate call typically recompiles, so ``max_attempts`` bounds the work.
    """
    gates = list(circuit.gates)

    def rebuild(kept: list) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits, f"{circuit.name}_min")
        out.extend(kept)
        return out

    attempts = 0
    chunk = max(1, len(gates) // 2)
    while chunk >= 1 and attempts < max_attempts:
        index = 0
        while index < len(gates) and attempts < max_attempts:
            trial = gates[:index] + gates[index + chunk:]
            attempts += 1
            if trial and failing(rebuild(trial)):
                gates = trial
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return rebuild(gates)


def _validation_check(
    backend: str,
    circuit: QuantumCircuit,
    options: dict | None = None,
    arch=None,
) -> str | None:
    """Compile + validate; return the failed check tag, or None if clean."""
    try:
        api.compile(circuit, backend=backend, arch=arch, validate=True, **(options or {}))
        return None
    except ValidationError as exc:
        return f"validation:{exc.check}"
    except Exception as exc:
        return f"compile-error:{type(exc).__name__}"


def _ftqc_correspondence_mismatch(
    result: CompileResult, circuit: QuantumCircuit
) -> str | None:
    """First logical<->physical correspondence violation, or None.

    At the block level every transversal block CNOT is one 2Q interaction:
    the compiled program must execute exactly ``circuit.num_2q_gates`` 2Q
    gates, and its Rydberg stage count is sandwiched between the circuit's
    2Q dependency depth (perfect stage packing) and its 2Q gate count (one
    gate per stage).
    """
    expected_2q = circuit.num_2q_gates
    compiled_2q = result.metrics.num_2q_gates
    if compiled_2q != expected_2q:
        return f"compiled 2Q gate count {compiled_2q} != logical CNOT count {expected_2q}"
    if expected_2q == 0:
        return None
    stages = result.metrics.num_rydberg_stages
    lower = circuit.two_qubit_depth()
    if not lower <= stages <= expected_2q:
        return (
            f"Rydberg stage count {stages} outside [2Q depth {lower}, "
            f"2Q gate count {expected_2q}]"
        )
    return None


def _ftqc_correspondence_check(
    backend: str,
    circuit: QuantumCircuit,
    options: dict | None = None,
    arch=None,
) -> str | None:
    """Recompile ``circuit`` and re-evaluate the correspondence invariant."""
    try:
        result = api.compile(
            circuit, backend=backend, arch=arch, validate=False, **(options or {})
        )
    except Exception:
        return None  # a circuit that no longer compiles is a different failure
    return _ftqc_correspondence_mismatch(result, circuit)


def _ftqc_lowering_mismatch(descriptor: WorkloadDescriptor) -> str | None:
    """Check descriptor -> circuit lowering determinism; message or None.

    Two independent rebuilds from the descriptor must agree, and lowering
    the regenerated logical model through
    :func:`repro.ftqc.workloads.interaction_circuit` must reproduce the
    same gate list.
    """
    first = descriptor.build()
    second = descriptor.build()
    if first.gates != second.gates:
        return "two descriptor rebuilds disagree"
    model = ftqc_model(descriptor.generator, seed=descriptor.seed, **descriptor.params)
    lowered = interaction_circuit(model)
    if lowered.gates != first.gates:
        return "model lowering disagrees with the generated circuit"
    return None


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------


def _stable_payload(result: CompileResult) -> dict[str, Any]:
    """Serialized result with wall-clock-dependent fields removed."""
    data = result.to_dict()
    data["metrics"].pop("compile_time_s", None)
    data["metrics"].pop("phase_times_s", None)
    return data


def _result_dict(result: CompileResult, backend: str) -> dict[str, Any]:
    data = result.to_dict()
    data["backend"] = backend
    return data


def run_fuzz(
    budget: int = 50,
    seed: int = 0,
    backends: list[str] | None = None,
    parallel: int | bool = 0,
    out_dir: str | None = None,
    generators: tuple[str, ...] | None = None,
    num_qubits: tuple[int, ...] | None = None,
    depths: tuple[int, ...] | None = None,
    check_determinism: bool = True,
    check_legacy: bool = True,
    check_depth_monotonic: bool = True,
    minimize: bool = True,
    max_minimize_attempts: int = 120,
    profile: str = "throughput",
    use_cache: bool = True,
) -> FuzzReport:
    """Differentially fuzz the registered backends with generated workloads.

    Compiles route through the warm compile service
    (:func:`repro.api.get_compile_service`): every emitted program is
    validated once *inside* the compile (no redundant second pass -- the
    ``validation`` counter counts these in-compile checks), repeated cells
    (e.g. the deepest rung of a depth ladder that equals a sampled workload,
    or the ideal bound's inner ZAC run) are served from the
    content-addressed cache, and the determinism invariant explicitly
    recompiles with ``fresh=True``.

    Args:
        budget: Number of workloads to sample.
        seed: Master seed; a (budget, seed) pair is fully reproducible.
        backends: Backend names to fuzz (default: every registered backend).
        parallel: Worker processes for the compile fan-out (see
            :func:`repro.compile_many`).
        out_dir: Directory for repro bundles; created lazily on the first
            failure (``None`` disables bundle dumping).
        generators / num_qubits / depths: The sampling grid.
        check_determinism: Recompile a subsample twice (cache bypassed) and
            require identical results.
        check_legacy: Compare interpreter metrics against ``compile_legacy``
            on a subsample for the backends that retain the legacy oracle.
        check_depth_monotonic: Compile depth ladders (prefix circuits of
            increasing depth) and require non-decreasing durations.
        minimize: Shrink failing circuits by gate-list bisection.
        max_minimize_attempts: Compile budget per minimization.
        profile: Sweep profile name (see :data:`PROFILES`): the profile
            supplies per-backend compile options plus default backends,
            workload source (generators vs. the QASM corpus), grid, target
            architecture, and invariant set; every explicit argument
            overrides it.  Recorded in repro bundles so replays match.
        use_cache: Route compiles through the content-addressed compile
            cache (the determinism invariant always bypasses it).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is True when nothing failed.
    """
    if profile == "chaos":
        # Fault-injection storms against the serve daemon: a different
        # harness entirely (budget counts fault plans, not workloads).
        from ..resilience.chaos import run_chaos

        return run_chaos(budget=budget, seed=seed, out_dir=out_dir, minimize=minimize)
    start = time.monotonic()
    sweep = _resolve_profile(profile)
    if backends:
        backends = list(backends)
    elif sweep.backends is not None:
        backends = list(sweep.backends)
    else:
        backends = api.available_backends()
    for name in backends:
        api.backend_spec(name)  # fail fast on unknown backends
    profile_opts = sweep.options
    arch = sweep.arch_factory() if sweep.arch_factory is not None else None
    check_legacy = check_legacy and sweep.check_legacy
    check_depth_monotonic = check_depth_monotonic and sweep.check_depth_monotonic
    num_qubits = tuple(num_qubits) if num_qubits else sweep.num_qubits
    depths = tuple(depths) if depths else sweep.depths

    def options_for(backend: str) -> dict:
        return profile_opts.get(backend, {})

    if sweep.corpus:
        workloads = sample_corpus_workloads(budget, seed=seed)
    else:
        workloads = sample_workloads(
            budget,
            seed=seed,
            generators=generators or sweep.generators,
            num_qubits=num_qubits,
            depths=depths,
        )
    circuits = [w.circuit for w in workloads]
    report = FuzzReport(budget=budget, seed=seed, backends=backends)
    report.num_circuits = len(circuits)

    def fail(
        check: str,
        backend: str,
        message: str,
        workload: Workload,
        results: list[tuple[str, CompileResult]] = (),
        minimize_predicate=None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        failure = FuzzFailure(
            check=check,
            backend=backend,
            message=message,
            descriptor=workload.descriptor.to_dict(),
            original_num_gates=len(workload.circuit),
            results=[_result_dict(r, b) for b, r in results],
            extra=extra or {},
            profile=profile,
        )
        circuit = workload.circuit
        if minimize and minimize_predicate is not None:
            circuit = minimize_circuit(
                workload.circuit, minimize_predicate, max_attempts=max_minimize_attempts
            )
            failure.minimized_num_gates = len(circuit)
        failure.circuit_qasm = qasm.dumps(circuit)
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"fuzz_fail_{len(report.failures):03d}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(failure.to_bundle(), handle, indent=2, sort_keys=True)
            failure.bundle_path = path
        report.failures.append(failure)

    # -- compile everything on every backend (failures captured per slot) ----
    # validate=True runs the validator once, inside the compile; the results
    # come back with ``validated`` set, so there is no second pass here --
    # the "validation" counter counts those in-compile (cached) checks.
    outcomes: dict[str, list[CompileResult | Exception]] = {}
    for backend in backends:
        outcomes[backend] = api.compile_many(
            circuits,
            backend=backend,
            arch=arch,
            parallel=parallel,
            validate=True,
            return_exceptions=True,
            cache=use_cache,
            **options_for(backend),
        )
        report.num_compiles += len(circuits)

    good: dict[str, list[CompileResult | None]] = {b: [None] * len(circuits) for b in backends}
    for backend in backends:
        for index, outcome in enumerate(outcomes[backend]):
            workload = workloads[index]
            if isinstance(outcome, ValidationError):
                expected = f"validation:{outcome.check}"
                fail(
                    expected,
                    backend,
                    f"{workload.circuit.name}: {outcome}",
                    workload,
                    minimize_predicate=lambda c, b=backend, e=expected: (
                        _validation_check(b, c, options_for(b), arch) == e
                    ),
                )
                continue
            if isinstance(outcome, Exception):
                expected = f"compile-error:{type(outcome).__name__}"
                fail(
                    expected,
                    backend,
                    f"{workload.circuit.name}: {outcome}",
                    workload,
                    minimize_predicate=lambda c, b=backend, e=expected: (
                        _validation_check(b, c, options_for(b), arch) == e
                    ),
                )
                continue
            assert outcome.validated, "compile_many(validate=True) must validate"
            good[backend][index] = outcome
            report.invariant_checks["validation"] = (
                report.invariant_checks.get("validation", 0) + 1
            )

    # -- invariant: duration strictly positive -------------------------------
    for backend in backends:
        for index, result in enumerate(good[backend]):
            if result is None:
                continue
            report.invariant_checks["duration-positive"] = (
                report.invariant_checks.get("duration-positive", 0) + 1
            )
            if not result.duration_us > 0.0:
                fail(
                    "invariant:duration-positive",
                    backend,
                    f"{workloads[index].circuit.name}: duration {result.duration_us}",
                    workloads[index],
                    results=[(backend, result)],
                )

    # -- invariant: the ideal bound dominates the real ZAC run ---------------
    # The bound is an idealisation of a ZAC compilation (perfect movement /
    # placement / reuse on the same gate counts), so it must dominate ZAC's
    # fidelity.  Other backends target different device models and are not
    # bounded by it.
    if "ideal" in backends and "zac" in backends:
        for index, ideal in enumerate(good["ideal"]):
            zac_result = good["zac"][index]
            if ideal is None or zac_result is None:
                continue
            report.invariant_checks["ideal-dominates"] = (
                report.invariant_checks.get("ideal-dominates", 0) + 1
            )
            if zac_result.total_fidelity > ideal.total_fidelity + 1e-9:
                fail(
                    "invariant:ideal-dominates",
                    "zac",
                    f"{workloads[index].circuit.name}: zac fidelity "
                    f"{zac_result.total_fidelity:.6g} exceeds ideal bound "
                    f"{ideal.total_fidelity:.6g}",
                    workloads[index],
                    results=[("ideal", ideal), ("zac", zac_result)],
                )

    # -- invariant: logical<->physical correspondence (ftqc profile) ---------
    # Block-level workloads pin the lowering: 2Q gate counts preserved and
    # Rydberg stages bounded by the logical circuit's 2Q depth / gate count.
    if sweep.ftqc:
        for backend in backends:
            for index, result in enumerate(good[backend]):
                if result is None:
                    continue
                report.invariant_checks["ftqc-correspondence"] = (
                    report.invariant_checks.get("ftqc-correspondence", 0) + 1
                )
                mismatch = _ftqc_correspondence_mismatch(result, circuits[index])
                if mismatch:
                    fail(
                        "invariant:ftqc-correspondence",
                        backend,
                        f"{workloads[index].circuit.name}: {mismatch}",
                        workloads[index],
                        results=[(backend, result)],
                        minimize_predicate=lambda c, b=backend: (
                            _ftqc_correspondence_check(b, c, options_for(b), arch)
                            is not None
                        ),
                    )

    # -- invariant: descriptor -> circuit lowering determinism (ftqc) --------
    if sweep.ftqc:
        for index, workload in enumerate(workloads):
            if not is_ftqc_generator(workload.descriptor.generator):
                continue
            report.invariant_checks["ftqc-lowering-determinism"] = (
                report.invariant_checks.get("ftqc-lowering-determinism", 0) + 1
            )
            mismatch = _ftqc_lowering_mismatch(workload.descriptor)
            if mismatch:
                fail(
                    "invariant:ftqc-lowering-determinism",
                    "workload",
                    f"{workload.circuit.name}: {mismatch}",
                    workload,
                )

    # A fixed stride keeps the expensive replay-based invariants (full
    # recompiles per circuit x backend) affordable while still touching
    # every backend and most generators: target ~6 sampled circuits
    # regardless of budget.  (The previous ``len // 8`` stride degenerated
    # to *every* circuit for budgets <= 15, which made the replay checks
    # dominate small sweeps.)
    subsample = range(0, len(circuits), max(1, -(-len(circuits) // 6)))

    # -- invariant: seeded determinism ---------------------------------------
    # The second compile passes fresh=True (bypassing the compile cache) and
    # drops the circuit's staging-cache entry first: it must genuinely
    # recompile end to end, not be served any layer of the first run back.
    if check_determinism:
        for index in subsample:
            forget_preprocess(circuits[index])
            for backend in backends:
                first = good[backend][index]
                if first is None:
                    continue
                report.invariant_checks["determinism"] = (
                    report.invariant_checks.get("determinism", 0) + 1
                )
                second = api.compile_many(
                    [circuits[index]],
                    backend=backend,
                    arch=arch,
                    validate=False,
                    fresh=True,
                    **options_for(backend),
                )[0]
                report.num_compiles += 1
                if _stable_payload(first) != _stable_payload(second):
                    fail(
                        "invariant:determinism",
                        backend,
                        f"{workloads[index].circuit.name}: two runs disagree",
                        workloads[index],
                        results=[(backend, first), (backend, second)],
                    )

    # -- invariant: interpreter == legacy accounting -------------------------
    if check_legacy:
        legacy_compilers = {
            backend: api.create_backend(backend, arch=arch, **options_for(backend))
            for backend in backends
            if backend in LEGACY_BACKENDS
        }
        for index in subsample:
            for backend in backends:
                if backend not in legacy_compilers or good[backend][index] is None:
                    continue
                report.invariant_checks["legacy-conformance"] = (
                    report.invariant_checks.get("legacy-conformance", 0) + 1
                )
                legacy = legacy_compilers[backend].compile_legacy(circuits[index])
                report.num_compiles += 1
                mismatch = _conformance_mismatch(good[backend][index], legacy)
                if mismatch:
                    fail(
                        "invariant:legacy-conformance",
                        backend,
                        f"{workloads[index].circuit.name}: {mismatch}",
                        workloads[index],
                        results=[(backend, good[backend][index]), (backend, legacy)],
                    )

    # -- invariant: duration monotone in circuit depth -----------------------
    # Ladders are derived from *sampled* workloads where possible: the
    # generators guarantee depth-prefix circuits under a fixed seed, so the
    # deepest rung IS the sampled workload and its compile is served from
    # the compile cache instead of recompiling (fresh ladders are generated
    # only when the sample contains no suitable workload).
    if check_depth_monotonic:
        ladder_rng = np.random.default_rng(seed)
        ladder_depths = sorted(set(depths))
        for generator in sweep.ladder_generators:
            sampled = next(
                (w for w in workloads if w.descriptor.generator == generator), None
            )
            if sampled is not None:
                n = int(sampled.descriptor.params["num_qubits"])
                ladder_seed = int(sampled.descriptor.seed)
                top_depth = int(sampled.descriptor.params["depth"])
                rung_depths = sorted(
                    {d for d in ladder_depths if d < top_depth} | {top_depth}
                )
                if len(rung_depths) < 2:
                    # A minimum-depth workload alone is no ladder: extend it
                    # upward so the monotonicity comparison actually runs.
                    above = [d for d in ladder_depths if d > top_depth]
                    rung_depths.append(above[0] if above else 2 * top_depth)
            else:
                n = int(num_qubits[int(ladder_rng.integers(len(num_qubits)))])
                ladder_seed = int(ladder_rng.integers(2**31))
                rung_depths = ladder_depths
            rungs = [
                generate(generator, seed=ladder_seed, num_qubits=n, depth=d)
                for d in rung_depths
            ]
            for backend in backends:
                previous = None
                previous_rung = None
                for rung in rungs:
                    try:
                        result = api.compile_many(
                            [rung.circuit],
                            backend=backend,
                            arch=arch,
                            cache=use_cache,
                            **options_for(backend),
                        )[0]
                    except ValidationError as exc:
                        expected = f"validation:{exc.check}"
                        fail(
                            expected,
                            backend,
                            f"{rung.circuit.name}: {exc}",
                            rung,
                            minimize_predicate=lambda c, b=backend, e=expected: (
                                _validation_check(b, c, options_for(b), arch) == e
                            ),
                        )
                        break
                    except Exception as exc:
                        fail(
                            f"compile-error:{type(exc).__name__}",
                            backend,
                            f"{rung.circuit.name}: {exc}",
                            rung,
                        )
                        break
                    report.num_compiles += 1
                    report.invariant_checks["depth-monotonic"] = (
                        report.invariant_checks.get("depth-monotonic", 0) + 1
                    )
                    if (
                        previous is not None
                        and result.duration_us < previous.duration_us * (1.0 - 1e-9)
                    ):
                        fail(
                            "invariant:depth-monotonic",
                            backend,
                            f"{rung.circuit.name}: duration {result.duration_us:.6g} "
                            f"below shallower circuit's {previous.duration_us:.6g}",
                            rung,
                            results=[(backend, previous), (backend, result)],
                            extra={"shallower": previous_rung.descriptor.to_dict()},
                        )
                    previous = result
                    previous_rung = rung

    report.elapsed_s = time.monotonic() - start
    return report


def _conformance_mismatch(new: CompileResult, old: CompileResult) -> str | None:
    """First interpreter-vs-legacy discrepancy beyond tolerance, or None."""
    for name in _COUNT_FIELDS:
        if getattr(new.metrics, name) != getattr(old.metrics, name):
            return (
                f"{name}: interpreter {getattr(new.metrics, name)} "
                f"!= legacy {getattr(old.metrics, name)}"
            )
    pairs = [
        ("duration_us", new.metrics.duration_us, old.metrics.duration_us),
        ("fidelity", new.fidelity.total, old.fidelity.total),
    ]
    for name, a, b in pairs:
        if abs(a - b) > CONFORMANCE_REL_TOL * max(abs(a), abs(b), 1.0):
            return f"{name}: interpreter {a!r} != legacy {b!r}"
    return None


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay_bundle(path: str) -> tuple[bool, str]:
    """Re-run the check recorded in a repro bundle.

    Returns:
        ``(reproduced, message)`` -- ``reproduced`` is True when the recorded
        failure still occurs on the current code.

    Raises:
        FuzzError: if the file is not a fuzz repro bundle.
    """
    with open(path, encoding="utf-8") as handle:
        bundle = json.load(handle)
    if bundle.get("kind") != "fuzz-repro":
        raise FuzzError(f"{path} is not a fuzz repro bundle")
    backend = bundle["backend"]
    check = bundle["check"]
    if check.startswith("chaos:"):
        # Chaos bundles replay a fault plan, not a circuit.
        from ..resilience.chaos import replay_chaos_bundle

        try:
            return replay_chaos_bundle(bundle)
        except (KeyError, TypeError, ValueError) as exc:
            raise FuzzError(f"bad chaos bundle {path}: {exc}") from None
    sweep = _resolve_profile(bundle.get("profile", "default"))
    profile_opts = sweep.options
    arch = sweep.arch_factory() if sweep.arch_factory is not None else None

    def options_for(name: str) -> dict:
        return profile_opts.get(name, {})

    opts = options_for(backend)
    if bundle.get("circuit_qasm"):
        circuit = qasm.loads(bundle["circuit_qasm"], name="fuzz_repro")
    else:
        circuit = WorkloadDescriptor.from_dict(bundle["descriptor"]).build()

    if check.startswith(("validation:", "compile-error:")):
        observed = _validation_check(backend, circuit, opts, arch)
        if observed == check:
            return True, f"{check} still reproduces on backend {backend}"
        return False, f"expected {check}, observed {observed or 'clean compile'}"

    if check == "invariant:ftqc-correspondence":
        mismatch = _ftqc_correspondence_check(backend, circuit, opts, arch)
        if mismatch:
            return True, f"correspondence still violated: {mismatch}"
        return False, "logical<->physical correspondence holds again"

    if check == "invariant:ftqc-lowering-determinism":
        descriptor = WorkloadDescriptor.from_dict(bundle["descriptor"])
        mismatch = _ftqc_lowering_mismatch(descriptor)
        if mismatch:
            return True, f"lowering still non-deterministic: {mismatch}"
        return False, "descriptor lowering deterministic again"

    if check == "invariant:duration-positive":
        result = api.compile(circuit, backend=backend, arch=arch, **opts)
        if not result.duration_us > 0.0:
            return True, f"duration still non-positive ({result.duration_us})"
        return False, f"duration now positive ({result.duration_us:.6g})"

    if check == "invariant:ideal-dominates":
        ideal = api.compile(circuit, backend="ideal", arch=arch, **options_for("ideal"))
        result = api.compile(circuit, backend=backend, arch=arch, **opts)
        if result.total_fidelity > ideal.total_fidelity + 1e-9:
            return True, (
                f"{backend} fidelity {result.total_fidelity:.6g} still exceeds "
                f"ideal {ideal.total_fidelity:.6g}"
            )
        return False, "ideal bound dominates again"

    if check == "invariant:determinism":
        first = api.compile(circuit, backend=backend, arch=arch, validate=False, **opts)
        second = api.compile(circuit, backend=backend, arch=arch, validate=False, **opts)
        if _stable_payload(first) != _stable_payload(second):
            return True, "two runs still disagree"
        return False, "runs agree again"

    if check == "invariant:legacy-conformance":
        compiler = api.create_backend(backend, arch=arch, **opts)
        mismatch = _conformance_mismatch(
            compiler.compile(circuit), compiler.compile_legacy(circuit)
        )
        if mismatch:
            return True, f"still mismatching: {mismatch}"
        return False, "interpreter matches legacy again"

    if check == "invariant:depth-monotonic":
        # The bundle's descriptor names the deeper rung; the shallower rung's
        # descriptor is recorded alongside it (fall back to a halved depth for
        # bundles written before the "extra" field existed).
        descriptor = WorkloadDescriptor.from_dict(bundle["descriptor"])
        shallower = bundle.get("extra", {}).get("shallower")
        if shallower is not None:
            shallow = WorkloadDescriptor.from_dict(shallower).build()
        else:
            depth = int(descriptor.params.get("depth", 2))
            params = dict(descriptor.params, depth=max(1, depth // 2))
            shallow = generate(descriptor.generator, seed=descriptor.seed, **params).circuit
        deep = descriptor.build()
        d_shallow = api.compile(shallow, backend=backend, arch=arch, **opts).duration_us
        d_deep = api.compile(deep, backend=backend, arch=arch, **opts).duration_us
        if d_deep < d_shallow * (1.0 - 1e-9):
            return True, f"duration still shrinks with depth ({d_shallow:.6g} -> {d_deep:.6g})"
        return False, "duration monotone again"

    raise FuzzError(f"bundle has unknown check {check!r}")
