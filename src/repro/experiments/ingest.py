"""`repro ingest`: stream external OpenQASM files through compile + validate.

The import guarantee (ROADMAP item 5b): every accepted file parses, survives
the parse -> emit -> parse round trip bit for bit, compiles on the requested
backend, and its emitted ZAIR program passes
:func:`repro.zair.validate_program`.  Every *rejected* file is isolated --
one malformed circuit in an MQT-Bench-style directory never aborts the
sweep -- and classified by failure stage:

``parse-error``
    The file is not parseable OpenQASM 2.0 (or uses unsupported gates).
``roundtrip-error``
    Emitting the parsed circuit and re-parsing it does not reproduce the
    gate list (a reader/writer bug, not a user error).
``compile-error``
    The backend raised while compiling.
``validation-error``
    The emitted program violates a hardware invariant (the record carries
    the machine-readable check tag).

Compiles run as one batch through the warm compile service
(``return_exceptions=True``), so ingest inherits caching, within-batch
coalescing, and per-slot error isolation; cache provenance is recorded per
file.  :class:`IngestReport` serializes to a machine-readable JSON document
(``kind: "ingest-report"``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import api
from ..circuits import qasm
from ..circuits.circuit import QuantumCircuit
from ..circuits.corpus import corpus_paths
from ..zair.validation import ValidationError
from .fuzz import _profile_options

#: Report schema version.
REPORT_SCHEMA = 1

#: Per-file terminal states, in pipeline order.
STATUSES = ("ok", "parse-error", "roundtrip-error", "compile-error", "validation-error")


@dataclass
class IngestRecord:
    """Outcome of one corpus file's trip through the ingest pipeline."""

    path: str
    status: str  #: one of :data:`STATUSES`
    num_qubits: int | None = None
    num_gates: int | None = None
    duration_us: float | None = None
    fidelity: float | None = None
    provenance: str | None = None  #: compile-cache provenance (memory/disk/compiled/...)
    check: str | None = None  #: validation check tag for ``validation-error``
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"path": self.path, "status": self.status}
        for name in (
            "num_qubits",
            "num_gates",
            "duration_us",
            "fidelity",
            "provenance",
            "check",
            "error",
        ):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data


@dataclass
class IngestReport:
    """Machine-readable outcome of one :func:`ingest_paths` sweep."""

    backend: str
    profile: str
    records: list[IngestRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def num_files(self) -> int:
        return len(self.records)

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def num_errors(self) -> int:
        return self.num_files - self.num_ok

    @property
    def ok(self) -> bool:
        return self.num_errors == 0

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "ingest-report",
            "schema": REPORT_SCHEMA,
            "backend": self.backend,
            "profile": self.profile,
            "num_files": self.num_files,
            "num_ok": self.num_ok,
            "num_errors": self.num_errors,
            "by_status": self.by_status(),
            "elapsed_s": self.elapsed_s,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary_lines(self) -> list[str]:
        lines = [
            f"ingested {self.num_files} files on backend {self.backend} "
            f"(profile {self.profile}): {self.num_ok} ok, {self.num_errors} rejected "
            f"in {self.elapsed_s:.1f}s"
        ]
        for status, count in sorted(self.by_status().items()):
            lines.append(f"  {status:17s}: {count}")
        for record in self.records:
            if not record.ok:
                lines.append(f"    [{record.status}] {record.path}: {record.error}")
        return lines


def ingest_paths(
    paths: list[str | Path],
    backend: str = "zac",
    profile: str = "throughput",
    parallel: int | bool = 0,
    use_cache: bool = True,
    arch=None,
) -> IngestReport:
    """Run OpenQASM files through parse -> round-trip -> compile -> validate.

    Args:
        paths: QASM files and/or directories (searched recursively).
        backend: Registry backend every accepted file is compiled on.
        profile: Compile-option profile (see
            :data:`repro.experiments.fuzz.COMPILE_PROFILES`).
        parallel: Worker processes for the compile fan-out.
        use_cache: Serve repeated files from the content-addressed cache.
        arch: Target architecture (``None`` = backend default).

    Returns:
        An :class:`IngestReport` with one :class:`IngestRecord` per file, in
        listing order; failures are isolated per file.
    """
    start = time.monotonic()
    options = _profile_options(profile).get(backend, {})
    files: list[Path] = []
    for entry in paths:
        files.extend(corpus_paths(entry))

    report = IngestReport(backend=backend, profile=profile)
    records = [IngestRecord(path=str(path), status="ok") for path in files]
    report.records = records

    # Stage 1+2: parse and round-trip, isolating failures per file.
    circuits: list[QuantumCircuit] = []
    compile_slots: list[int] = []
    for index, path in enumerate(files):
        record = records[index]
        try:
            circuit = qasm.load(str(path), name=path.stem)
        except qasm.QASMError as exc:
            record.status = "parse-error"
            record.error = str(exc)
            continue
        record.num_qubits = circuit.num_qubits
        record.num_gates = len(circuit)
        reparsed = qasm.loads(qasm.dumps(circuit), name=circuit.name)
        if reparsed.gates != circuit.gates or reparsed.num_qubits != circuit.num_qubits:
            record.status = "roundtrip-error"
            record.error = "parse -> emit -> parse does not reproduce the circuit"
            continue
        circuits.append(circuit)
        compile_slots.append(index)

    # Stage 3+4: one batch compile (validated in-compile) over the survivors.
    provenance: list[str] = []
    outcomes = api.get_compile_service().compile_batch(
        circuits,
        backend,
        arch,
        parallel=parallel,
        validate=True,
        return_exceptions=True,
        cache=use_cache,
        keep_programs=False,
        provenance=provenance,
        **options,
    )
    for position, (slot, outcome) in enumerate(zip(compile_slots, outcomes)):
        record = records[slot]
        if provenance:
            record.provenance = provenance[position]
        if isinstance(outcome, ValidationError):
            record.status = "validation-error"
            record.check = outcome.check
            record.error = str(outcome)
        elif isinstance(outcome, Exception):
            record.status = "compile-error"
            record.error = f"{type(outcome).__name__}: {outcome}"
        else:
            record.duration_us = outcome.duration_us
            record.fidelity = outcome.total_fidelity

    report.elapsed_s = time.monotonic() - start
    return report


def ingest_dir(
    root: str | Path,
    backend: str = "zac",
    **kwargs: Any,
) -> IngestReport:
    """Ingest every ``.qasm`` file under ``root`` (see :func:`ingest_paths`)."""
    return ingest_paths([root], backend=backend, **kwargs)


__all__ = [
    "REPORT_SCHEMA",
    "STATUSES",
    "IngestRecord",
    "IngestReport",
    "ingest_dir",
    "ingest_paths",
]
