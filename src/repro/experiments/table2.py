"""Experiment E8 -- Table II: fidelity breakdown and average duration, SC vs ZAC.

Reports, as geometric means over the benchmark set, the per-error-source
fidelity of the superconducting grid baseline and of ZAC on the reference
zoned architecture, plus the average circuit duration of each.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import create_backend
from ..arch.presets import reference_zoned_architecture
from .harness import geometric_mean, records_by_compiler, run_matrix
from .reporting import format_table


def run_table2(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> list[dict[str, object]]:
    """Two rows (SC grid, ZAC) with the Table II columns."""
    arch = reference_zoned_architecture()
    compilers = {
        "SC": create_backend("sc", variant="grid"),
        "ZAC": create_backend("zac", arch=arch),
    }
    grouped = records_by_compiler(run_matrix(circuit_names, compilers, parallel=parallel))
    rows: list[dict[str, object]] = []
    for label in compilers:
        records = grouped[label]
        rows.append(
            {
                "platform": label,
                "2q_gate": geometric_mean(r.fidelity_2q for r in records),
                "1q_gate": geometric_mean(r.fidelity_1q for r in records),
                "transfer": geometric_mean(r.fidelity_transfer for r in records)
                if label == "ZAC"
                else float("nan"),
                "decoherence": geometric_mean(r.fidelity_decoherence for r in records),
                "total": geometric_mean(r.fidelity for r in records),
                "avg_duration_us": sum(r.duration_us for r in records) / len(records),
            }
        )
    return rows


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Table II."""
    return format_table(run_table2(circuit_names, parallel=parallel))


if __name__ == "__main__":  # pragma: no cover
    print(main())
