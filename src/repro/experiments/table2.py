"""Experiment E8 -- Table II: fidelity breakdown and average duration, SC vs ZAC.

Reports, as geometric means over the benchmark set, the per-error-source
fidelity of the superconducting grid baseline and of ZAC on the reference
zoned architecture, plus the average circuit duration of each.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..arch.presets import reference_zoned_architecture
from ..baselines import SuperconductingCompiler
from ..core.compiler import ZACCompiler
from .harness import benchmark_circuits, geometric_mean, run_compiler
from .reporting import format_table


def run_table2(circuit_names: Sequence[str] | None = None) -> list[dict[str, object]]:
    """Two rows (SC grid, ZAC) with the Table II columns."""
    arch = reference_zoned_architecture()
    compilers = {"SC": SuperconductingCompiler.grid(), "ZAC": ZACCompiler(arch)}
    rows: list[dict[str, object]] = []
    for label, compiler in compilers.items():
        records = [
            run_compiler(compiler, circuit, compiler_name=label)
            for _, circuit in benchmark_circuits(circuit_names)
        ]
        rows.append(
            {
                "platform": label,
                "2q_gate": geometric_mean(r.fidelity_2q for r in records),
                "1q_gate": geometric_mean(r.fidelity_1q for r in records),
                "transfer": geometric_mean(r.fidelity_transfer for r in records)
                if label == "ZAC"
                else float("nan"),
                "decoherence": geometric_mean(r.fidelity_decoherence for r in records),
                "total": geometric_mean(r.fidelity for r in records),
                "avg_duration_us": sum(r.duration_us for r in records) / len(records),
            }
        )
    return rows


def main(circuit_names: Sequence[str] | None = None) -> str:
    """Run the experiment and return the formatted Table II."""
    return format_table(run_table2(circuit_names))


if __name__ == "__main__":  # pragma: no cover
    print(main())
