"""Experiment E9 -- Section VII-H: multiple entanglement zones.

Compares ``ising_n98`` on Arch1 (3x40 storage traps, one 6x10-site
entanglement zone) and Arch2 (two 3x10-site zones sandwiching the storage
zone).  The second zone shortens the distance to the rear rows of sites, so
Arch2 should achieve higher fidelity and shorter duration.
"""

from __future__ import annotations

from ..api import compile as api_compile
from ..arch.presets import small_dual_zone_architecture, small_single_zone_architecture
from ..circuits.library.registry import get_benchmark
from .reporting import format_table


def run_multi_zone(circuit_name: str = "ising_n98") -> list[dict[str, object]]:
    """One row per architecture with fidelity and duration for the circuit."""
    circuit = get_benchmark(circuit_name)
    architectures = {
        "Arch1 (1 zone)": small_single_zone_architecture(),
        "Arch2 (2 zones)": small_dual_zone_architecture(),
    }
    rows: list[dict[str, object]] = []
    for label, arch in architectures.items():
        result = api_compile(circuit, backend="zac", arch=arch)
        rows.append(
            {
                "architecture": label,
                "circuit": circuit_name,
                "fidelity": result.total_fidelity,
                "duration_ms": result.duration_us / 1000.0,
                "rydberg_stages": result.metrics.num_rydberg_stages,
                "num_movements": result.metrics.num_movements,
            }
        )
    return rows


def improvement(rows: list[dict[str, object]]) -> dict[str, float]:
    """Fidelity gain and duration reduction of Arch2 over Arch1."""
    arch1, arch2 = rows[0], rows[1]
    return {
        "fidelity_gain": float(arch2["fidelity"]) / float(arch1["fidelity"]) - 1.0,
        "duration_reduction": 1.0 - float(arch2["duration_ms"]) / float(arch1["duration_ms"]),
    }


def main(circuit_name: str = "ising_n98") -> str:
    """Run the experiment and return the formatted Section VII-H comparison."""
    rows = run_multi_zone(circuit_name)
    stats = improvement(rows)
    return "\n".join(
        [
            format_table(rows),
            "",
            f"Arch2 fidelity gain: {stats['fidelity_gain'] * 100:+.1f}%",
            f"Arch2 duration reduction: {stats['duration_reduction'] * 100:+.1f}%",
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
