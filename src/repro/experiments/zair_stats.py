"""Experiment E11 -- Section IX: ZAIR instruction statistics.

Reports the number of ZAIR (program-level) instructions per circuit gate and
the number of machine-level instructions per gate across the benchmark set.
The paper reports geometric means of 0.85 and 1.77 respectively.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import compile_many
from ..arch.presets import reference_zoned_architecture
from .harness import benchmark_circuits, geometric_mean
from .reporting import format_table


def run_zair_stats(
    circuit_names: Sequence[str] | None = None,
    parallel: int | bool = 0,
) -> list[dict[str, object]]:
    """One row per circuit with instruction-per-gate ratios."""
    arch = reference_zoned_architecture()
    names_and_circuits = benchmark_circuits(circuit_names)
    results = compile_many(
        [circuit for _, circuit in names_and_circuits],
        backend="zac",
        arch=arch,
        lower_jobs=True,
        parallel=parallel,
    )
    rows: list[dict[str, object]] = []
    for (name, _), result in zip(names_and_circuits, results):
        program = result.program
        rows.append(
            {
                "circuit": name,
                "zair_per_gate": program.zair_instructions_per_gate(),
                "machine_per_gate": program.machine_instructions_per_gate(),
                "num_zair_instructions": program.num_zair_instructions,
                "num_machine_instructions": program.num_machine_instructions,
            }
        )
    rows.append(
        {
            "circuit": "GMean",
            "zair_per_gate": geometric_mean(float(r["zair_per_gate"]) for r in rows),
            "machine_per_gate": geometric_mean(float(r["machine_per_gate"]) for r in rows),
            "num_zair_instructions": "",
            "num_machine_instructions": "",
        }
    )
    return rows


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Section IX statistics."""
    return format_table(run_zair_stats(circuit_names, parallel=parallel))


if __name__ == "__main__":  # pragma: no cover
    print(main())
