"""Experiment E6 -- Fig. 13: optimality gap of ZAC against ideal bounds.

Compares ZAC's fidelity with the perfect-movement, perfect-placement and
perfect-reuse upper bounds derived from the same compilation (Section VII-F).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import compile_many
from ..arch.presets import reference_zoned_architecture
from ..baselines.ideal import (
    PERFECT_MOVEMENT,
    PERFECT_PLACEMENT,
    PERFECT_REUSE,
    idealized_result,
)
from .harness import benchmark_circuits, geometric_mean
from .reporting import format_table

#: Fig. 13 legend order.
IDEAL_MODES = (PERFECT_REUSE, PERFECT_PLACEMENT, PERFECT_MOVEMENT)


def run_optimality(
    circuit_names: Sequence[str] | None = None,
    architecture=None,
    parallel: int | bool = 0,
) -> list[dict[str, object]]:
    """One row per circuit: ZAC fidelity and the three ideal-bound fidelities."""
    arch = architecture or reference_zoned_architecture()
    names_and_circuits = benchmark_circuits(circuit_names)
    results = compile_many(
        [circuit for _, circuit in names_and_circuits],
        backend="zac",
        arch=arch,
        parallel=parallel,
    )
    rows: list[dict[str, object]] = []
    for (name, _), zac in zip(names_and_circuits, results):
        row: dict[str, object] = {"circuit": name, "ZAC": zac.total_fidelity}
        for mode in IDEAL_MODES:
            row[mode] = idealized_result(zac, arch, mode).total_fidelity
        rows.append(row)
    gmean: dict[str, object] = {"circuit": "GMean"}
    for key in ("ZAC", *IDEAL_MODES):
        gmean[key] = geometric_mean(row[key] for row in rows)
    rows.append(gmean)
    return rows


def optimality_gaps(rows: list[dict[str, object]]) -> dict[str, float]:
    """Geomean relative gap of ZAC below each ideal bound (paper: 3%/7%/10%)."""
    gmean_row = rows[-1]
    gaps = {}
    for mode in IDEAL_MODES:
        bound = float(gmean_row[mode])
        zac = float(gmean_row["ZAC"])
        gaps[mode] = 1.0 - zac / bound if bound > 0 else 0.0
    return gaps


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 13 table."""
    rows = run_optimality(circuit_names, parallel=parallel)
    lines = [format_table(rows), "", "Optimality gaps (geomean):"]
    for mode, gap in optimality_gaps(rows).items():
        lines.append(f"  vs {mode}: {gap * 100:.1f}%")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
