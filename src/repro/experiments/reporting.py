"""Rendering experiment data as text tables and CSV."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(line[i]) for line in table)) for i in range(len(columns))
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table
    )
    return "\n".join([header, separator, body])


def to_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render a list of dictionaries as CSV text."""
    if not rows:
        return ""
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def escape(value: object) -> str:
        text = f"{value}"
        if "," in text or '"' in text:
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(escape(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"


def write_csv(path: str, rows: Sequence[Mapping[str, object]], columns=None) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_csv(rows, columns))
