"""Experiment E5 -- Fig. 12: compilation time versus achieved fidelity.

For every compiler (and every ZAC ablation setting) this reports the average
compilation time and the geometric-mean circuit fidelity over the benchmark
set -- the two axes of the paper's scatter plot.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..arch.presets import reference_zoned_architecture
from ..baselines import AtomiqueCompiler, EnolaCompiler, NALACCompiler
from ..core.compiler import ZACCompiler
from .ablation import ABLATION_CONFIGS
from .harness import RunRecord, benchmark_circuits, geometric_mean, run_compiler
from .reporting import format_table


def scalability_compilers(architecture=None) -> dict[str, object]:
    """Baselines plus every ZAC ablation setting (Fig. 12 markers)."""
    arch = architecture or reference_zoned_architecture()
    compilers: dict[str, object] = {
        "Atomique": AtomiqueCompiler(),
        "Enola": EnolaCompiler(),
        "NALAC": NALACCompiler(arch),
    }
    for label, config in ABLATION_CONFIGS.items():
        compilers[f"ZAC-{label}"] = ZACCompiler(arch, config)
    return compilers


def run_scalability(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, object] | None = None,
) -> list[RunRecord]:
    """Collect (compile time, fidelity) records for every compiler."""
    compilers = compilers or scalability_compilers()
    records: list[RunRecord] = []
    for _, circuit in benchmark_circuits(circuit_names):
        for label, compiler in compilers.items():
            records.append(run_compiler(compiler, circuit, compiler_name=label))
    return records


def scalability_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per compiler: mean compile time and geomean fidelity."""
    by_compiler: dict[str, list[RunRecord]] = {}
    for record in records:
        by_compiler.setdefault(record.compiler, []).append(record)
    rows = []
    for compiler, group in by_compiler.items():
        rows.append(
            {
                "compiler": compiler,
                "mean_compile_time_s": sum(r.compile_time_s for r in group) / len(group),
                "gmean_fidelity": geometric_mean(r.fidelity for r in group),
            }
        )
    return rows


def main(circuit_names: Sequence[str] | None = None) -> str:
    """Run the experiment and return the formatted Fig. 12 table."""
    return format_table(scalability_table(run_scalability(circuit_names)))


if __name__ == "__main__":  # pragma: no cover
    print(main())
