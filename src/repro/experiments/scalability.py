"""Experiment E5 -- Fig. 12: compilation time versus achieved fidelity.

For every compiler (and every ZAC ablation setting) this reports the average
compilation time and the geometric-mean circuit fidelity over the benchmark
set -- the two axes of the paper's scatter plot.  The (circuit x compiler)
sweep runs through :func:`repro.experiments.harness.run_matrix`, so it fans
out over worker processes with ``parallel=``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..api import Compiler, create_backend
from ..arch.presets import reference_zoned_architecture
from .ablation import ABLATION_CONFIGS
from .harness import RunRecord, geometric_mean, run_matrix
from .reporting import format_table


def scalability_compilers(architecture=None) -> dict[str, Compiler]:
    """Baselines plus every ZAC ablation setting (Fig. 12 markers)."""
    arch = architecture or reference_zoned_architecture()
    compilers: dict[str, Compiler] = {
        "Atomique": create_backend("atomique"),
        "Enola": create_backend("enola"),
        "NALAC": create_backend("nalac", arch=arch),
    }
    for label, config in ABLATION_CONFIGS.items():
        compilers[f"ZAC-{label}"] = create_backend("zac", arch=arch, config=config)
    return compilers


def run_scalability(
    circuit_names: Sequence[str] | None = None,
    compilers: dict[str, Compiler] | None = None,
    parallel: int | bool = 0,
) -> list[RunRecord]:
    """Collect (compile time, fidelity) records for every compiler."""
    return run_matrix(
        circuit_names, compilers or scalability_compilers(), parallel=parallel
    )


def scalability_table(records: list[RunRecord]) -> list[dict[str, object]]:
    """One row per compiler: mean compile time and geomean fidelity."""
    by_compiler: dict[str, list[RunRecord]] = {}
    for record in records:
        by_compiler.setdefault(record.compiler, []).append(record)
    rows = []
    for compiler, group in by_compiler.items():
        rows.append(
            {
                "compiler": compiler,
                "mean_compile_time_s": sum(r.compile_time_s for r in group) / len(group),
                "gmean_fidelity": geometric_mean(r.fidelity for r in group),
            }
        )
    return rows


def main(
    circuit_names: Sequence[str] | None = None, parallel: int | bool = 0
) -> str:
    """Run the experiment and return the formatted Fig. 12 table."""
    return format_table(scalability_table(run_scalability(circuit_names, parallel=parallel)))


if __name__ == "__main__":  # pragma: no cover
    print(main())
