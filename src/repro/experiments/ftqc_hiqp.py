"""Experiment E10 -- Section VIII: FTQC compilation of the hIQP circuit.

Compiles the hypercube-IQP circuit (384 logical qubits in 128 [[8,3,2]] code
blocks, 448 transversal CNOTs) at the block level with ZAC on the logical
architecture (3x5 entanglement sites) and reports the number of Rydberg
stages and the physical circuit duration.  The paper reports 35 stages and
117.847 ms.
"""

from __future__ import annotations

from ..ftqc.logical import LogicalBlockCompiler
from .reporting import format_table


def run_ftqc_hiqp(num_blocks: int = 128) -> dict[str, float]:
    """Compile the hIQP circuit and return its summary row."""
    compiler = LogicalBlockCompiler()
    result = compiler.compile_hiqp(num_blocks)
    return result.summary()


def main(num_blocks: int = 128) -> str:
    """Run the experiment and return a one-row table."""
    return format_table([run_ftqc_hiqp(num_blocks)])


if __name__ == "__main__":  # pragma: no cover
    print(main())
