"""The shared ZAIR interpreter: one metric/fidelity path for every backend.

Every registered backend lowers its schedule to a :class:`ZAIRProgram`;
this module replays such a program against its target
:class:`~repro.arch.spec.Architecture` and hardware parameters and derives
the :class:`~repro.fidelity.model.ExecutionMetrics` and fidelity breakdown
that used to be hand-accumulated by five independent code paths in
``baselines/``.  The replay is the single source of truth for reported
numbers: whatever a backend claims, the claim is re-derived from a validated
instruction stream describing a physically executable schedule.

Semantics per instruction (timings come from the embedded schedule, busy
times and error counts from the hardware parameters):

* ``init`` seeds the qubit-location map.
* ``1qGate`` adds one 1Q gate + ``t_1q`` busy time per listed qubit.
* ``rydberg`` adds its gate count, ``t_2q`` busy time for every gate qubit,
  and one excitation per idle qubit currently inside the illuminated zone.
* ``rearrangeJob`` / ``transferEpoch`` add two atom transfers (pickup +
  drop-off) and ``2 * t_transfer`` busy time per moved qubit and advance the
  location map; an epoch's ``transfer_count`` override is honoured (the
  perfect-reuse bound credits saved round trips).
* ``globalPulse`` (monolithic array) adds its gate counts, ``t_2q`` busy
  time for the active qubits, and one excitation per non-active qubit.
* ``gateLayer`` (fixed coupling / abstract 1Q layers) adds per-gate counts
  and busy time from the embedded per-gate durations.
* ``arrayMove`` contributes only time (the AOD array moves as one body).

The program's makespan (latest instruction end time) is the execution
duration.  Passing :class:`~repro.fidelity.params.SuperconductingParams`
selects the superconducting fidelity model (gates + decoherence over the
qubits the circuit actually touches), matching the superconducting
transpiler's legacy accounting; any other program is evaluated with the
neutral-atom model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.spec import Architecture
from ..fidelity.model import ExecutionMetrics, FidelityBreakdown, estimate_fidelity
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams, SuperconductingParams
from ..fidelity.sc_model import SCExecutionMetrics, estimate_sc_fidelity
from .columns import (
    BUSY_1Q,
    BUSY_2Q,
    BUSY_TRANSFER,
    OP_INIT,
    OP_LAYER,
)
from .instructions import (
    ArrayMoveInst,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
)
from .lowering import qloc_position
from .program import ZAIRProgram


class InterpreterError(ValueError):
    """Raised when a program cannot be replayed (e.g. missing architecture)."""


@dataclass
class InterpretedExecution:
    """Everything the interpreter derives from one program replay."""

    metrics: ExecutionMetrics
    fidelity: FidelityBreakdown


def interpret_program(
    program: ZAIRProgram,
    architecture: Architecture | None = None,
    params: NeutralAtomParams | SuperconductingParams = NEUTRAL_ATOM,
    vectorized: bool = True,
    fast: bool = True,
) -> InterpretedExecution:
    """Replay a ZAIR program and derive its execution metrics and fidelity.

    Args:
        program: The compiled program (any backend).
        architecture: Target architecture; required whenever the program
            uses trap locations (``init`` / ``rydberg`` / rearrangements).
        params: Hardware parameters.  A
            :class:`~repro.fidelity.params.SuperconductingParams` instance
            selects the superconducting fidelity model.
        vectorized: Evaluate the decoherence product with numpy for large
            qubit counts (neutral-atom model only).
        fast: Derive the metrics from the program's cached columnar view
            (:meth:`~repro.zair.program.ZAIRProgram.columns`) with array
            operations instead of the per-instruction reference replay.
            Both paths are equivalent -- bit-identical for integral counts
            and identically ordered float accumulations, within 1e-12
            otherwise (see :func:`interpret_program_reference`).

    Raises:
        InterpreterError: if the program references locations but no
            architecture was given.
    """
    if isinstance(params, SuperconductingParams):
        if fast:
            return _interpret_fixed_coupling_fast(program, params)
        return _interpret_fixed_coupling(program, params)
    if fast:
        return _interpret_neutral_atom_fast(program, architecture, params, vectorized)
    return _interpret_neutral_atom(program, architecture, params, vectorized)


def interpret_program_reference(
    program: ZAIRProgram,
    architecture: Architecture | None = None,
    params: NeutralAtomParams | SuperconductingParams = NEUTRAL_ATOM,
    vectorized: bool = True,
) -> InterpretedExecution:
    """The per-instruction reference replay (equivalence oracle).

    This is the original scalar interpreter, kept as the oracle the
    vectorized path is pinned against (``tests/test_verify_equivalence.py``):
    integral metrics and identically ordered float accumulations (per-qubit
    busy times, movement distances) must match bit for bit, everything else
    within 1e-12 relative.
    """
    return interpret_program(
        program, architecture=architecture, params=params, vectorized=vectorized,
        fast=False,
    )


# -- columnar fast paths -------------------------------------------------------


def _busy_from_columns(cols, params: NeutralAtomParams) -> np.ndarray | None:
    """Per-qubit busy times via ``np.bincount`` (program-order accumulation).

    Returns ``None`` when a qubit index falls outside ``[0, num_qubits)`` --
    the caller falls back to the reference replay so that error behaviour
    (``KeyError`` on unknown qubits) matches exactly.
    """
    qubits = cols.busy_qubits
    if qubits.size == 0:
        return np.zeros(cols.num_qubits, dtype=np.float64)
    if int(qubits.min()) < 0 or int(qubits.max()) >= cols.num_qubits:
        return None
    kinds = cols.busy_kinds
    weights = np.where(
        kinds == BUSY_1Q,
        params.t_1q_us,
        np.where(
            kinds == BUSY_2Q,
            params.t_2q_us,
            np.where(kinds == BUSY_TRANSFER, 2.0 * params.t_transfer_us, cols.busy_durations),
        ),
    )
    return np.bincount(qubits, weights=weights, minlength=cols.num_qubits)


def _interpret_neutral_atom_fast(
    program: ZAIRProgram,
    architecture: Architecture | None,
    params: NeutralAtomParams,
    vectorized: bool,
) -> InterpretedExecution:
    cols = program.columns(architecture)
    if cols.missing_architecture is not None:
        raise InterpreterError(cols.missing_architecture)
    if not cols.move_locs_valid:
        # A movement names a nonexistent trap: the reference replay raises
        # ArchitectureError from qloc_position -- reproduce it exactly.
        return _interpret_neutral_atom(program, architecture, params, vectorized)
    busy = _busy_from_columns(cols, params)
    if busy is None:  # out-of-range qubit indices: mirror the reference errors
        return _interpret_neutral_atom(program, architecture, params, vectorized)

    metrics = ExecutionMetrics(num_qubits=program.num_qubits)
    metrics.qubit_busy_us = dict(enumerate(busy.tolist()))
    metrics.num_1q_gates = cols.num_1q_gates
    metrics.num_2q_gates = cols.num_2q_gates
    metrics.num_rydberg_stages = cols.num_rydberg_stages
    metrics.num_transfers = cols.num_transfers
    metrics.num_movements = cols.num_movements
    metrics.num_excitations = cols.num_excitations
    metrics.total_move_distance_um = cols.total_move_distance_um
    metrics.duration_us = cols.duration_us
    _attach_program_counts(metrics, cols)
    fidelity = estimate_fidelity(metrics, params, vectorized=vectorized)
    return InterpretedExecution(metrics=metrics, fidelity=fidelity)


def _interpret_fixed_coupling_fast(
    program: ZAIRProgram, params: SuperconductingParams
) -> InterpretedExecution:
    cols = program.columns(None)
    non_layer = cols.opcodes != OP_LAYER
    if bool(non_layer.any()):
        first = program.instructions[int(np.argmax(non_layer))]
        raise InterpreterError(
            f"superconducting replay supports gate layers only, got "
            f"{type(first).__name__}"
        )
    qubits = cols.busy_qubits
    if qubits.size and (int(qubits.min()) < 0 or int(qubits.max()) >= 4 * cols.num_qubits + 1024):
        # Pathological indices (invalid program): the dict-based reference
        # handles them without allocating huge count arrays.
        return _interpret_fixed_coupling(program, params)

    if qubits.size:
        sums = np.bincount(qubits, weights=cols.busy_durations)
        touched = np.unique(qubits)
        busy_sorted = sums[touched]
        makespan = float(cols.fg_end.max()) if cols.fg_end is not None else 0.0
    else:
        touched = np.empty(0, dtype=np.int64)
        busy_sorted = np.empty(0, dtype=np.float64)
        makespan = 0.0

    sc_metrics = SCExecutionMetrics(num_qubits=len(touched))
    sc_metrics.num_1q_gates = cols.num_1q_gates
    sc_metrics.num_2q_gates = cols.num_2q_gates
    sc_metrics.duration_us = makespan
    sc_metrics.qubit_busy_us = dict(enumerate(busy_sorted.tolist()))
    fidelity = estimate_sc_fidelity(sc_metrics, params)

    metrics = ExecutionMetrics(num_qubits=sc_metrics.num_qubits)
    metrics.num_1q_gates = cols.num_1q_gates
    metrics.num_2q_gates = cols.num_2q_gates
    metrics.duration_us = makespan
    metrics.qubit_busy_us = dict(sc_metrics.qubit_busy_us)
    _attach_program_counts(metrics, cols)
    return InterpretedExecution(metrics=metrics, fidelity=fidelity)


def _attach_program_counts(metrics: ExecutionMetrics, cols) -> None:
    """Per-program instruction/epoch counts for throughput reporting."""
    metrics.num_instructions = cols.num_instructions - int(
        (cols.opcodes == OP_INIT).sum()
    )
    metrics.num_epochs = cols.num_epochs


# -- neutral-atom replay -------------------------------------------------------


def _interpret_neutral_atom(
    program: ZAIRProgram,
    architecture: Architecture | None,
    params: NeutralAtomParams,
    vectorized: bool,
) -> InterpretedExecution:
    metrics = ExecutionMetrics(num_qubits=program.num_qubits)
    metrics.qubit_busy_us = {q: 0.0 for q in range(program.num_qubits)}
    location: dict[int, QLoc] = {}

    # Map slm_id -> entanglement-zone index, for excitation accounting.
    zone_of_slm: dict[int, int] = {}
    if architecture is not None:
        for zone_index, zone in enumerate(architecture.entanglement_zones):
            for slm in zone.slms:
                zone_of_slm[slm.slm_id] = zone_index

    def require_architecture(inst: object) -> Architecture:
        if architecture is None:
            raise InterpreterError(
                f"cannot replay {type(inst).__name__} without an architecture"
            )
        return architecture

    for inst in program.instructions:
        if isinstance(inst, InitInst):
            for loc in inst.init_locs:
                location[loc.qubit] = loc
        elif isinstance(inst, OneQGateInst):
            metrics.num_1q_gates += inst.num_gates
            for loc in inst.locs:
                metrics.qubit_busy_us[loc.qubit] += params.t_1q_us
        elif isinstance(inst, RydbergInst):
            require_architecture(inst)
            gate_qubits = {q for gate in inst.gates for q in gate}
            metrics.num_2q_gates += len(inst.gates)
            metrics.num_rydberg_stages += 1
            for qubit in gate_qubits:
                metrics.qubit_busy_us[qubit] += params.t_2q_us
            idle_in_zone = sum(
                1
                for qubit, loc in location.items()
                if qubit not in gate_qubits
                and zone_of_slm.get(loc.slm_id) == inst.zone_id
            )
            metrics.num_excitations += idle_in_zone
        elif isinstance(inst, (RearrangeJob, TransferEpochInst)):
            arch = require_architecture(inst)
            if isinstance(inst, TransferEpochInst):
                metrics.num_transfers += inst.num_transfers
            else:
                metrics.num_transfers += 2 * inst.num_qubits
            metrics.num_movements += inst.num_qubits
            # Per-instruction subtotal first (matches the scheduler's
            # job_total_distance_um accumulation bit for bit).
            inst_distance = 0.0
            for begin, end in zip(inst.begin_locs, inst.end_locs):
                bx, by = qloc_position(arch, begin)
                ex, ey = qloc_position(arch, end)
                inst_distance += ((bx - ex) ** 2 + (by - ey) ** 2) ** 0.5
            metrics.total_move_distance_um += inst_distance
            for qubit in inst.qubits:
                metrics.qubit_busy_us[qubit] += 2.0 * params.t_transfer_us
            for loc in inst.end_locs:
                location[loc.qubit] = loc
        elif isinstance(inst, GlobalPulseInst):
            metrics.num_2q_gates += len(inst.gates)
            metrics.num_1q_gates += inst.extra_1q_gates
            metrics.num_rydberg_stages += 1
            metrics.num_excitations += program.num_qubits - len(set(inst.active_qubits))
            for qubit in inst.active_qubits:
                metrics.qubit_busy_us[qubit] += params.t_2q_us
        elif isinstance(inst, GateLayerInst):
            for gate in inst.gates:
                metrics.num_1q_gates += gate.num_1q_gates
                metrics.num_2q_gates += gate.num_2q_gates
                for qubit in gate.qubits:
                    metrics.qubit_busy_us[qubit] += gate.duration_us
        elif isinstance(inst, ArrayMoveInst):
            pass  # time only: the whole array moves, no per-qubit transfers

    metrics.duration_us = program.duration_us
    _attach_program_counts_reference(metrics, program)
    fidelity = estimate_fidelity(metrics, params, vectorized=vectorized)
    return InterpretedExecution(metrics=metrics, fidelity=fidelity)


def _attach_program_counts_reference(
    metrics: ExecutionMetrics, program: ZAIRProgram
) -> None:
    """Reference twin of :func:`_attach_program_counts` (no columns needed)."""
    metrics.num_instructions = program.num_zair_instructions
    metrics.num_epochs = sum(
        1
        for inst in program.instructions
        if isinstance(inst, (RearrangeJob, TransferEpochInst))
    )


# -- fixed-coupling (superconducting) replay -----------------------------------


def _interpret_fixed_coupling(
    program: ZAIRProgram, params: SuperconductingParams
) -> InterpretedExecution:
    """Replay a fixed-coupling program under the superconducting model.

    Mirrors the transpiler's legacy accounting: only the qubits the routed
    circuit actually touches decohere meaningfully, and their busy times are
    re-indexed densely in qubit order.
    """
    busy: dict[int, float] = {}
    num_1q = 0
    num_2q = 0
    makespan = 0.0
    for inst in program.instructions:
        if not isinstance(inst, GateLayerInst):
            raise InterpreterError(
                f"superconducting replay supports gate layers only, got "
                f"{type(inst).__name__}"
            )
        for gate in inst.gates:
            num_1q += gate.num_1q_gates
            num_2q += gate.num_2q_gates
            for qubit in gate.qubits:
                busy[qubit] = busy.get(qubit, 0.0) + gate.duration_us
            makespan = max(makespan, gate.end_time)

    sc_metrics = SCExecutionMetrics(num_qubits=len(busy))
    sc_metrics.num_1q_gates = num_1q
    sc_metrics.num_2q_gates = num_2q
    sc_metrics.duration_us = makespan
    sc_metrics.qubit_busy_us = {
        index: busy[qubit] for index, qubit in enumerate(sorted(busy))
    }
    fidelity = estimate_sc_fidelity(sc_metrics, params)

    metrics = ExecutionMetrics(num_qubits=sc_metrics.num_qubits)
    metrics.num_1q_gates = num_1q
    metrics.num_2q_gates = num_2q
    metrics.duration_us = makespan
    metrics.qubit_busy_us = dict(sc_metrics.qubit_busy_us)
    _attach_program_counts_reference(metrics, program)
    return InterpretedExecution(metrics=metrics, fidelity=fidelity)
