"""ZAIR instruction set (paper Section IX, Fig. 17).

ZAIR (Zoned Architecture Intermediate Representation) has four program-level
instruction types -- ``init``, ``1qGate``, ``rydberg`` and ``rearrangeJob`` --
plus three machine-level instructions (``activate``, ``deactivate``, ``move``)
that a rearrangement job is lowered into.

A qubit location (``qloc``) is the 4-tuple ``(qubit, slm_id, row, col)``:
qubit ``q`` sits at row ``r`` / column ``c`` of SLM array ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class QLoc:
    """Location of one qubit in an SLM trap."""

    qubit: int
    slm_id: int
    row: int
    col: int

    def to_list(self) -> list[int]:
        """The paper's 4-element list form ``[q, a, r, c]``."""
        return [self.qubit, self.slm_id, self.row, self.col]

    @classmethod
    def from_list(cls, data: list[int]) -> "QLoc":
        return cls(int(data[0]), int(data[1]), int(data[2]), int(data[3]))

    @property
    def trap(self) -> tuple[int, int, int]:
        """The physical trap (slm_id, row, col) without the qubit."""
        return (self.slm_id, self.row, self.col)


@dataclass
class Instruction:
    """Base class for ZAIR instructions with schedule times (us)."""

    begin_time: float = field(default=0.0, kw_only=True)
    end_time: float = field(default=0.0, kw_only=True)

    @property
    def duration_us(self) -> float:
        return self.end_time - self.begin_time


@dataclass
class InitInst(Instruction):
    """Initial qubit placement; appears exactly once, first."""

    init_locs: list[QLoc] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "init", "init_locs": [loc.to_list() for loc in self.init_locs]}


@dataclass
class OneQGateInst(Instruction):
    """A stage of single-qubit (U3) gates applied by the Raman laser.

    ``locs`` gives where each affected qubit sits; ``unitaries`` holds the
    matching (theta, phi, lambda) angles in the same order.
    """

    locs: list[QLoc] = field(default_factory=list)
    unitaries: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.locs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "1qGate",
            "unitary": [list(u) for u in self.unitaries],
            "locs": [loc.to_list() for loc in self.locs],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class RydbergInst(Instruction):
    """One global Rydberg exposure of entanglement zone ``zone_id``.

    ``gates`` records which qubit pairs are entangled (bookkeeping only; the
    hardware instruction is just "turn on the laser over the zone").
    """

    zone_id: int = 0
    gates: list[tuple[int, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "rydberg",
            "zone_id": self.zone_id,
            "gates": [list(g) for g in self.gates],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


# ---------------------------------------------------------------------------
# Machine-level instructions inside a rearrangement job
# ---------------------------------------------------------------------------

@dataclass
class ActivateInst:
    """Turn on AOD rows/columns at the given physical coordinates."""

    row_id: list[int] = field(default_factory=list)
    row_y: list[float] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)
    col_x: list[float] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "activate",
            "row_id": self.row_id,
            "row_y": self.row_y,
            "col_id": self.col_id,
            "col_x": self.col_x,
        }


@dataclass
class DeactivateInst:
    """Turn off AOD rows/columns, dropping their qubits into SLM traps."""

    row_id: list[int] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "deactivate", "row_id": self.row_id, "col_id": self.col_id}


@dataclass
class MoveInst:
    """Continuously move activated AOD rows/columns between coordinates."""

    row_id: list[int] = field(default_factory=list)
    row_y_begin: list[float] = field(default_factory=list)
    row_y_end: list[float] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)
    col_x_begin: list[float] = field(default_factory=list)
    col_x_end: list[float] = field(default_factory=list)

    @property
    def max_displacement_um(self) -> float:
        """Largest coordinate change of any row or column in this move."""
        dys = [abs(b - e) for b, e in zip(self.row_y_begin, self.row_y_end)]
        dxs = [abs(b - e) for b, e in zip(self.col_x_begin, self.col_x_end)]
        return max(dys + dxs, default=0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "move",
            "row_id": self.row_id,
            "row_y_begin": self.row_y_begin,
            "row_y_end": self.row_y_end,
            "col_id": self.col_id,
            "col_x_begin": self.col_x_begin,
            "col_x_end": self.col_x_end,
        }


MachineInst = ActivateInst | DeactivateInst | MoveInst


# ---------------------------------------------------------------------------
# Baseline-backend instructions
#
# The baseline compilers lower to ZAIR too, but some of their execution
# models are more abstract than the zoned machine model: the superconducting
# transpiler schedules gates on a fixed coupling graph, Atomique translates a
# whole AOD array at once, and the idealised bounds assume every movement of
# an epoch is compatible.  The instructions below capture those semantics so
# one interpreter (:mod:`repro.zair.interpret`) can replay any backend's
# program.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FixedGate:
    """One gate of a fixed-coupling (superconducting-style) schedule.

    ``kind`` is ``"1q"``, ``"2q"`` or ``"swap"`` (a SWAP counts as three
    native two-qubit gates).  ``duration_us`` is stored separately from the
    derived end time so replays accumulate exactly the durations the
    scheduler used.
    """

    kind: str
    qubits: tuple[int, ...]
    begin_time: float = 0.0
    duration_us: float = 0.0

    @property
    def end_time(self) -> float:
        return self.begin_time + self.duration_us

    @property
    def num_1q_gates(self) -> int:
        return 1 if self.kind == "1q" else 0

    @property
    def num_2q_gates(self) -> int:
        if self.kind == "2q":
            return 1
        if self.kind == "swap":
            return 3
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "qubits": list(self.qubits),
            "begin_time": self.begin_time,
            "duration_us": self.duration_us,
        }


@dataclass
class GateLayerInst(Instruction):
    """A batch of gates addressed by qubit index (no trap semantics).

    Used by the fixed-coupling superconducting backend (where qubits are
    nodes of a coupling graph) and for abstract single-qubit layers of
    monolithic baselines that do not track trap positions.  Per-gate
    schedule times are embedded; the instruction's own ``begin_time`` /
    ``end_time`` are the envelope.
    """

    gates: list[FixedGate] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "gateLayer",
            "gates": [gate.to_dict() for gate in self.gates],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class GlobalPulseInst(Instruction):
    """A global Rydberg exposure of a whole monolithic array (Atomique model).

    Unlike :class:`RydbergInst` there is no trap co-location requirement: the
    laser covers every qubit.  ``active_qubits`` are the qubits engaged in
    gates or shuttling during the pulse (they accrue gate time, everyone else
    accrues an excitation error); ``extra_1q_gates`` folds in the
    single-qubit conjugations of SWAP insertions that have no schedule
    footprint of their own.
    """

    gates: list[tuple[int, int]] = field(default_factory=list)
    active_qubits: list[int] = field(default_factory=list)
    extra_1q_gates: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "globalPulse",
            "gates": [list(g) for g in self.gates],
            "active_qubits": list(self.active_qubits),
            "extra_1q_gates": self.extra_1q_gates,
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class ArrayMoveInst(Instruction):
    """A rigid translation of a whole AOD array (Atomique model).

    No per-qubit atom transfers happen (the array moves as one body), so the
    instruction contributes time but neither transfers nor movements.
    """

    distance_um: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "arrayMove",
            "distance_um": self.distance_um,
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class TransferEpochInst(Instruction):
    """An abstract movement epoch without a concrete per-AOD schedule.

    Used by the idealised bounds (Section VII-F), which assume every movement
    of an epoch is compatible -- an assumption a concrete
    :class:`RearrangeJob` could not satisfy without violating the AOD
    ordering constraints.  Trap occupancy is still replayed and validated;
    only the AOD non-crossing check is waived.

    ``transfer_count`` overrides the default two atom transfers per moved
    qubit (the perfect-reuse bound credits saved round trips).
    """

    begin_locs: list[QLoc] = field(default_factory=list)
    end_locs: list[QLoc] = field(default_factory=list)
    transfer_count: int | None = None

    def __post_init__(self) -> None:
        if len(self.begin_locs) != len(self.end_locs):
            raise ValueError("begin_locs and end_locs must have the same length")
        if [l.qubit for l in self.begin_locs] != [l.qubit for l in self.end_locs]:
            raise ValueError("begin_locs and end_locs must list the same qubits in order")

    @property
    def qubits(self) -> list[int]:
        return [loc.qubit for loc in self.begin_locs]

    @property
    def num_qubits(self) -> int:
        return len(self.begin_locs)

    @property
    def num_transfers(self) -> int:
        if self.transfer_count is not None:
            return self.transfer_count
        return 2 * self.num_qubits

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "transferEpoch",
            "begin_locs": [loc.to_list() for loc in self.begin_locs],
            "end_locs": [loc.to_list() for loc in self.end_locs],
            "transfer_count": self.transfer_count,
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class RearrangeJob(Instruction):
    """A rearrangement job: one AOD moves a batch of qubits between traps.

    ``begin_locs`` and ``end_locs`` have identical shape; qubit ``i`` of the
    job starts at ``begin_locs[i]`` and finishes at ``end_locs[i]``.
    """

    aod_id: int = 0
    begin_locs: list[QLoc] = field(default_factory=list)
    end_locs: list[QLoc] = field(default_factory=list)
    insts: list[MachineInst] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.begin_locs) != len(self.end_locs):
            raise ValueError("begin_locs and end_locs must have the same length")
        begin_qubits = [loc.qubit for loc in self.begin_locs]
        end_qubits = [loc.qubit for loc in self.end_locs]
        if begin_qubits != end_qubits:
            raise ValueError("begin_locs and end_locs must list the same qubits in order")

    @property
    def qubits(self) -> list[int]:
        """Qubits moved by this job."""
        return [loc.qubit for loc in self.begin_locs]

    @property
    def num_qubits(self) -> int:
        return len(self.begin_locs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "rearrangeJob",
            "aod_id": self.aod_id,
            "begin_locs": [loc.to_list() for loc in self.begin_locs],
            "end_locs": [loc.to_list() for loc in self.end_locs],
            "insts": [inst.to_dict() for inst in self.insts],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


ZAIRInstruction = (
    InitInst
    | OneQGateInst
    | RydbergInst
    | RearrangeJob
    | GateLayerInst
    | GlobalPulseInst
    | ArrayMoveInst
    | TransferEpochInst
)

#: Instruction types whose semantics reference trap locations; a program
#: containing any of these must begin with an ``InitInst``.
LOCATION_INSTRUCTIONS = (InitInst, OneQGateInst, RydbergInst, RearrangeJob, TransferEpochInst)
