"""ZAIR instruction set (paper Section IX, Fig. 17).

ZAIR (Zoned Architecture Intermediate Representation) has four program-level
instruction types -- ``init``, ``1qGate``, ``rydberg`` and ``rearrangeJob`` --
plus three machine-level instructions (``activate``, ``deactivate``, ``move``)
that a rearrangement job is lowered into.

A qubit location (``qloc``) is the 4-tuple ``(qubit, slm_id, row, col)``:
qubit ``q`` sits at row ``r`` / column ``c`` of SLM array ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class QLoc:
    """Location of one qubit in an SLM trap."""

    qubit: int
    slm_id: int
    row: int
    col: int

    def to_list(self) -> list[int]:
        """The paper's 4-element list form ``[q, a, r, c]``."""
        return [self.qubit, self.slm_id, self.row, self.col]

    @classmethod
    def from_list(cls, data: list[int]) -> "QLoc":
        return cls(int(data[0]), int(data[1]), int(data[2]), int(data[3]))

    @property
    def trap(self) -> tuple[int, int, int]:
        """The physical trap (slm_id, row, col) without the qubit."""
        return (self.slm_id, self.row, self.col)


@dataclass
class Instruction:
    """Base class for ZAIR instructions with schedule times (us)."""

    begin_time: float = field(default=0.0, kw_only=True)
    end_time: float = field(default=0.0, kw_only=True)

    @property
    def duration_us(self) -> float:
        return self.end_time - self.begin_time


@dataclass
class InitInst(Instruction):
    """Initial qubit placement; appears exactly once, first."""

    init_locs: list[QLoc] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "init", "init_locs": [loc.to_list() for loc in self.init_locs]}


@dataclass
class OneQGateInst(Instruction):
    """A stage of single-qubit (U3) gates applied by the Raman laser.

    ``locs`` gives where each affected qubit sits; ``unitaries`` holds the
    matching (theta, phi, lambda) angles in the same order.
    """

    locs: list[QLoc] = field(default_factory=list)
    unitaries: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.locs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "1qGate",
            "unitary": [list(u) for u in self.unitaries],
            "locs": [loc.to_list() for loc in self.locs],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


@dataclass
class RydbergInst(Instruction):
    """One global Rydberg exposure of entanglement zone ``zone_id``.

    ``gates`` records which qubit pairs are entangled (bookkeeping only; the
    hardware instruction is just "turn on the laser over the zone").
    """

    zone_id: int = 0
    gates: list[tuple[int, int]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "rydberg",
            "zone_id": self.zone_id,
            "gates": [list(g) for g in self.gates],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


# ---------------------------------------------------------------------------
# Machine-level instructions inside a rearrangement job
# ---------------------------------------------------------------------------

@dataclass
class ActivateInst:
    """Turn on AOD rows/columns at the given physical coordinates."""

    row_id: list[int] = field(default_factory=list)
    row_y: list[float] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)
    col_x: list[float] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "activate",
            "row_id": self.row_id,
            "row_y": self.row_y,
            "col_id": self.col_id,
            "col_x": self.col_x,
        }


@dataclass
class DeactivateInst:
    """Turn off AOD rows/columns, dropping their qubits into SLM traps."""

    row_id: list[int] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"type": "deactivate", "row_id": self.row_id, "col_id": self.col_id}


@dataclass
class MoveInst:
    """Continuously move activated AOD rows/columns between coordinates."""

    row_id: list[int] = field(default_factory=list)
    row_y_begin: list[float] = field(default_factory=list)
    row_y_end: list[float] = field(default_factory=list)
    col_id: list[int] = field(default_factory=list)
    col_x_begin: list[float] = field(default_factory=list)
    col_x_end: list[float] = field(default_factory=list)

    @property
    def max_displacement_um(self) -> float:
        """Largest coordinate change of any row or column in this move."""
        dys = [abs(b - e) for b, e in zip(self.row_y_begin, self.row_y_end)]
        dxs = [abs(b - e) for b, e in zip(self.col_x_begin, self.col_x_end)]
        return max(dys + dxs, default=0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "move",
            "row_id": self.row_id,
            "row_y_begin": self.row_y_begin,
            "row_y_end": self.row_y_end,
            "col_id": self.col_id,
            "col_x_begin": self.col_x_begin,
            "col_x_end": self.col_x_end,
        }


MachineInst = ActivateInst | DeactivateInst | MoveInst


@dataclass
class RearrangeJob(Instruction):
    """A rearrangement job: one AOD moves a batch of qubits between traps.

    ``begin_locs`` and ``end_locs`` have identical shape; qubit ``i`` of the
    job starts at ``begin_locs[i]`` and finishes at ``end_locs[i]``.
    """

    aod_id: int = 0
    begin_locs: list[QLoc] = field(default_factory=list)
    end_locs: list[QLoc] = field(default_factory=list)
    insts: list[MachineInst] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.begin_locs) != len(self.end_locs):
            raise ValueError("begin_locs and end_locs must have the same length")
        begin_qubits = [loc.qubit for loc in self.begin_locs]
        end_qubits = [loc.qubit for loc in self.end_locs]
        if begin_qubits != end_qubits:
            raise ValueError("begin_locs and end_locs must list the same qubits in order")

    @property
    def qubits(self) -> list[int]:
        """Qubits moved by this job."""
        return [loc.qubit for loc in self.begin_locs]

    @property
    def num_qubits(self) -> int:
        return len(self.begin_locs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "rearrangeJob",
            "aod_id": self.aod_id,
            "begin_locs": [loc.to_list() for loc in self.begin_locs],
            "end_locs": [loc.to_list() for loc in self.end_locs],
            "insts": [inst.to_dict() for inst in self.insts],
            "begin_time": self.begin_time,
            "end_time": self.end_time,
        }


ZAIRInstruction = InitInst | OneQGateInst | RydbergInst | RearrangeJob
