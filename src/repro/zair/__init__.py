"""ZAIR: the zoned-architecture intermediate representation."""

from .instructions import (
    ActivateInst,
    ArrayMoveInst,
    DeactivateInst,
    FixedGate,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    MachineInst,
    MoveInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
    ZAIRInstruction,
)
from .columns import ZAIRColumns, build_columns
from .interpret import (
    InterpretedExecution,
    InterpreterError,
    interpret_program,
    interpret_program_reference,
)
from .lowering import (
    job_duration_us,
    job_max_distance_um,
    job_total_distance_um,
    lower_job,
    lower_program_jobs,
    qloc_position,
)
from .program import StaleColumnsError, ZAIRProgram
from .validation import (
    ValidationError,
    validate_job_ordering,
    validate_program,
    validate_program_reference,
)

__all__ = [
    "ActivateInst",
    "ArrayMoveInst",
    "DeactivateInst",
    "FixedGate",
    "GateLayerInst",
    "GlobalPulseInst",
    "InitInst",
    "InterpretedExecution",
    "InterpreterError",
    "MachineInst",
    "MoveInst",
    "OneQGateInst",
    "QLoc",
    "RearrangeJob",
    "RydbergInst",
    "StaleColumnsError",
    "TransferEpochInst",
    "ValidationError",
    "ZAIRColumns",
    "ZAIRInstruction",
    "ZAIRProgram",
    "build_columns",
    "interpret_program",
    "interpret_program_reference",
    "job_duration_us",
    "job_max_distance_um",
    "job_total_distance_um",
    "lower_job",
    "lower_program_jobs",
    "qloc_position",
    "validate_job_ordering",
    "validate_program",
    "validate_program_reference",
]
