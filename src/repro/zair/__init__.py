"""ZAIR: the zoned-architecture intermediate representation."""

from .instructions import (
    ActivateInst,
    DeactivateInst,
    InitInst,
    MachineInst,
    MoveInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    ZAIRInstruction,
)
from .lowering import (
    job_duration_us,
    job_max_distance_um,
    job_total_distance_um,
    lower_job,
    lower_program_jobs,
    qloc_position,
)
from .program import ZAIRProgram
from .validation import ValidationError, validate_job_ordering, validate_program

__all__ = [
    "ActivateInst",
    "DeactivateInst",
    "InitInst",
    "MachineInst",
    "MoveInst",
    "OneQGateInst",
    "QLoc",
    "RearrangeJob",
    "RydbergInst",
    "ValidationError",
    "ZAIRInstruction",
    "ZAIRProgram",
    "job_duration_us",
    "job_max_distance_um",
    "job_total_distance_um",
    "lower_job",
    "lower_program_jobs",
    "qloc_position",
    "validate_job_ordering",
    "validate_program",
]
