"""Columnar (structure-of-arrays) view of a ZAIR program.

:class:`ZAIRColumns` flattens a program's instruction list into numpy arrays
-- opcodes, schedule times, per-qubit busy events, every qubit-location
reference (with roles and epoch/sequence ids), Rydberg gate pairs, and
fixed-coupling gate schedules -- built in **one** Python pass over the
instructions, followed by a handful of whole-array numpy computations
(global trap ids, physical coordinates).  The vectorized interpreter
(:mod:`repro.zair.interpret`) and validator (:mod:`repro.zair.validation`)
then replace their per-instruction / per-qubit Python loops with a fixed
number of array operations over this view, which is where the 5x-and-up
verify speedups on large programs come from.

Equivalence contract
--------------------

Everything derived from the columns must match the per-instruction reference
paths bit-for-bit where the quantity is an integer or a sum of identically
ordered float additions, and within 1e-12 otherwise:

* per-qubit busy times are accumulated with ``np.bincount``, whose
  per-bin accumulation order equals program order -- bit-identical to the
  reference dict accumulation;
* trap coordinates use the same affine map the reference evaluates
  (``offset + index * sep``), one IEEE operation per term -- bit-identical
  whether evaluated scalar or vectorized;
* movement distances are accumulated **scalar**, in reference order, from
  the vectorized coordinates (compound expressions like
  ``(dx**2 + dy**2) ** 0.5`` are *not* bit-stable between Python's ``pow``
  and numpy's ufuncs, and the ZAC conformance suite pins
  ``total_move_distance_um`` exactly).

Caching and invalidation
------------------------

``ZAIRProgram.columns(architecture)`` caches the view on the program, keyed
by the architecture's identity, so one compile's interpret + validate pair
builds it once.  The cache assumes the program is **frozen after
compilation**:

* pickling and ``copy.deepcopy`` drop the cache (``ZAIRProgram.__getstate__``),
  so mutated copies -- e.g. the negative-path validator tests -- are always
  re-flattened;
* in-place mutation of an already-viewed program must be followed by
  ``ZAIRProgram.invalidate_columns()``; the test-suite convention is to
  mutate deep copies instead.
"""

from __future__ import annotations

import operator as _operator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .instructions import (
    ArrayMoveInst,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    OneQGateInst,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.spec import Architecture
    from .program import ZAIRProgram

# -- opcodes -------------------------------------------------------------------

OP_INIT = 0
OP_1Q = 1
OP_RYDBERG = 2
OP_JOB = 3
OP_EPOCH = 4
OP_PULSE = 5
OP_LAYER = 6
OP_ARRAY_MOVE = 7

_OPCODE_OF_TYPE = {
    InitInst: OP_INIT,
    OneQGateInst: OP_1Q,
    RydbergInst: OP_RYDBERG,
    RearrangeJob: OP_JOB,
    TransferEpochInst: OP_EPOCH,
    GlobalPulseInst: OP_PULSE,
    GateLayerInst: OP_LAYER,
    ArrayMoveInst: OP_ARRAY_MOVE,
}

#: Busy-event kinds (what a qubit-time event costs, resolved at interpret time).
BUSY_1Q = 0  #: one ``t_1q_us``
BUSY_2Q = 1  #: one ``t_2q_us``
BUSY_TRANSFER = 2  #: ``2 * t_transfer_us`` (pickup + drop-off of one move)
BUSY_EMBEDDED = 3  #: an embedded per-gate duration (gate layers)

#: Roles of entries in the flattened location table.
ROLE_INIT = 0  #: an ``init`` placement
ROLE_PICKUP = 1  #: a movement begin location
ROLE_DROP = 2  #: a movement end location
ROLE_1Q = 3  #: a ``1qGate`` location assertion

_FG_KIND_CODE = {"1q": 0, "2q": 1, "swap": 2}


@dataclass
class MoveSegment:
    """Loc-table ranges of one movement instruction (job or transfer epoch)."""

    inst_index: int
    begin_start: int
    begin_stop: int
    end_start: int
    end_stop: int
    is_job: bool  #: True for RearrangeJob (AOD ordering applies)


@dataclass
class ZAIRColumns:
    """Numpy view of one program (see the module docstring for the contract)."""

    num_qubits: int
    num_instructions: int
    opcodes: np.ndarray  #: int8, one per instruction
    begin_times: np.ndarray  #: float64, one per instruction
    end_times: np.ndarray  #: float64, one per instruction

    # -- per-qubit busy events (program order) --------------------------------
    busy_qubits: np.ndarray  #: int64
    busy_kinds: np.ndarray  #: int8 (BUSY_* codes)
    busy_durations: np.ndarray  #: float64 (meaningful for BUSY_EMBEDDED only)

    # -- flattened location table (location-based programs) -------------------
    loc_qubit: np.ndarray  #: int64
    loc_slm: np.ndarray  #: int64
    loc_row: np.ndarray  #: int64
    loc_col: np.ndarray  #: int64
    loc_role: np.ndarray  #: int8 (ROLE_* codes)
    loc_inst: np.ndarray  #: int64 owning instruction index
    #: Derived, architecture-dependent (empty arrays without an architecture):
    loc_trap: np.ndarray  #: int64 global trap id, -1 where the trap is invalid
    loc_x: np.ndarray  #: float64 physical x (0 where invalid)
    loc_y: np.ndarray  #: float64 physical y
    loc_valid: np.ndarray  #: bool, trap exists on the architecture

    # -- movement / rydberg structure -----------------------------------------
    move_segments: list[MoveSegment] = field(default_factory=list)
    #: Rydberg gates flattened: qubit pair, owning instruction, zone id.
    ry_a: np.ndarray | None = None
    ry_b: np.ndarray | None = None
    ry_inst: np.ndarray | None = None
    ry_zone: np.ndarray | None = None
    #: (instruction index, zone_id) per rydberg instruction.
    rydberg_insts: list[tuple[int, int]] = field(default_factory=list)
    #: (claimed transfer_count or None, num_qubits) per transfer epoch.
    epoch_claims: list[tuple[int | None, int]] = field(default_factory=list)

    # -- precomputed structural counts (architecture-independent) -------------
    num_1q_gates: int = 0
    num_2q_gates: int = 0
    num_rydberg_stages: int = 0
    num_transfers: int = 0
    num_movements: int = 0
    num_epochs: int = 0  #: movement epochs (rearrange jobs + transfer epochs)
    duration_us: float = 0.0
    uses_locations: bool = False

    # -- architecture-dependent precomputations -------------------------------
    has_architecture: bool = False
    #: Total excitations (idle qubits under a Rydberg/global pulse), replayed
    #: at build time with incremental per-zone occupancy counters.
    num_excitations: int = 0
    #: Scalar-accumulated total movement distance (reference summation order).
    total_move_distance_um: float = 0.0
    #: Total trap count of the architecture (occupancy-array size).
    num_traps: int = 0
    #: Every movement begin/end location names an existing trap.  When False
    #: the fast interpreter falls back to the reference replay so that its
    #: error behaviour (ArchitectureError on a bad trap) matches exactly.
    move_locs_valid: bool = True
    #: Message of the InterpreterError to raise when the program needs an
    #: architecture but none was supplied at build time.
    missing_architecture: str | None = None

    # -- fixed-coupling (gate-layer) flattening -------------------------------
    #: One row per FixedGate across all layers, in program order.
    fg_kind: np.ndarray | None = None  #: int8: 0="1q", 1="2q", 2="swap", -1=unknown
    fg_q0: np.ndarray | None = None  #: int64 first qubit (-1 when absent)
    fg_q1: np.ndarray | None = None  #: int64 second qubit (-1 for 1q gates)
    fg_arity: np.ndarray | None = None  #: int64 len(gate.qubits)
    fg_begin: np.ndarray | None = None
    fg_duration: np.ndarray | None = None
    fg_end: np.ndarray | None = None


def _slm_tables(
    architecture: Architecture,
) -> dict[int, tuple[int, int, int, float, float, float, float]]:
    """Per-SLM lookup table: slm_id -> (base, num_row, num_col, ox, sx, oy, sy)."""
    table: dict[int, tuple[int, int, int, float, float, float, float]] = {}
    base = 0
    for zone in architecture.all_zones():
        for slm in zone.slms:
            table[slm.slm_id] = (
                base,
                slm.num_row,
                slm.num_col,
                slm.offset[0],
                slm.sep[0],
                slm.offset[1],
                slm.sep[1],
            )
            base += slm.num_traps
    return table


_GET_QUBIT = _operator.attrgetter("qubit")
_GET_SLM = _operator.attrgetter("slm_id")
_GET_ROW = _operator.attrgetter("row")
_GET_COL = _operator.attrgetter("col")


def build_columns(
    program: ZAIRProgram, architecture: Architecture | None = None
) -> ZAIRColumns:
    """Flatten ``program`` into a :class:`ZAIRColumns` view.

    One Python accumulation pass over the instructions, then a fixed number
    of whole-array numpy computations (trap ids, coordinates, segment
    expansion) plus a scalar movement-distance accumulation in reference
    order.  Per-element work stays in C (``map`` over ``attrgetter``,
    ``list.extend``, ``np.repeat``): the pass itself only appends segment
    descriptors per instruction.
    """
    instructions = program.instructions
    n_inst = len(instructions)
    opcodes = np.empty(n_inst, dtype=np.int8)
    begin_times = np.empty(n_inst, dtype=np.float64)
    end_times = np.empty(n_inst, dtype=np.float64)

    # Busy events are described as segments and expanded post-pass:
    # busy_src holds either an (start, stop) slice of the loc table or an
    # explicit qubit list; kind/duration/count are per-segment.
    busy_src: list = []
    busy_seg_kind: list[int] = []
    busy_seg_dur: list[float] = []
    busy_seg_count: list[int] = []
    #: per-incidence durations of layer segments (one list per layer).
    layer_busy: list[list[float]] = []

    loc_qubit: list[int] = []
    loc_slm: list[int] = []
    loc_row: list[int] = []
    loc_col: list[int] = []
    # The role/inst columns are segment-encoded and expanded with np.repeat.
    seg_role: list[int] = []
    seg_inst: list[int] = []
    seg_count: list[int] = []

    move_segments: list[MoveSegment] = []
    ry_a: list[int] = []
    ry_b: list[int] = []
    ry_seg: list[tuple[int, int, int]] = []  # (inst, zone, count) per rydberg
    rydberg_insts: list[tuple[int, int]] = []
    epoch_claims: list[tuple[int | None, int]] = []

    fg_kind: list[int] = []
    fg_q0: list[int] = []
    fg_q1: list[int] = []
    fg_arity: list[int] = []
    fg_begin: list[float] = []
    fg_duration: list[float] = []

    num_1q = num_2q = num_stages = num_transfers = num_movements = num_epochs = 0
    excitations = 0
    duration = 0.0
    uses_locations = False
    missing_architecture: str | None = None

    slm_table = _slm_tables(architecture) if architecture is not None else None
    num_traps = sum(t[1] * t[2] for t in slm_table.values()) if slm_table else 0

    # Entanglement-zone bookkeeping for excitation accounting: zone index per
    # placed qubit (-1 = storage / readout / unplaced) and per-zone occupancy,
    # maintained incrementally (the reference rescans every placed qubit per
    # Rydberg instruction).
    zone_of_slm: dict[int, int] = {}
    num_zones = 0
    if architecture is not None:
        num_zones = len(architecture.entanglement_zones)
        for zone_index, zone in enumerate(architecture.entanglement_zones):
            for slm in zone.slms:
                zone_of_slm[slm.slm_id] = zone_index
    zone_of_qubit: dict[int, int] = {}
    zone_counts = [0] * max(1, num_zones)
    track_zones = num_zones > 0

    def extend_locs(locs, role: int, index: int) -> tuple[int, int]:
        start = len(loc_qubit)
        loc_qubit.extend(map(_GET_QUBIT, locs))
        loc_slm.extend(map(_GET_SLM, locs))
        loc_row.extend(map(_GET_ROW, locs))
        loc_col.extend(map(_GET_COL, locs))
        seg_role.append(role)
        seg_inst.append(index)
        n = len(locs)
        seg_count.append(n)
        return start, start + n

    def rezone(locs) -> None:
        zget = zone_of_qubit.get
        sget = zone_of_slm.get
        for loc in locs:
            q = loc.qubit
            old = zget(q, -1)
            if old >= 0:
                zone_counts[old] -= 1
            new = sget(loc.slm_id, -1)
            zone_of_qubit[q] = new
            if new >= 0:
                zone_counts[new] += 1

    for index, inst in enumerate(instructions):
        opcode = _OPCODE_OF_TYPE[type(inst)]
        opcodes[index] = opcode
        begin_times[index] = inst.begin_time
        end = inst.end_time
        end_times[index] = end
        if opcode != OP_INIT and end > duration:
            duration = end

        if opcode == OP_INIT:
            uses_locations = True
            extend_locs(inst.init_locs, ROLE_INIT, index)
            if track_zones:
                rezone(inst.init_locs)
        elif opcode == OP_1Q:
            uses_locations = True
            n = inst.num_gates
            num_1q += n
            b0, b1 = extend_locs(inst.locs, ROLE_1Q, index)
            busy_src.append((b0, b1))
            busy_seg_kind.append(BUSY_1Q)
            busy_seg_dur.append(0.0)
            busy_seg_count.append(n)
        elif opcode == OP_RYDBERG:
            uses_locations = True
            if architecture is None and missing_architecture is None:
                missing_architecture = (
                    f"cannot replay {type(inst).__name__} without an architecture"
                )
            gates = inst.gates
            gate_qubits = {q for gate in gates for q in gate}
            num_2q += len(gates)
            num_stages += 1
            gq_list = list(gate_qubits)
            busy_src.append(gq_list)
            busy_seg_kind.append(BUSY_2Q)
            busy_seg_dur.append(0.0)
            busy_seg_count.append(len(gq_list))
            ry_a.extend([g[0] for g in gates])
            ry_b.extend([g[1] for g in gates])
            ry_seg.append((index, inst.zone_id, len(gates)))
            rydberg_insts.append((index, inst.zone_id))
            if architecture is not None:
                in_zone = (
                    zone_counts[inst.zone_id] if 0 <= inst.zone_id < num_zones else 0
                )
                gates_in_zone = sum(
                    1 for q in gate_qubits if zone_of_qubit.get(q, -1) == inst.zone_id
                )
                excitations += in_zone - gates_in_zone
        elif opcode in (OP_JOB, OP_EPOCH):
            uses_locations = True
            if architecture is None and missing_architecture is None:
                missing_architecture = (
                    f"cannot replay {type(inst).__name__} without an architecture"
                )
            n = inst.num_qubits
            if opcode == OP_EPOCH:
                num_transfers += inst.num_transfers
                epoch_claims.append((inst.transfer_count, n))
            else:
                num_transfers += 2 * n
            num_movements += n
            num_epochs += 1
            b0, b1 = extend_locs(inst.begin_locs, ROLE_PICKUP, index)
            e0, e1 = extend_locs(inst.end_locs, ROLE_DROP, index)
            busy_src.append((b0, b1))
            busy_seg_kind.append(BUSY_TRANSFER)
            busy_seg_dur.append(0.0)
            busy_seg_count.append(n)
            move_segments.append(
                MoveSegment(index, b0, b1, e0, e1, opcode == OP_JOB)
            )
            if track_zones:
                rezone(inst.end_locs)
        elif opcode == OP_PULSE:
            active = set(inst.active_qubits)
            num_2q += len(inst.gates)
            num_1q += inst.extra_1q_gates
            num_stages += 1
            excitations += program.num_qubits - len(active)
            busy_src.append(list(inst.active_qubits))
            busy_seg_kind.append(BUSY_2Q)
            busy_seg_dur.append(0.0)
            busy_seg_count.append(len(inst.active_qubits))
        elif opcode == OP_LAYER:
            layer_qubits: list[int] = []
            layer_durs: list[float] = []
            for gate in inst.gates:
                qs = gate.qubits
                num_1q += gate.num_1q_gates
                num_2q += gate.num_2q_gates
                n_qs = len(qs)
                fg_kind.append(_FG_KIND_CODE.get(gate.kind, -1))
                fg_arity.append(n_qs)
                fg_q0.append(qs[0] if qs else -1)
                fg_q1.append(qs[1] if n_qs > 1 else -1)
                fg_begin.append(gate.begin_time)
                fg_duration.append(gate.duration_us)
                layer_qubits.extend(qs)
                if n_qs == 1:
                    layer_durs.append(gate.duration_us)
                else:
                    layer_durs.extend([gate.duration_us] * n_qs)
            busy_src.append(layer_qubits)
            busy_seg_kind.append(BUSY_EMBEDDED)
            busy_seg_dur.append(0.0)  # per-incidence durations via layer_busy
            busy_seg_count.append(len(layer_qubits))
            layer_busy.append(layer_durs)
        # OP_ARRAY_MOVE: time only.

    # -- whole-array derivations ----------------------------------------------
    n_locs = len(loc_qubit)
    loc_qubit_arr = np.asarray(loc_qubit, dtype=np.int64)
    loc_slm_arr = np.asarray(loc_slm, dtype=np.int64)
    loc_row_arr = np.asarray(loc_row, dtype=np.int64)
    loc_col_arr = np.asarray(loc_col, dtype=np.int64)
    seg_counts = np.asarray(seg_count, dtype=np.int64)
    loc_role_arr = np.repeat(np.asarray(seg_role, dtype=np.int8), seg_counts)
    loc_inst_arr = np.repeat(np.asarray(seg_inst, dtype=np.int64), seg_counts)

    # Busy events: qubit sources are loc-table slices or explicit lists,
    # kinds/durations expand from per-segment descriptors; layer segments
    # overwrite their per-incidence durations afterwards.
    busy_counts = np.asarray(busy_seg_count, dtype=np.int64)
    busy_kinds_arr = np.repeat(np.asarray(busy_seg_kind, dtype=np.int8), busy_counts)
    busy_durations_arr = np.repeat(np.asarray(busy_seg_dur, dtype=np.float64), busy_counts)
    if layer_busy:
        flat_durs: list[float] = []
        for durs in layer_busy:
            flat_durs.extend(durs)
        busy_durations_arr[busy_kinds_arr == BUSY_EMBEDDED] = flat_durs
    if busy_src:
        busy_qubits_arr = np.concatenate(
            [
                loc_qubit_arr[piece[0] : piece[1]]
                if type(piece) is tuple
                else np.asarray(piece, dtype=np.int64)
                for piece in busy_src
            ]
        )
    else:
        busy_qubits_arr = np.empty(0, dtype=np.int64)

    # Rydberg gate ownership expands from per-instruction segments.
    if ry_seg:
        ry_counts = np.asarray([s[2] for s in ry_seg], dtype=np.int64)
        ry_inst_arr = np.repeat(
            np.asarray([s[0] for s in ry_seg], dtype=np.int64), ry_counts
        )
        ry_zone_arr = np.repeat(
            np.asarray([s[1] for s in ry_seg], dtype=np.int64), ry_counts
        )
    else:
        ry_inst_arr = ry_zone_arr = None
    loc_trap = np.full(n_locs, -1, dtype=np.int64)
    loc_x = np.zeros(n_locs, dtype=np.float64)
    loc_y = np.zeros(n_locs, dtype=np.float64)
    loc_valid = np.zeros(n_locs, dtype=bool)
    if slm_table is not None and n_locs:
        for slm_id, (base, n_row, n_col, ox, sx, oy, sy) in slm_table.items():
            mask = loc_slm_arr == slm_id
            if not mask.any():
                continue
            rows = loc_row_arr[mask]
            cols = loc_col_arr[mask]
            ok = (rows >= 0) & (rows < n_row) & (cols >= 0) & (cols < n_col)
            loc_trap[mask] = np.where(ok, base + rows * n_col + cols, -1)
            # Same affine map as SLMArray.trap_position -- one multiply and
            # one add per coordinate, bit-identical to the scalar evaluation.
            loc_x[mask] = ox + cols * sx
            loc_y[mask] = oy + rows * sy
            loc_valid[mask] = ok

    # Movement distance: scalar accumulation in reference order (the compound
    # sqrt expression is not bit-stable between Python pow and numpy ufuncs).
    total_distance = 0.0
    move_locs_valid = True
    if slm_table is not None and move_segments:
        xs = loc_x.tolist()
        ys = loc_y.tolist()
        valid = loc_valid.tolist()
        for seg in move_segments:
            inst_distance = 0.0
            for bi, ei in zip(range(seg.begin_start, seg.begin_stop),
                              range(seg.end_start, seg.end_stop)):
                if valid[bi] and valid[ei]:
                    inst_distance += (
                        (xs[bi] - xs[ei]) ** 2 + (ys[bi] - ys[ei]) ** 2
                    ) ** 0.5
                else:
                    move_locs_valid = False
            total_distance += inst_distance

    columns = ZAIRColumns(
        num_qubits=program.num_qubits,
        num_instructions=n_inst,
        opcodes=opcodes,
        begin_times=begin_times,
        end_times=end_times,
        busy_qubits=busy_qubits_arr,
        busy_kinds=busy_kinds_arr,
        busy_durations=busy_durations_arr,
        loc_qubit=loc_qubit_arr,
        loc_slm=loc_slm_arr,
        loc_row=loc_row_arr,
        loc_col=loc_col_arr,
        loc_role=loc_role_arr,
        loc_inst=loc_inst_arr,
        loc_trap=loc_trap,
        loc_x=loc_x,
        loc_y=loc_y,
        loc_valid=loc_valid,
        move_segments=move_segments,
        rydberg_insts=rydberg_insts,
        epoch_claims=epoch_claims,
        num_1q_gates=num_1q,
        num_2q_gates=num_2q,
        num_rydberg_stages=num_stages,
        num_transfers=num_transfers,
        num_movements=num_movements,
        num_epochs=num_epochs,
        duration_us=duration,
        uses_locations=uses_locations,
        has_architecture=architecture is not None,
        num_excitations=excitations,
        total_move_distance_um=total_distance,
        num_traps=num_traps,
        move_locs_valid=move_locs_valid,
        missing_architecture=missing_architecture,
    )
    if ry_seg:
        columns.ry_a = np.asarray(ry_a, dtype=np.int64)
        columns.ry_b = np.asarray(ry_b, dtype=np.int64)
        columns.ry_inst = ry_inst_arr
        columns.ry_zone = ry_zone_arr
    if fg_kind:
        columns.fg_kind = np.asarray(fg_kind, dtype=np.int8)
        columns.fg_q0 = np.asarray(fg_q0, dtype=np.int64)
        columns.fg_q1 = np.asarray(fg_q1, dtype=np.int64)
        columns.fg_arity = np.asarray(fg_arity, dtype=np.int64)
        columns.fg_begin = np.asarray(fg_begin, dtype=np.float64)
        columns.fg_duration = np.asarray(fg_duration, dtype=np.float64)
        columns.fg_end = columns.fg_begin + columns.fg_duration
    return columns
