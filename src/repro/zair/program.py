"""ZAIR program container and statistics."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .instructions import (
    InitInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    ZAIRInstruction,
)


@dataclass
class ZAIRProgram:
    """A compiled program in the zoned-architecture IR.

    Attributes:
        num_qubits: Number of program qubits.
        architecture_name: Name of the target architecture.
        instructions: Program-level ZAIR instructions in issue order (the
            first must be the single ``InitInst``).
    """

    num_qubits: int
    architecture_name: str = ""
    instructions: list[ZAIRInstruction] = field(default_factory=list)

    # -- structural queries --------------------------------------------------

    @property
    def init(self) -> InitInst:
        """The init instruction (must be first)."""
        if not self.instructions or not isinstance(self.instructions[0], InitInst):
            raise ValueError("program does not start with an init instruction")
        return self.instructions[0]

    @property
    def rearrange_jobs(self) -> list[RearrangeJob]:
        return [i for i in self.instructions if isinstance(i, RearrangeJob)]

    @property
    def rydberg_insts(self) -> list[RydbergInst]:
        return [i for i in self.instructions if isinstance(i, RydbergInst)]

    @property
    def one_q_insts(self) -> list[OneQGateInst]:
        return [i for i in self.instructions if isinstance(i, OneQGateInst)]

    @property
    def num_rydberg_stages(self) -> int:
        return len(self.rydberg_insts)

    @property
    def num_2q_gates(self) -> int:
        return sum(len(r.gates) for r in self.rydberg_insts)

    @property
    def num_1q_gates(self) -> int:
        return sum(inst.num_gates for inst in self.one_q_insts)

    @property
    def num_movements(self) -> int:
        """Total individual qubit movements across all jobs."""
        return sum(job.num_qubits for job in self.rearrange_jobs)

    @property
    def duration_us(self) -> float:
        """Makespan: latest end time over all scheduled instructions."""
        times = [i.end_time for i in self.instructions if not isinstance(i, InitInst)]
        return max(times, default=0.0)

    # -- statistics (paper Section IX) ---------------------------------------

    @property
    def num_zair_instructions(self) -> int:
        """Program-level instruction count (excluding init)."""
        return sum(1 for i in self.instructions if not isinstance(i, InitInst))

    @property
    def num_machine_instructions(self) -> int:
        """Machine-level instruction count after lowering.

        1Q and Rydberg instructions are already machine level (1 each);
        rearrangement jobs contribute their lowered instruction lists.
        """
        total = 0
        for inst in self.instructions:
            if isinstance(inst, (OneQGateInst, RydbergInst)):
                total += 1
            elif isinstance(inst, RearrangeJob):
                total += max(len(inst.insts), 3)
        return total

    def zair_instructions_per_gate(self) -> float:
        """ZAIR instructions per circuit gate (paper reports 0.85 geomean)."""
        gates = self.num_1q_gates + self.num_2q_gates
        return self.num_zair_instructions / gates if gates else 0.0

    def machine_instructions_per_gate(self) -> float:
        """Machine instructions per circuit gate (paper reports 1.77 geomean)."""
        gates = self.num_1q_gates + self.num_2q_gates
        return self.num_machine_instructions / gates if gates else 0.0

    # -- qubit-location tracking ---------------------------------------------

    def final_locations(self) -> dict[int, QLoc]:
        """Replay all rearrangement jobs to find each qubit's final location."""
        locations = {loc.qubit: loc for loc in self.init.init_locs}
        for job in self.rearrange_jobs:
            for loc in job.end_locs:
                locations[loc.qubit] = loc
        return locations

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_qubits": self.num_qubits,
            "architecture": self.architecture_name,
            "instructions": [inst.to_dict() for inst in self.instructions],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path: str) -> None:
        """Write the program to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
