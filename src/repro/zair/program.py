"""ZAIR program container and statistics.

Columnar-view staleness contract
--------------------------------

:meth:`ZAIRProgram.columns` caches its structure-of-arrays flattening and
assumes the program is *frozen* after compilation.  Anything that mutates a
program in place after a ``columns()`` call -- editing, reordering, or
re-timing instructions -- MUST call :meth:`ZAIRProgram.invalidate_columns`
afterwards, or later ``columns()`` hits silently return a view of the old
instruction stream.  Pickling and ``copy.deepcopy`` drop the cache
automatically, so the test-suite convention of mutating deep copies is
always safe.

Set the ``REPRO_DEBUG_STALE_COLUMNS`` environment variable to make every
cache hit verify a content digest of the instruction stream and raise
``StaleColumnsError`` on a missed invalidation (O(instructions) per hit --
debugging aid, not for production sweeps).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .columns import ZAIRColumns, build_columns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.spec import Architecture

from .instructions import (
    ArrayMoveInst,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
    ZAIRInstruction,
)


class StaleColumnsError(RuntimeError):
    """A cached columnar view no longer matches the instruction stream.

    Raised only under ``REPRO_DEBUG_STALE_COLUMNS``: the program was mutated
    in place after a :meth:`ZAIRProgram.columns` call without a matching
    :meth:`ZAIRProgram.invalidate_columns`.
    """


#: Sentinel key holding the debug content digest inside the columns cache
#: (cannot collide with view keys, which are ``id()`` ints or ``None``).
_DIGEST_KEY = "digest"


@dataclass
class ZAIRProgram:
    """A compiled program in the zoned-architecture IR.

    Attributes:
        num_qubits: Number of program qubits.
        architecture_name: Name of the target architecture.
        instructions: Program-level ZAIR instructions in issue order (the
            first must be the single ``InitInst`` whenever the program uses
            location-based instructions).
        coupling_edges: For fixed-coupling (superconducting) programs, the
            undirected edges of the device coupling graph; ``None`` for
            neutral-atom programs.
    """

    num_qubits: int
    architecture_name: str = ""
    instructions: list[ZAIRInstruction] = field(default_factory=list)
    coupling_edges: list[tuple[int, int]] | None = None
    #: Cached columnar views keyed by architecture identity (see
    #: :meth:`columns`); never serialized, dropped on pickle/deepcopy.
    _columns_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # -- columnar view -------------------------------------------------------

    def columns(self, architecture: "Architecture | None" = None) -> ZAIRColumns:
        """The columnar (structure-of-arrays) view of this program.

        Built once per (program, architecture) pair and cached, so one
        compile's interpret + validate pair shares the flattening work.  The
        cache assumes the program is frozen after compilation: pickling and
        ``copy.deepcopy`` drop it automatically, and in-place mutation must
        be followed by :meth:`invalidate_columns` (the test-suite convention
        is to mutate deep copies instead).  Under the
        ``REPRO_DEBUG_STALE_COLUMNS`` environment variable, cache hits
        verify a content digest and raise :class:`StaleColumnsError` on a
        missed invalidation (see the module docstring).
        """
        debug = bool(os.environ.get("REPRO_DEBUG_STALE_COLUMNS"))
        key = id(architecture) if architecture is not None else None
        view = self._columns_cache.get(key)
        if view is not None and debug:
            recorded = self._columns_cache.get(_DIGEST_KEY)
            if recorded is not None and recorded != self._content_digest():
                raise StaleColumnsError(
                    "ZAIRProgram was mutated in place after columns() was "
                    "cached; call invalidate_columns() after in-place "
                    "mutation (or mutate a deep copy instead)"
                )
        if view is None:
            view = build_columns(self, architecture)
            self._columns_cache.clear()  # keep at most one view alive
            self._columns_cache[key] = view
            if debug:
                self._columns_cache[_DIGEST_KEY] = self._content_digest()
        return view

    def _content_digest(self) -> int:
        """Cheap content hash of the instruction stream (debug aid only)."""
        return hash(
            (
                self.num_qubits,
                len(self.instructions),
                tuple(map(repr, self.instructions)),
            )
        )

    def invalidate_columns(self) -> None:
        """Drop cached columnar views after an in-place mutation."""
        self._columns_cache.clear()

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_columns_cache"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_columns_cache", {})

    # -- structural queries --------------------------------------------------

    @property
    def init(self) -> InitInst:
        """The init instruction (must be first)."""
        if not self.instructions or not isinstance(self.instructions[0], InitInst):
            raise ValueError("program does not start with an init instruction")
        return self.instructions[0]

    @property
    def rearrange_jobs(self) -> list[RearrangeJob]:
        return [i for i in self.instructions if isinstance(i, RearrangeJob)]

    @property
    def rydberg_insts(self) -> list[RydbergInst]:
        return [i for i in self.instructions if isinstance(i, RydbergInst)]

    @property
    def one_q_insts(self) -> list[OneQGateInst]:
        return [i for i in self.instructions if isinstance(i, OneQGateInst)]

    @property
    def num_rydberg_stages(self) -> int:
        """Rydberg exposures, counting zoned and global (monolithic) pulses."""
        return len(self.rydberg_insts) + sum(
            1 for i in self.instructions if isinstance(i, GlobalPulseInst)
        )

    @property
    def num_2q_gates(self) -> int:
        total = sum(len(r.gates) for r in self.rydberg_insts)
        for inst in self.instructions:
            if isinstance(inst, GlobalPulseInst):
                total += len(inst.gates)
            elif isinstance(inst, GateLayerInst):
                total += sum(gate.num_2q_gates for gate in inst.gates)
        return total

    @property
    def num_1q_gates(self) -> int:
        total = sum(inst.num_gates for inst in self.one_q_insts)
        for inst in self.instructions:
            if isinstance(inst, GlobalPulseInst):
                total += inst.extra_1q_gates
            elif isinstance(inst, GateLayerInst):
                total += sum(gate.num_1q_gates for gate in inst.gates)
        return total

    @property
    def num_movements(self) -> int:
        """Total individual qubit movements across all jobs and epochs."""
        return sum(job.num_qubits for job in self.rearrange_jobs) + sum(
            inst.num_qubits
            for inst in self.instructions
            if isinstance(inst, TransferEpochInst)
        )

    @property
    def duration_us(self) -> float:
        """Makespan: latest end time over all scheduled instructions."""
        times = [i.end_time for i in self.instructions if not isinstance(i, InitInst)]
        return max(times, default=0.0)

    # -- statistics (paper Section IX) ---------------------------------------

    @property
    def num_zair_instructions(self) -> int:
        """Program-level instruction count (excluding init)."""
        return sum(1 for i in self.instructions if not isinstance(i, InitInst))

    @property
    def num_machine_instructions(self) -> int:
        """Machine-level instruction count after lowering.

        1Q and Rydberg instructions are already machine level (1 each);
        rearrangement jobs contribute their lowered instruction lists.
        """
        total = 0
        for inst in self.instructions:
            if isinstance(inst, (OneQGateInst, RydbergInst, GlobalPulseInst, ArrayMoveInst)):
                total += 1
            elif isinstance(inst, RearrangeJob):
                total += max(len(inst.insts), 3)
            elif isinstance(inst, TransferEpochInst):
                # Abstract epoch: at least pickup + move + drop-off.
                total += 3
            elif isinstance(inst, GateLayerInst):
                total += len(inst.gates)
        return total

    def zair_instructions_per_gate(self) -> float:
        """ZAIR instructions per circuit gate (paper reports 0.85 geomean)."""
        gates = self.num_1q_gates + self.num_2q_gates
        return self.num_zair_instructions / gates if gates else 0.0

    def machine_instructions_per_gate(self) -> float:
        """Machine instructions per circuit gate (paper reports 1.77 geomean)."""
        gates = self.num_1q_gates + self.num_2q_gates
        return self.num_machine_instructions / gates if gates else 0.0

    # -- qubit-location tracking ---------------------------------------------

    def final_locations(self) -> dict[int, QLoc]:
        """Replay all movement instructions to find each qubit's final location."""
        locations = {loc.qubit: loc for loc in self.init.init_locs}
        for inst in self.instructions:
            if isinstance(inst, (RearrangeJob, TransferEpochInst)):
                for loc in inst.end_locs:
                    locations[loc.qubit] = loc
        return locations

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "num_qubits": self.num_qubits,
            "architecture": self.architecture_name,
            "instructions": [inst.to_dict() for inst in self.instructions],
        }
        if self.coupling_edges is not None:
            data["coupling_edges"] = [list(edge) for edge in self.coupling_edges]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def dump(self, path: str) -> None:
        """Write the program to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
