"""Semantic validation of ZAIR programs.

The validator replays a program against an architecture and checks the
physical invariants the hardware imposes:

* every qubit starts at a unique, existing SLM trap;
* a rearrangement job only picks up qubits from where they actually are;
* no two qubits ever occupy the same trap;
* within one job, the AOD row/column ordering constraint holds (rows and
  columns of one AOD cannot cross, and co-located rows/columns must stay
  co-located);
* a ``rydberg`` instruction only entangles pairs that sit in the left/right
  traps of the same Rydberg site of the referenced entanglement zone.

Abstract baseline instructions have their own (weaker) invariants:

* ``transferEpoch`` replays trap occupancy like a rearrangement job but
  waives the AOD non-crossing check (the idealised bounds assume away AOD
  conflicts by construction);
* ``gateLayer`` / ``globalPulse`` / ``arrayMove`` address qubits by index;
  every index must be in range, two-qubit gates of a fixed-coupling program
  must run on coupling-graph edges, and no qubit may be in two gates at
  once.

Location-free programs (the superconducting and Atomique backends) skip the
``init`` requirement; a program mixing location-based and index-based gate
instructions is rejected.

This is used both by the test suite (as an oracle for compiler correctness)
and by the registry compile path (:func:`repro.api.compile`), which
validates every backend's emitted program.

Fast path
---------

:func:`validate_program` replays large programs with **vectorized kernels**
over the program's cached columnar view
(:meth:`~repro.zair.program.ZAIRProgram.columns`): trap occupancy becomes
array indexing into an occupancy vector, the AOD non-crossing check becomes
one pairwise numpy comparison per job (the reference is O(n^2) Python), and
the coupling-edge / schedule-overlap checks of fixed-coupling programs
become `np.isin` / grouped cummax sweeps.  The kernels only *detect*
violations; on the first detection the per-instruction reference replay
(:func:`validate_program_reference`) is re-run to raise the exact error
message and machine-readable ``check`` tag, so the two paths are
behaviourally identical by construction.  Small programs dispatch straight
to the reference path (the array setup would cost more than it saves) --
force a path with ``fast=True`` / ``fast=False``.
"""

from __future__ import annotations

import numpy as np

from ..arch.spec import Architecture, ArchitectureError
from .columns import (
    OP_ARRAY_MOVE,
    OP_INIT,
    OP_LAYER,
    OP_PULSE,
    ROLE_1Q,
    ROLE_DROP,
    ROLE_INIT,
    ROLE_PICKUP,
    ZAIRColumns,
    build_columns,
)
from .instructions import (
    LOCATION_INSTRUCTIONS,
    ArrayMoveInst,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
)
from .lowering import qloc_position
from .program import ZAIRProgram

#: Slack allowed when checking that gates on one qubit do not overlap in time.
_TIME_TOL = 1e-9


class ValidationError(ValueError):
    """Raised when a ZAIR program violates a hardware invariant.

    Attributes:
        check: Stable, machine-readable identifier of the violated invariant
            (e.g. ``"trap-occupancy"`` or ``"coupling-edge"``).  The fuzz
            harness uses it to classify failures and to confirm that a
            minimized reproducer still trips the *same* check; humans get the
            message.
    """

    def __init__(self, message: str, *, check: str = "generic") -> None:
        super().__init__(message)
        self.check = check

    def __reduce__(self):
        # Preserve the check tag across pickling (compile_many workers send
        # validation failures back through the process pool; the default
        # exception reduction would re-init with check="generic").
        return (_rebuild_validation_error, (self.args[0] if self.args else "", self.check))


def _rebuild_validation_error(message: str, check: str) -> "ValidationError":
    return ValidationError(message, check=check)


def validate_job_ordering(architecture: Architecture, job: RearrangeJob) -> None:
    """Check the AOD non-crossing constraint for a single job.

    Two qubits held by the same AOD must keep their relative x order
    (columns cannot cross) and relative y order (rows cannot cross).  Qubits
    sharing a column (equal begin x) must share the destination x, and
    likewise for rows.
    """
    begin = [qloc_position(architecture, loc) for loc in job.begin_locs]
    end = [qloc_position(architecture, loc) for loc in job.end_locs]
    n = len(begin)
    tol = 1e-9
    for i in range(n):
        for j in range(i + 1, n):
            for axis in (0, 1):
                b_i, b_j = begin[i][axis], begin[j][axis]
                e_i, e_j = end[i][axis], end[j][axis]
                if abs(b_i - b_j) <= tol:
                    if abs(e_i - e_j) > tol:
                        raise ValidationError(
                            f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} "
                            f"and {job.begin_locs[j].qubit} share an AOD "
                            f"{'column' if axis == 0 else 'row'} but end at different "
                            "coordinates", check="aod-order"
                        )
                elif (b_i - b_j) * (e_i - e_j) < 0:
                    raise ValidationError(
                        f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} and "
                        f"{job.begin_locs[j].qubit} cross in "
                        f"{'x' if axis == 0 else 'y'}", check="aod-order"
                    )


def _check_trap_exists(architecture: Architecture, loc: QLoc) -> None:
    try:
        architecture.slm_by_id(loc.slm_id).trap_position(loc.row, loc.col)
    except ArchitectureError as exc:
        raise ValidationError(f"qubit {loc.qubit}: invalid trap {loc.trap}: {exc}", check="trap-exists") from exc


def validate_program_reference(
    architecture: Architecture | None, program: ZAIRProgram
) -> None:
    """Per-instruction reference replay of every invariant (the oracle).

    This is the original scalar validator.  :func:`validate_program` uses it
    both as the small-program path and as the error reporter of the
    vectorized path, so message text and ``check`` tags always come from
    here.

    Args:
        architecture: The target architecture.  May be ``None`` for
            location-free programs (fixed-coupling / abstract monolithic
            backends), which are validated purely on qubit indices, coupling
            edges, and schedule consistency.
        program: The program to check.

    Raises:
        ValidationError: on the first violated invariant.
    """
    uses_locations = any(
        isinstance(inst, LOCATION_INSTRUCTIONS) for inst in program.instructions
    )
    if not uses_locations:
        _validate_abstract_program(program)
        return
    if architecture is None:
        raise ValidationError(
            "program uses trap locations; an architecture is required to validate it",
            check="structure",
        )
    if not program.instructions or not isinstance(program.instructions[0], InitInst):
        raise ValidationError("program must start with an init instruction", check="structure")

    init = program.instructions[0]
    location: dict[int, QLoc] = {}
    occupied: dict[tuple[int, int, int], int] = {}
    for loc in init.init_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit in location:
            raise ValidationError(f"qubit {loc.qubit} initialised twice", check="init-duplicate")
        if loc.trap in occupied:
            raise ValidationError(
                f"trap {loc.trap} initialised with two qubits "
                f"({occupied[loc.trap]} and {loc.qubit})", check="trap-occupancy"
            )
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit

    ent_slm_pairs = [
        (zone.slms[0].slm_id, zone.slms[1].slm_id)
        for zone in architecture.entanglement_zones
    ]

    for inst in program.instructions[1:]:
        if isinstance(inst, InitInst):
            raise ValidationError("init may only appear once, at the beginning", check="structure")
        if isinstance(inst, (GateLayerInst, GlobalPulseInst, ArrayMoveInst)):
            raise ValidationError(
                f"{type(inst).__name__} has no trap semantics and cannot appear "
                "in a program that tracks trap locations", check="structure"
            )
        if isinstance(inst, RearrangeJob):
            _replay_job(architecture, inst, location, occupied)
        elif isinstance(inst, TransferEpochInst):
            _replay_transfer_epoch(architecture, inst, location, occupied)
        elif isinstance(inst, RydbergInst):
            _check_rydberg(architecture, inst, location, ent_slm_pairs)
        elif isinstance(inst, OneQGateInst):
            for loc in inst.locs:
                if loc.qubit not in location:
                    raise ValidationError(f"1qGate on unknown qubit {loc.qubit}", check="unknown-qubit")
                if location[loc.qubit].trap != loc.trap:
                    raise ValidationError(
                        f"1qGate expects qubit {loc.qubit} at {loc.trap}, but it is at "
                        f"{location[loc.qubit].trap}", check="location-mismatch"
                    )


def _replay_moves(
    architecture: Architecture,
    label: str,
    begin_locs: list[QLoc],
    end_locs: list[QLoc],
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    """Replay one batch of movements (pickup everything, then drop everything)."""
    # Pickup: all begin locations must match the current qubit positions.
    for loc in begin_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit not in location:
            raise ValidationError(f"{label} moves unknown qubit {loc.qubit}", check="unknown-qubit")
        if location[loc.qubit].trap != loc.trap:
            raise ValidationError(
                f"{label} picks up qubit {loc.qubit} at {loc.trap}, but it is at "
                f"{location[loc.qubit].trap}", check="location-mismatch"
            )
        del occupied[loc.trap]
    # Drop-off: all end traps must be free and pairwise distinct.
    seen_targets: set[tuple[int, int, int]] = set()
    for loc in end_locs:
        _check_trap_exists(architecture, loc)
        if loc.trap in seen_targets:
            raise ValidationError(f"{label} drops two qubits at trap {loc.trap}", check="trap-occupancy")
        if loc.trap in occupied:
            raise ValidationError(
                f"{label} drops qubit {loc.qubit} at occupied trap {loc.trap} "
                f"(held by qubit {occupied[loc.trap]})", check="trap-occupancy"
            )
        seen_targets.add(loc.trap)
    for loc in end_locs:
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit


def _replay_job(
    architecture: Architecture,
    job: RearrangeJob,
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    validate_job_ordering(architecture, job)
    _replay_moves(
        architecture,
        f"job on AOD {job.aod_id}",
        job.begin_locs,
        job.end_locs,
        location,
        occupied,
    )


def _replay_transfer_epoch(
    architecture: Architecture,
    inst: TransferEpochInst,
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    """Occupancy replay of an abstract epoch (no AOD ordering constraint)."""
    if inst.transfer_count is not None and not 0 <= inst.transfer_count <= 2 * inst.num_qubits:
        raise ValidationError(
            f"transfer epoch claims {inst.transfer_count} transfers for "
            f"{inst.num_qubits} moved qubits", check="transfer-count"
        )
    _replay_moves(
        architecture, "transfer epoch", inst.begin_locs, inst.end_locs, location, occupied
    )


def _validate_abstract_program(program: ZAIRProgram) -> None:
    """Validate a location-free (index-addressed) program.

    Checks qubit-index ranges, fixed-coupling edges, and that no qubit is in
    two gates at overlapping times.
    """
    edges: set[frozenset[int]] | None = None
    if program.coupling_edges is not None:
        edges = {frozenset(edge) for edge in program.coupling_edges}
    busy_until: dict[int, float] = {}

    def check_qubit(qubit: int, context: str) -> None:
        if not 0 <= qubit < program.num_qubits:
            raise ValidationError(
                f"{context}: qubit {qubit} out of range for a "
                f"{program.num_qubits}-qubit program", check="index-range"
            )

    def occupy(qubits: tuple[int, ...] | list[int], begin: float, end: float, context: str) -> None:
        for qubit in qubits:
            if begin < busy_until.get(qubit, float("-inf")) - _TIME_TOL:
                raise ValidationError(
                    f"{context}: qubit {qubit} is still busy at t={begin:.6g}", check="schedule-overlap"
                )
            busy_until[qubit] = max(busy_until.get(qubit, 0.0), end)

    for inst in program.instructions:
        if isinstance(inst, GateLayerInst):
            for gate in inst.gates:
                if gate.kind not in ("1q", "2q", "swap"):
                    raise ValidationError(f"gate layer: unknown gate kind {gate.kind!r}", check="gate-kind")
                expected_arity = 1 if gate.kind == "1q" else 2
                if len(gate.qubits) != expected_arity:
                    raise ValidationError(
                        f"gate layer: {gate.kind} gate on {len(gate.qubits)} qubits", check="gate-kind"
                    )
                for qubit in gate.qubits:
                    check_qubit(qubit, "gate layer")
                if gate.kind != "1q":
                    if len(set(gate.qubits)) != 2:
                        raise ValidationError(
                            f"gate layer: two-qubit gate on identical qubits {gate.qubits}", check="gate-kind"
                        )
                    if edges is not None and frozenset(gate.qubits) not in edges:
                        raise ValidationError(
                            f"gate layer: gate {gate.qubits} is not an edge of the "
                            "coupling graph", check="coupling-edge"
                        )
                occupy(gate.qubits, gate.begin_time, gate.end_time, "gate layer")
        elif isinstance(inst, GlobalPulseInst):
            active = set(inst.active_qubits)
            for qubit in inst.active_qubits:
                check_qubit(qubit, "global pulse")
            in_gate: set[int] = set()
            for a, b in inst.gates:
                if a == b:
                    raise ValidationError(f"global pulse: gate on identical qubits ({a}, {b})", check="gate-kind")
                for qubit in (a, b):
                    check_qubit(qubit, "global pulse")
                    if qubit not in active:
                        raise ValidationError(
                            f"global pulse: gate qubit {qubit} missing from active_qubits", check="pulse-active"
                        )
                    if qubit in in_gate:
                        raise ValidationError(
                            f"global pulse: qubit {qubit} is in two gates of one pulse", check="pulse-overlap"
                        )
                    in_gate.add(qubit)
            if inst.extra_1q_gates < 0:
                raise ValidationError("global pulse: negative extra_1q_gates", check="pulse-counts")
        elif isinstance(inst, ArrayMoveInst):
            if inst.distance_um < 0:
                raise ValidationError("array move: negative distance", check="move-distance")
        else:  # pragma: no cover - guarded by uses_locations dispatch
            raise ValidationError(
                f"unexpected {type(inst).__name__} in a location-free program", check="structure"
            )


def _check_rydberg(
    architecture: Architecture,
    inst: RydbergInst,
    location: dict[int, QLoc],
    ent_slm_pairs: list[tuple[int, int]],
) -> None:
    if not 0 <= inst.zone_id < len(architecture.entanglement_zones):
        raise ValidationError(f"rydberg references unknown zone {inst.zone_id}", check="rydberg-zone")
    left_id, right_id = ent_slm_pairs[inst.zone_id]
    for a, b in inst.gates:
        for qubit in (a, b):
            if qubit not in location:
                raise ValidationError(f"rydberg gate on unknown qubit {qubit}", check="unknown-qubit")
        loc_a, loc_b = location[a], location[b]
        slm_ids = {loc_a.slm_id, loc_b.slm_id}
        if slm_ids != {left_id, right_id}:
            raise ValidationError(
                f"gate ({a}, {b}): qubits are not in the left/right traps of "
                f"entanglement zone {inst.zone_id} (SLMs {slm_ids})", check="rydberg-site"
            )
        if (loc_a.row, loc_a.col) != (loc_b.row, loc_b.col):
            raise ValidationError(
                f"gate ({a}, {b}): qubits occupy different Rydberg sites "
                f"({loc_a.row},{loc_a.col}) vs ({loc_b.row},{loc_b.col})", check="rydberg-site"
            )

# ---------------------------------------------------------------------------
# Vectorized validation over the columnar view
# ---------------------------------------------------------------------------

#: Below this instruction count ``validate_program`` (fast=None) dispatches to
#: the reference replay unless a columnar view is already cached -- for tiny
#: programs the array setup costs more than it saves.
FAST_MIN_INSTRUCTIONS = 24

_AOD_TOL = 1e-9


def validate_program(
    architecture: Architecture | None,
    program: ZAIRProgram,
    fast: bool | None = None,
    reuse_columns: bool = False,
) -> None:
    """Replay ``program`` and check all invariants (vectorized on large programs).

    Args:
        architecture: The target architecture (``None`` for location-free
            programs).
        program: The program to check.
        fast: ``True`` forces the vectorized kernels, ``False`` the
            per-instruction reference replay; ``None`` (default) picks by
            program size.  Both paths raise identical errors: the vectorized
            kernels only *detect* violations and delegate the raise to
            :func:`validate_program_reference`.
        reuse_columns: Use the program's cached columnar view instead of
            re-flattening the instructions.  The validator is the
            correctness oracle, so by default it does NOT trust a cached
            view (a buggy backend may have mutated the program after the
            view was built); pass True only when the caller guarantees the
            program has been frozen since :meth:`ZAIRProgram.columns` ran
            (e.g. re-verification sweeps over immutable results).

    Raises:
        ValidationError: on the first violated invariant.
    """
    if fast is False or (
        fast is None and len(program.instructions) < FAST_MIN_INSTRUCTIONS
    ):
        validate_program_reference(architecture, program)
        return
    cols = (
        program.columns(architecture)
        if reuse_columns
        else build_columns(program, architecture)
    )
    _validate_fast(architecture, program, cols)


def _delegate(architecture: Architecture | None, program: ZAIRProgram) -> None:
    """A kernel detected a violation: let the reference raise the exact error."""
    validate_program_reference(architecture, program)
    raise ValidationError(
        "vectorized validator flagged a violation the reference replay did "
        "not reproduce (fast/reference divergence)",
        check="fast-path-divergence",
    )


def _validate_fast(
    architecture: Architecture | None, program: ZAIRProgram, cols: ZAIRColumns
) -> None:
    if not cols.uses_locations:
        _validate_abstract_fast(architecture, program, cols)
        return
    if architecture is None:
        raise ValidationError(
            "program uses trap locations; an architecture is required to validate it",
            check="structure",
        )
    _validate_location_fast(architecture, program, cols)


def _validate_location_fast(
    architecture: Architecture, program: ZAIRProgram, cols: ZAIRColumns
) -> None:
    opcodes = cols.opcodes

    # -- structure: init first and only, no index-addressed instructions -----
    if cols.num_instructions == 0 or opcodes[0] != OP_INIT:
        _delegate(architecture, program)
    tail = opcodes[1:]
    if bool((tail == OP_INIT).any()) or bool(
        np.isin(tail, (OP_LAYER, OP_PULSE, OP_ARRAY_MOVE)).any()
    ):
        _delegate(architecture, program)

    role = cols.loc_role
    # -- trap existence for init and movement locations (reference does not
    # -- check 1qGate locations for existence, only for occupancy) -----------
    structural = role != ROLE_1Q
    if not bool(cols.loc_valid[structural].all()):
        _delegate(architecture, program)

    # -- init: each qubit initialised at most once ---------------------------
    init_qubits = cols.loc_qubit[role == ROLE_INIT]
    if np.unique(init_qubits).size != init_qubits.size:
        _delegate(architecture, program)

    # -- transfer epochs: claimed transfer counts in range -------------------
    for claimed, n_moved in cols.epoch_claims:
        if claimed is not None and not 0 <= claimed <= 2 * n_moved:
            _delegate(architecture, program)

    # -- trap occupancy: one global event sort -------------------------------
    if _trap_occupancy_violated(cols):
        _delegate(architecture, program)
    is_place = (role == ROLE_INIT) | (role == ROLE_DROP)

    # -- AOD non-crossing, all rearrangement jobs in one batch ---------------
    if _aod_ordering_violated(cols):
        _delegate(architecture, program)

    # -- rydberg zone ids must exist (checked even for gate-less pulses) -----
    if cols.rydberg_insts:
        n_zones = len(architecture.entanglement_zones)
        for _, zone_id in cols.rydberg_insts:
            if not 0 <= zone_id < n_zones:
                _delegate(architecture, program)

    # -- current-location queries (1qGate assertions, rydberg co-location) ---
    one_q_idx = np.flatnonzero(role == ROLE_1Q)
    n_ry = len(cols.ry_a) if cols.ry_a is not None else 0
    n_queries = one_q_idx.size + 2 * n_ry
    if n_queries == 0:
        return
    place_idx = np.flatnonzero(is_place)
    q_qubit_parts = [cols.loc_qubit[one_q_idx]]
    q_seq_parts = [2 * cols.loc_inst[one_q_idx]]
    if n_ry:
        q_qubit_parts += [cols.ry_a, cols.ry_b]
        q_seq_parts += [2 * cols.ry_inst, 2 * cols.ry_inst]
    q_qubit = np.concatenate(q_qubit_parts)
    q_seq = np.concatenate(q_seq_parts)

    all_qubit = np.concatenate((cols.loc_qubit[place_idx], q_qubit))
    all_seq = np.concatenate((cols.loc_inst[place_idx] * 2 + 1, q_seq))
    flag = np.concatenate(
        (np.zeros(place_idx.size, dtype=np.int8), np.ones(n_queries, dtype=np.int8))
    )
    payload = np.concatenate((place_idx, np.arange(n_queries)))
    order = np.lexsort((flag, all_seq, all_qubit))
    s_qubit = all_qubit[order]
    s_flag = flag[order]
    s_payload = payload[order]
    pos = np.arange(order.size)
    fill = np.maximum.accumulate(np.where(s_flag == 0, pos, -1))
    q_pos = np.flatnonzero(s_flag == 1)
    fp = fill[q_pos]
    fp_clipped = np.maximum(fp, 0)
    known = (fp >= 0) & (s_qubit[fp_clipped] == s_qubit[q_pos])
    if not bool(known.all()):
        _delegate(architecture, program)  # gate on an unknown qubit
    current = np.empty(n_queries, dtype=np.int64)  # loc-table index per query
    current[s_payload[q_pos]] = s_payload[fp]

    # 1qGate: the asserted trap must be the qubit's current trap.
    n_1q = one_q_idx.size
    if n_1q:
        if bool(
            (cols.loc_trap[current[:n_1q]] != cols.loc_trap[one_q_idx]).any()
        ):
            _delegate(architecture, program)

    # Rydberg: pairs in the left/right SLMs of the zone, both qubits on the
    # same Rydberg site.
    if n_ry:
        pairs = [
            (zone.slms[0].slm_id, zone.slms[1].slm_id)
            for zone in architecture.entanglement_zones
        ]
        lefts = np.asarray([p[0] for p in pairs], dtype=np.int64)
        rights = np.asarray([p[1] for p in pairs], dtype=np.int64)
        ca = current[n_1q : n_1q + n_ry]
        cb = current[n_1q + n_ry :]
        sa = cols.loc_slm[ca]
        sb = cols.loc_slm[cb]
        left = lefts[cols.ry_zone]
        right = rights[cols.ry_zone]
        paired = ((sa == left) & (sb == right)) | ((sa == right) & (sb == left))
        if not bool(paired.all()):
            _delegate(architecture, program)
        if bool((cols.loc_row[ca] != cols.loc_row[cb]).any()) or bool(
            (cols.loc_col[ca] != cols.loc_col[cb]).any()
        ):
            _delegate(architecture, program)


def _trap_occupancy_violated(cols: ZAIRColumns) -> bool:
    """Batched trap-occupancy replay (detection only, one global event sort).

    Every occupancy-relevant event is (trap, seq, kind, qubit) with
    seq = 2*inst for pickups and 2*inst + 1 for placements (init, drops),
    so a chronological per-trap scan sees pickups before same-instruction
    drops.  A replay is valid iff, per trap, events alternate place/remove
    starting with a place and every remove takes the qubit the preceding
    place put there.  Together with the structural begin/end-qubit pairing
    of jobs and epochs (enforced at construction) this is equivalent to the
    reference dict replay: double occupancy, pickups from wrong traps,
    moves of unknown qubits, and duplicate drop targets all break
    alternation or qubit matching.
    """
    role = cols.loc_role
    is_place = (role == ROLE_INIT) | (role == ROLE_DROP)
    is_remove = role == ROLE_PICKUP
    ev_mask = is_place | is_remove
    if not bool(ev_mask.any()):
        return False
    ev_trap = cols.loc_trap[ev_mask]
    ev_qubit = cols.loc_qubit[ev_mask]
    ev_kind = is_remove[ev_mask].astype(np.int8)  # 0 = place, 1 = remove
    ev_seq = (2 * cols.loc_inst + np.where(role == ROLE_PICKUP, 0, 1))[ev_mask]
    order = np.lexsort((np.arange(ev_trap.size), ev_seq, ev_trap))
    t = ev_trap[order]
    k = ev_kind[order]
    q = ev_qubit[order]
    new_group = np.empty(t.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = t[1:] != t[:-1]
    if bool((k[new_group] == 1).any()):  # remove from an empty trap
        return True
    same = ~new_group[1:]
    if bool((same & (k[1:] == k[:-1])).any()):  # place-place / remove-remove
        return True
    # Pickup of the wrong qubit.
    return bool((same & (k[1:] == 1) & (q[1:] != q[:-1])).any())


def _aod_ordering_violated(cols: ZAIRColumns) -> bool:
    """Batched twin of :func:`validate_job_ordering` (detection only).

    Enumerates every within-job qubit pair of every rearrangement job with
    one vectorized triangular-index decode, then evaluates all non-crossing
    constraints in a handful of array operations.  All comparisons are
    single IEEE operations on coordinates computed by the same affine map as
    the reference, so the decisions are bit-identical.
    """
    jobs = [
        seg for seg in cols.move_segments
        if seg.is_job and seg.begin_stop - seg.begin_start >= 2
    ]
    if not jobs:
        return False
    sizes = np.asarray([seg.begin_stop - seg.begin_start for seg in jobs], dtype=np.int64)
    b_off = np.asarray([seg.begin_start for seg in jobs], dtype=np.int64)
    e_off = np.asarray([seg.end_start for seg in jobs], dtype=np.int64)
    pairs_per_job = sizes * (sizes - 1) // 2
    total = int(pairs_per_job.sum())
    if total == 0:
        return False
    job_of_pair = np.repeat(np.arange(len(jobs)), pairs_per_job)
    first_pair = np.concatenate(([0], np.cumsum(pairs_per_job)[:-1]))
    rank = np.arange(total) - first_pair[job_of_pair]
    # Decode the local pair (i < j) from its triangular rank: j is the
    # largest integer with j*(j-1)/2 <= rank (float sqrt + exact correction).
    j = ((1.0 + np.sqrt(1.0 + 8.0 * rank)) * 0.5).astype(np.int64)
    j = np.where(j * (j - 1) // 2 > rank, j - 1, j)
    j = np.where((j + 1) * j // 2 <= rank, j + 1, j)
    i = rank - j * (j - 1) // 2
    bi = b_off[job_of_pair] + i
    bj = b_off[job_of_pair] + j
    ei = e_off[job_of_pair] + i
    ej = e_off[job_of_pair] + j
    for coord in (cols.loc_x, cols.loc_y):
        db = coord[bi] - coord[bj]
        de = coord[ei] - coord[ej]
        share = np.abs(db) <= _AOD_TOL
        bad = (share & (np.abs(de) > _AOD_TOL)) | (~share & (db * de < 0))
        if bool(bad.any()):
            return True
    return False


def _validate_abstract_fast(
    architecture: Architecture | None, program: ZAIRProgram, cols: ZAIRColumns
) -> None:
    n = program.num_qubits

    # -- gate layers: one global vectorized sweep ----------------------------
    if cols.fg_kind is not None:
        kind, arity = cols.fg_kind, cols.fg_arity
        q0, q1 = cols.fg_q0, cols.fg_q1
        if bool((kind < 0).any()):
            _delegate(architecture, program)
        expected = np.where(kind == 0, 1, 2)
        if bool((arity != expected).any()):
            _delegate(architecture, program)
        if bool(((q0 < 0) | (q0 >= n)).any()):
            _delegate(architecture, program)
        two_q = kind != 0
        if bool(two_q.any()):
            q1_2 = q1[two_q]
            if bool(((q1_2 < 0) | (q1_2 >= n)).any()):
                _delegate(architecture, program)
            if bool((q0[two_q] == q1_2).any()):
                _delegate(architecture, program)
            if program.coupling_edges is not None:
                lo = np.minimum(q0[two_q], q1_2)
                hi = np.maximum(q0[two_q], q1_2)
                codes = lo * np.int64(n) + hi
                edges = np.fromiter(
                    (min(a, b) * n + max(a, b) for a, b in program.coupling_edges),
                    dtype=np.int64,
                    count=len(program.coupling_edges),
                )
                if not bool(np.isin(codes, edges).all()):
                    _delegate(architecture, program)
        if _schedule_overlap_violated(cols):
            _delegate(architecture, program)

    # -- global pulses / array moves: scalar per-instruction checks ----------
    for inst in program.instructions:
        if isinstance(inst, GlobalPulseInst):
            if _global_pulse_violated(inst, n):
                _delegate(architecture, program)
        elif isinstance(inst, ArrayMoveInst):
            if inst.distance_um < 0:
                _delegate(architecture, program)


def _schedule_overlap_violated(cols: ZAIRColumns) -> bool:
    """Per-qubit schedule-overlap detection, grouped cummax over incidences.

    Replays the reference condition exactly: processing gate incidences in
    program order per qubit, gate ``k`` must start no earlier than
    ``max(0, end_1..end_{k-1}) - _TIME_TOL``.
    """
    n_gates = len(cols.fg_kind)
    counts = np.where(cols.fg_arity >= 2, 2, 1)
    gate_index = np.repeat(np.arange(n_gates), counts)
    pair = np.stack([cols.fg_q0, cols.fg_q1], axis=1).ravel()
    keep = np.stack(
        [np.ones(n_gates, dtype=bool), cols.fg_arity >= 2], axis=1
    ).ravel()
    inc_qubit = pair[keep]
    inc_begin = cols.fg_begin[gate_index]
    inc_end = cols.fg_end[gate_index]
    if inc_qubit.size < 2:
        return False
    order = np.argsort(inc_qubit, kind="stable")
    qs = inc_qubit[order]
    begins = inc_begin[order]
    ends = inc_end[order]
    boundaries = np.flatnonzero(np.diff(qs)) + 1
    starts = np.concatenate(([0], boundaries))
    sizes = np.diff(np.concatenate((starts, [qs.size])))
    n_groups = starts.size
    width = int(sizes.max())
    if width < 2:
        return False
    if n_groups * width <= 5_000_000:
        # Segmented running max via one padded 2D cummax (fully vectorized).
        group_id = np.repeat(np.arange(n_groups), sizes)
        ordinal = np.arange(qs.size) - np.repeat(starts, sizes)
        mat = np.full((n_groups, width), -np.inf)
        mat[group_id, ordinal] = ends
        run = np.maximum(np.maximum.accumulate(mat, axis=1), 0.0)
        later = ordinal >= 1
        prev_stored = run[group_id[later], ordinal[later] - 1]
        return bool((begins[later] < prev_stored - _TIME_TOL).any())
    for lo, size in zip(starts, sizes):  # degenerate shapes: per-group sweep
        hi = lo + size
        if size < 2:
            continue
        stored = np.maximum(np.maximum.accumulate(ends[lo : hi - 1]), 0.0)
        if bool((begins[lo + 1 : hi] < stored - _TIME_TOL).any()):
            return True
    return False


def _global_pulse_violated(inst: GlobalPulseInst, num_qubits: int) -> bool:
    """Detection twin of the reference global-pulse checks."""
    if inst.extra_1q_gates < 0:
        return True
    active = set(inst.active_qubits)
    for qubit in inst.active_qubits:
        if not 0 <= qubit < num_qubits:
            return True
    in_gate: set[int] = set()
    for a, b in inst.gates:
        if a == b:
            return True
        for qubit in (a, b):
            if not 0 <= qubit < num_qubits or qubit not in active or qubit in in_gate:
                return True
            in_gate.add(qubit)
    return False
