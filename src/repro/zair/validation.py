"""Semantic validation of ZAIR programs.

The validator replays a program against an architecture and checks the
physical invariants the hardware imposes:

* every qubit starts at a unique, existing SLM trap;
* a rearrangement job only picks up qubits from where they actually are;
* no two qubits ever occupy the same trap;
* within one job, the AOD row/column ordering constraint holds (rows and
  columns of one AOD cannot cross, and co-located rows/columns must stay
  co-located);
* a ``rydberg`` instruction only entangles pairs that sit in the left/right
  traps of the same Rydberg site of the referenced entanglement zone.

Abstract baseline instructions have their own (weaker) invariants:

* ``transferEpoch`` replays trap occupancy like a rearrangement job but
  waives the AOD non-crossing check (the idealised bounds assume away AOD
  conflicts by construction);
* ``gateLayer`` / ``globalPulse`` / ``arrayMove`` address qubits by index;
  every index must be in range, two-qubit gates of a fixed-coupling program
  must run on coupling-graph edges, and no qubit may be in two gates at
  once.

Location-free programs (the superconducting and Atomique backends) skip the
``init`` requirement; a program mixing location-based and index-based gate
instructions is rejected.

This is used both by the test suite (as an oracle for compiler correctness)
and by the registry compile path (:func:`repro.api.compile`), which
validates every backend's emitted program.
"""

from __future__ import annotations

from ..arch.spec import Architecture, ArchitectureError
from .instructions import (
    LOCATION_INSTRUCTIONS,
    ArrayMoveInst,
    GateLayerInst,
    GlobalPulseInst,
    InitInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    TransferEpochInst,
)
from .lowering import qloc_position
from .program import ZAIRProgram

#: Slack allowed when checking that gates on one qubit do not overlap in time.
_TIME_TOL = 1e-9


class ValidationError(ValueError):
    """Raised when a ZAIR program violates a hardware invariant.

    Attributes:
        check: Stable, machine-readable identifier of the violated invariant
            (e.g. ``"trap-occupancy"`` or ``"coupling-edge"``).  The fuzz
            harness uses it to classify failures and to confirm that a
            minimized reproducer still trips the *same* check; humans get the
            message.
    """

    def __init__(self, message: str, *, check: str = "generic") -> None:
        super().__init__(message)
        self.check = check


def validate_job_ordering(architecture: Architecture, job: RearrangeJob) -> None:
    """Check the AOD non-crossing constraint for a single job.

    Two qubits held by the same AOD must keep their relative x order
    (columns cannot cross) and relative y order (rows cannot cross).  Qubits
    sharing a column (equal begin x) must share the destination x, and
    likewise for rows.
    """
    begin = [qloc_position(architecture, loc) for loc in job.begin_locs]
    end = [qloc_position(architecture, loc) for loc in job.end_locs]
    n = len(begin)
    tol = 1e-9
    for i in range(n):
        for j in range(i + 1, n):
            for axis in (0, 1):
                b_i, b_j = begin[i][axis], begin[j][axis]
                e_i, e_j = end[i][axis], end[j][axis]
                if abs(b_i - b_j) <= tol:
                    if abs(e_i - e_j) > tol:
                        raise ValidationError(
                            f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} "
                            f"and {job.begin_locs[j].qubit} share an AOD "
                            f"{'column' if axis == 0 else 'row'} but end at different "
                            "coordinates", check="aod-order"
                        )
                elif (b_i - b_j) * (e_i - e_j) < 0:
                    raise ValidationError(
                        f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} and "
                        f"{job.begin_locs[j].qubit} cross in "
                        f"{'x' if axis == 0 else 'y'}", check="aod-order"
                    )


def _check_trap_exists(architecture: Architecture, loc: QLoc) -> None:
    try:
        architecture.slm_by_id(loc.slm_id).trap_position(loc.row, loc.col)
    except ArchitectureError as exc:
        raise ValidationError(f"qubit {loc.qubit}: invalid trap {loc.trap}: {exc}", check="trap-exists") from exc


def validate_program(architecture: Architecture | None, program: ZAIRProgram) -> None:
    """Replay ``program`` and check all invariants.

    Args:
        architecture: The target architecture.  May be ``None`` for
            location-free programs (fixed-coupling / abstract monolithic
            backends), which are validated purely on qubit indices, coupling
            edges, and schedule consistency.
        program: The program to check.

    Raises:
        ValidationError: on the first violated invariant.
    """
    uses_locations = any(
        isinstance(inst, LOCATION_INSTRUCTIONS) for inst in program.instructions
    )
    if not uses_locations:
        _validate_abstract_program(program)
        return
    if architecture is None:
        raise ValidationError(
            "program uses trap locations; an architecture is required to validate it",
            check="structure",
        )
    if not program.instructions or not isinstance(program.instructions[0], InitInst):
        raise ValidationError("program must start with an init instruction", check="structure")

    init = program.instructions[0]
    location: dict[int, QLoc] = {}
    occupied: dict[tuple[int, int, int], int] = {}
    for loc in init.init_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit in location:
            raise ValidationError(f"qubit {loc.qubit} initialised twice", check="init-duplicate")
        if loc.trap in occupied:
            raise ValidationError(
                f"trap {loc.trap} initialised with two qubits "
                f"({occupied[loc.trap]} and {loc.qubit})", check="trap-occupancy"
            )
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit

    ent_slm_pairs = [
        (zone.slms[0].slm_id, zone.slms[1].slm_id)
        for zone in architecture.entanglement_zones
    ]

    for inst in program.instructions[1:]:
        if isinstance(inst, InitInst):
            raise ValidationError("init may only appear once, at the beginning", check="structure")
        if isinstance(inst, (GateLayerInst, GlobalPulseInst, ArrayMoveInst)):
            raise ValidationError(
                f"{type(inst).__name__} has no trap semantics and cannot appear "
                "in a program that tracks trap locations", check="structure"
            )
        if isinstance(inst, RearrangeJob):
            _replay_job(architecture, inst, location, occupied)
        elif isinstance(inst, TransferEpochInst):
            _replay_transfer_epoch(architecture, inst, location, occupied)
        elif isinstance(inst, RydbergInst):
            _check_rydberg(architecture, inst, location, ent_slm_pairs)
        elif isinstance(inst, OneQGateInst):
            for loc in inst.locs:
                if loc.qubit not in location:
                    raise ValidationError(f"1qGate on unknown qubit {loc.qubit}", check="unknown-qubit")
                if location[loc.qubit].trap != loc.trap:
                    raise ValidationError(
                        f"1qGate expects qubit {loc.qubit} at {loc.trap}, but it is at "
                        f"{location[loc.qubit].trap}", check="location-mismatch"
                    )


def _replay_moves(
    architecture: Architecture,
    label: str,
    begin_locs: list[QLoc],
    end_locs: list[QLoc],
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    """Replay one batch of movements (pickup everything, then drop everything)."""
    # Pickup: all begin locations must match the current qubit positions.
    for loc in begin_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit not in location:
            raise ValidationError(f"{label} moves unknown qubit {loc.qubit}", check="unknown-qubit")
        if location[loc.qubit].trap != loc.trap:
            raise ValidationError(
                f"{label} picks up qubit {loc.qubit} at {loc.trap}, but it is at "
                f"{location[loc.qubit].trap}", check="location-mismatch"
            )
        del occupied[loc.trap]
    # Drop-off: all end traps must be free and pairwise distinct.
    seen_targets: set[tuple[int, int, int]] = set()
    for loc in end_locs:
        _check_trap_exists(architecture, loc)
        if loc.trap in seen_targets:
            raise ValidationError(f"{label} drops two qubits at trap {loc.trap}", check="trap-occupancy")
        if loc.trap in occupied:
            raise ValidationError(
                f"{label} drops qubit {loc.qubit} at occupied trap {loc.trap} "
                f"(held by qubit {occupied[loc.trap]})", check="trap-occupancy"
            )
        seen_targets.add(loc.trap)
    for loc in end_locs:
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit


def _replay_job(
    architecture: Architecture,
    job: RearrangeJob,
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    validate_job_ordering(architecture, job)
    _replay_moves(
        architecture,
        f"job on AOD {job.aod_id}",
        job.begin_locs,
        job.end_locs,
        location,
        occupied,
    )


def _replay_transfer_epoch(
    architecture: Architecture,
    inst: TransferEpochInst,
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    """Occupancy replay of an abstract epoch (no AOD ordering constraint)."""
    if inst.transfer_count is not None and not 0 <= inst.transfer_count <= 2 * inst.num_qubits:
        raise ValidationError(
            f"transfer epoch claims {inst.transfer_count} transfers for "
            f"{inst.num_qubits} moved qubits", check="transfer-count"
        )
    _replay_moves(
        architecture, "transfer epoch", inst.begin_locs, inst.end_locs, location, occupied
    )


def _validate_abstract_program(program: ZAIRProgram) -> None:
    """Validate a location-free (index-addressed) program.

    Checks qubit-index ranges, fixed-coupling edges, and that no qubit is in
    two gates at overlapping times.
    """
    edges: set[frozenset[int]] | None = None
    if program.coupling_edges is not None:
        edges = {frozenset(edge) for edge in program.coupling_edges}
    busy_until: dict[int, float] = {}

    def check_qubit(qubit: int, context: str) -> None:
        if not 0 <= qubit < program.num_qubits:
            raise ValidationError(
                f"{context}: qubit {qubit} out of range for a "
                f"{program.num_qubits}-qubit program", check="index-range"
            )

    def occupy(qubits: tuple[int, ...] | list[int], begin: float, end: float, context: str) -> None:
        for qubit in qubits:
            if begin < busy_until.get(qubit, float("-inf")) - _TIME_TOL:
                raise ValidationError(
                    f"{context}: qubit {qubit} is still busy at t={begin:.6g}", check="schedule-overlap"
                )
            busy_until[qubit] = max(busy_until.get(qubit, 0.0), end)

    for inst in program.instructions:
        if isinstance(inst, GateLayerInst):
            for gate in inst.gates:
                if gate.kind not in ("1q", "2q", "swap"):
                    raise ValidationError(f"gate layer: unknown gate kind {gate.kind!r}", check="gate-kind")
                expected_arity = 1 if gate.kind == "1q" else 2
                if len(gate.qubits) != expected_arity:
                    raise ValidationError(
                        f"gate layer: {gate.kind} gate on {len(gate.qubits)} qubits", check="gate-kind"
                    )
                for qubit in gate.qubits:
                    check_qubit(qubit, "gate layer")
                if gate.kind != "1q":
                    if len(set(gate.qubits)) != 2:
                        raise ValidationError(
                            f"gate layer: two-qubit gate on identical qubits {gate.qubits}", check="gate-kind"
                        )
                    if edges is not None and frozenset(gate.qubits) not in edges:
                        raise ValidationError(
                            f"gate layer: gate {gate.qubits} is not an edge of the "
                            "coupling graph", check="coupling-edge"
                        )
                occupy(gate.qubits, gate.begin_time, gate.end_time, "gate layer")
        elif isinstance(inst, GlobalPulseInst):
            active = set(inst.active_qubits)
            for qubit in inst.active_qubits:
                check_qubit(qubit, "global pulse")
            in_gate: set[int] = set()
            for a, b in inst.gates:
                if a == b:
                    raise ValidationError(f"global pulse: gate on identical qubits ({a}, {b})", check="gate-kind")
                for qubit in (a, b):
                    check_qubit(qubit, "global pulse")
                    if qubit not in active:
                        raise ValidationError(
                            f"global pulse: gate qubit {qubit} missing from active_qubits", check="pulse-active"
                        )
                    if qubit in in_gate:
                        raise ValidationError(
                            f"global pulse: qubit {qubit} is in two gates of one pulse", check="pulse-overlap"
                        )
                    in_gate.add(qubit)
            if inst.extra_1q_gates < 0:
                raise ValidationError("global pulse: negative extra_1q_gates", check="pulse-counts")
        elif isinstance(inst, ArrayMoveInst):
            if inst.distance_um < 0:
                raise ValidationError("array move: negative distance", check="move-distance")
        else:  # pragma: no cover - guarded by uses_locations dispatch
            raise ValidationError(
                f"unexpected {type(inst).__name__} in a location-free program", check="structure"
            )


def _check_rydberg(
    architecture: Architecture,
    inst: RydbergInst,
    location: dict[int, QLoc],
    ent_slm_pairs: list[tuple[int, int]],
) -> None:
    if not 0 <= inst.zone_id < len(architecture.entanglement_zones):
        raise ValidationError(f"rydberg references unknown zone {inst.zone_id}", check="rydberg-zone")
    left_id, right_id = ent_slm_pairs[inst.zone_id]
    for a, b in inst.gates:
        for qubit in (a, b):
            if qubit not in location:
                raise ValidationError(f"rydberg gate on unknown qubit {qubit}", check="unknown-qubit")
        loc_a, loc_b = location[a], location[b]
        slm_ids = {loc_a.slm_id, loc_b.slm_id}
        if slm_ids != {left_id, right_id}:
            raise ValidationError(
                f"gate ({a}, {b}): qubits are not in the left/right traps of "
                f"entanglement zone {inst.zone_id} (SLMs {slm_ids})", check="rydberg-site"
            )
        if (loc_a.row, loc_a.col) != (loc_b.row, loc_b.col):
            raise ValidationError(
                f"gate ({a}, {b}): qubits occupy different Rydberg sites "
                f"({loc_a.row},{loc_a.col}) vs ({loc_b.row},{loc_b.col})", check="rydberg-site"
            )
