"""Semantic validation of ZAIR programs.

The validator replays a program against an architecture and checks the
physical invariants the hardware imposes:

* every qubit starts at a unique, existing SLM trap;
* a rearrangement job only picks up qubits from where they actually are;
* no two qubits ever occupy the same trap;
* within one job, the AOD row/column ordering constraint holds (rows and
  columns of one AOD cannot cross, and co-located rows/columns must stay
  co-located);
* a ``rydberg`` instruction only entangles pairs that sit in the left/right
  traps of the same Rydberg site of the referenced entanglement zone.

This is used both by the test suite (as an oracle for compiler correctness)
and exposed publicly so users can check hand-written programs.
"""

from __future__ import annotations

from ..arch.spec import Architecture, ArchitectureError
from .instructions import InitInst, OneQGateInst, QLoc, RearrangeJob, RydbergInst
from .lowering import qloc_position
from .program import ZAIRProgram


class ValidationError(ValueError):
    """Raised when a ZAIR program violates a hardware invariant."""


def validate_job_ordering(architecture: Architecture, job: RearrangeJob) -> None:
    """Check the AOD non-crossing constraint for a single job.

    Two qubits held by the same AOD must keep their relative x order
    (columns cannot cross) and relative y order (rows cannot cross).  Qubits
    sharing a column (equal begin x) must share the destination x, and
    likewise for rows.
    """
    begin = [qloc_position(architecture, loc) for loc in job.begin_locs]
    end = [qloc_position(architecture, loc) for loc in job.end_locs]
    n = len(begin)
    tol = 1e-9
    for i in range(n):
        for j in range(i + 1, n):
            for axis in (0, 1):
                b_i, b_j = begin[i][axis], begin[j][axis]
                e_i, e_j = end[i][axis], end[j][axis]
                if abs(b_i - b_j) <= tol:
                    if abs(e_i - e_j) > tol:
                        raise ValidationError(
                            f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} "
                            f"and {job.begin_locs[j].qubit} share an AOD "
                            f"{'column' if axis == 0 else 'row'} but end at different "
                            "coordinates"
                        )
                elif (b_i - b_j) * (e_i - e_j) < 0:
                    raise ValidationError(
                        f"job on AOD {job.aod_id}: qubits {job.begin_locs[i].qubit} and "
                        f"{job.begin_locs[j].qubit} cross in "
                        f"{'x' if axis == 0 else 'y'}"
                    )


def _check_trap_exists(architecture: Architecture, loc: QLoc) -> None:
    try:
        architecture.slm_by_id(loc.slm_id).trap_position(loc.row, loc.col)
    except ArchitectureError as exc:
        raise ValidationError(f"qubit {loc.qubit}: invalid trap {loc.trap}: {exc}") from exc


def validate_program(architecture: Architecture, program: ZAIRProgram) -> None:
    """Replay ``program`` on ``architecture`` and check all invariants.

    Raises:
        ValidationError: on the first violated invariant.
    """
    if not program.instructions or not isinstance(program.instructions[0], InitInst):
        raise ValidationError("program must start with an init instruction")

    init = program.instructions[0]
    location: dict[int, QLoc] = {}
    occupied: dict[tuple[int, int, int], int] = {}
    for loc in init.init_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit in location:
            raise ValidationError(f"qubit {loc.qubit} initialised twice")
        if loc.trap in occupied:
            raise ValidationError(
                f"trap {loc.trap} initialised with two qubits "
                f"({occupied[loc.trap]} and {loc.qubit})"
            )
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit

    ent_slm_pairs = [
        (zone.slms[0].slm_id, zone.slms[1].slm_id)
        for zone in architecture.entanglement_zones
    ]

    for inst in program.instructions[1:]:
        if isinstance(inst, InitInst):
            raise ValidationError("init may only appear once, at the beginning")
        if isinstance(inst, RearrangeJob):
            _replay_job(architecture, inst, location, occupied)
        elif isinstance(inst, RydbergInst):
            _check_rydberg(architecture, inst, location, ent_slm_pairs)
        elif isinstance(inst, OneQGateInst):
            for loc in inst.locs:
                if loc.qubit not in location:
                    raise ValidationError(f"1qGate on unknown qubit {loc.qubit}")
                if location[loc.qubit].trap != loc.trap:
                    raise ValidationError(
                        f"1qGate expects qubit {loc.qubit} at {loc.trap}, but it is at "
                        f"{location[loc.qubit].trap}"
                    )


def _replay_job(
    architecture: Architecture,
    job: RearrangeJob,
    location: dict[int, QLoc],
    occupied: dict[tuple[int, int, int], int],
) -> None:
    validate_job_ordering(architecture, job)
    # Pickup: all begin locations must match the current qubit positions.
    for loc in job.begin_locs:
        _check_trap_exists(architecture, loc)
        if loc.qubit not in location:
            raise ValidationError(f"job moves unknown qubit {loc.qubit}")
        if location[loc.qubit].trap != loc.trap:
            raise ValidationError(
                f"job picks up qubit {loc.qubit} at {loc.trap}, but it is at "
                f"{location[loc.qubit].trap}"
            )
        del occupied[loc.trap]
    # Drop-off: all end traps must be free and pairwise distinct.
    seen_targets: set[tuple[int, int, int]] = set()
    for loc in job.end_locs:
        _check_trap_exists(architecture, loc)
        if loc.trap in seen_targets:
            raise ValidationError(f"job drops two qubits at trap {loc.trap}")
        if loc.trap in occupied:
            raise ValidationError(
                f"job drops qubit {loc.qubit} at occupied trap {loc.trap} "
                f"(held by qubit {occupied[loc.trap]})"
            )
        seen_targets.add(loc.trap)
    for loc in job.end_locs:
        location[loc.qubit] = loc
        occupied[loc.trap] = loc.qubit


def _check_rydberg(
    architecture: Architecture,
    inst: RydbergInst,
    location: dict[int, QLoc],
    ent_slm_pairs: list[tuple[int, int]],
) -> None:
    if not 0 <= inst.zone_id < len(architecture.entanglement_zones):
        raise ValidationError(f"rydberg references unknown zone {inst.zone_id}")
    left_id, right_id = ent_slm_pairs[inst.zone_id]
    for a, b in inst.gates:
        for qubit in (a, b):
            if qubit not in location:
                raise ValidationError(f"rydberg gate on unknown qubit {qubit}")
        loc_a, loc_b = location[a], location[b]
        slm_ids = {loc_a.slm_id, loc_b.slm_id}
        if slm_ids != {left_id, right_id}:
            raise ValidationError(
                f"gate ({a}, {b}): qubits are not in the left/right traps of "
                f"entanglement zone {inst.zone_id} (SLMs {slm_ids})"
            )
        if (loc_a.row, loc_a.col) != (loc_b.row, loc_b.col):
            raise ValidationError(
                f"gate ({a}, {b}): qubits occupy different Rydberg sites "
                f"({loc_a.row},{loc_a.col}) vs ({loc_b.row},{loc_b.col})"
            )
