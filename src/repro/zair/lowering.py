"""Lowering rearrangement jobs to machine-level AOD instructions.

A job is executed in three phases (Section VI / Section IX):

1. **Pickup** -- AOD rows are activated one SLM row at a time (following the
   OLSQ-DPQA strategy), with small *parking* moves inserted between rows when
   an already-activated column would otherwise capture a qubit that is not
   part of the job.
2. **Move** -- all activated rows/columns translate together to the target
   coordinates (duration proportional to the square root of the longest
   displacement).
3. **Drop-off** -- rows/columns are deactivated, releasing qubits into the
   destination SLM traps.
"""

from __future__ import annotations

from ..arch.spec import Architecture
from ..fidelity.movement import movement_time_us
from ..fidelity.params import NEUTRAL_ATOM, NeutralAtomParams
from .instructions import (
    ActivateInst,
    DeactivateInst,
    MachineInst,
    MoveInst,
    QLoc,
    RearrangeJob,
)

#: Displacement (um) used for a parking micro-move during pickup.
PARKING_SHIFT_UM = 1.0


def qloc_position(architecture: Architecture, loc: QLoc) -> tuple[float, float]:
    """Physical (x, y) of a qubit location."""
    return architecture.slm_by_id(loc.slm_id).trap_position(loc.row, loc.col)


def job_max_distance_um(architecture: Architecture, job: RearrangeJob) -> float:
    """Longest single-qubit movement distance in a job."""
    longest = 0.0
    for begin, end in zip(job.begin_locs, job.end_locs):
        bx, by = qloc_position(architecture, begin)
        ex, ey = qloc_position(architecture, end)
        longest = max(longest, ((bx - ex) ** 2 + (by - ey) ** 2) ** 0.5)
    return longest


def job_total_distance_um(architecture: Architecture, job: RearrangeJob) -> float:
    """Sum of all single-qubit movement distances in a job."""
    total = 0.0
    for begin, end in zip(job.begin_locs, job.end_locs):
        bx, by = qloc_position(architecture, begin)
        ex, ey = qloc_position(architecture, end)
        total += ((bx - ex) ** 2 + (by - ey) ** 2) ** 0.5
    return total


def job_duration_us(
    architecture: Architecture,
    job: RearrangeJob,
    params: NeutralAtomParams = NEUTRAL_ATOM,
) -> float:
    """Duration of a job: pickup transfer + move + drop-off transfer.

    Atom transfers within one phase happen in parallel (one ``t_transfer``
    each for pickup and drop-off); the move takes the time of the longest
    individual displacement.
    """
    move = movement_time_us(job_max_distance_um(architecture, job), params)
    return 2.0 * params.t_transfer_us + move


def lower_job(architecture: Architecture, job: RearrangeJob) -> list[MachineInst]:
    """Generate the machine-level instruction list for one job.

    The pickup phase activates one AOD row per distinct source SLM row
    (bottom-up), inserting a parking move between successive activations so
    that already-held qubits cannot collide with traps of rows picked later.
    The main move then translates every row/column to its destination, and a
    single deactivate drops all qubits off.
    """
    if not job.begin_locs:
        return []

    begin_pts = [qloc_position(architecture, loc) for loc in job.begin_locs]
    end_pts = [qloc_position(architecture, loc) for loc in job.end_locs]

    # Group source qubits by their physical row (y coordinate).
    rows: dict[float, list[int]] = {}
    for index, (_, y) in enumerate(begin_pts):
        rows.setdefault(y, []).append(index)
    sorted_ys = sorted(rows)

    # Column assignment: one AOD column per distinct source x coordinate.
    col_xs = sorted({x for x, _ in begin_pts})
    col_id_of_x = {x: i for i, x in enumerate(col_xs)}

    insts: list[MachineInst] = []
    parked_offset = 0.0
    for phase, y in enumerate(sorted_ys):
        indices = rows[y]
        xs = sorted({begin_pts[i][0] for i in indices})
        insts.append(
            ActivateInst(
                row_id=[phase],
                row_y=[y + parked_offset],
                col_id=[col_id_of_x[x] for x in xs],
                col_x=list(xs),
            )
        )
        more_rows_left = phase < len(sorted_ys) - 1
        if more_rows_left:
            # Parking: nudge already-activated rows off the SLM grid so the
            # next activation cannot capture unrelated qubits.
            insts.append(
                MoveInst(
                    row_id=list(range(phase + 1)),
                    row_y_begin=[sorted_ys[i] + parked_offset for i in range(phase + 1)],
                    row_y_end=[sorted_ys[i] + PARKING_SHIFT_UM for i in range(phase + 1)],
                    col_id=[],
                    col_x_begin=[],
                    col_x_end=[],
                )
            )
            parked_offset = PARKING_SHIFT_UM

    # Main move: translate each AOD row to the destination y of its qubits and
    # each column to the destination x.
    row_of_index = {}
    for phase, y in enumerate(sorted_ys):
        for index in rows[y]:
            row_of_index[index] = phase
    row_y_begin = [y + parked_offset for y in sorted_ys]
    row_y_end = list(sorted_ys)
    for index, (_, ey) in enumerate(end_pts):
        row_y_end[row_of_index[index]] = ey
    col_x_begin = list(col_xs)
    col_x_end = list(col_xs)
    for index, (ex, _) in enumerate(end_pts):
        col_x_end[col_id_of_x[begin_pts[index][0]]] = ex

    insts.append(
        MoveInst(
            row_id=list(range(len(sorted_ys))),
            row_y_begin=row_y_begin,
            row_y_end=row_y_end,
            col_id=list(range(len(col_xs))),
            col_x_begin=col_x_begin,
            col_x_end=col_x_end,
        )
    )
    insts.append(
        DeactivateInst(
            row_id=list(range(len(sorted_ys))),
            col_id=list(range(len(col_xs))),
        )
    )
    return insts


def lower_program_jobs(architecture: Architecture, jobs: list[RearrangeJob]) -> None:
    """Populate ``insts`` for every job in place."""
    for job in jobs:
        job.insts = lower_job(architecture, job)
