"""Deterministic fault injection and chaos testing for the compile service.

The resilience plane has three layers:

- :mod:`repro.resilience.faults` — the injection substrate: seeded, replayable
  :class:`FaultPlan`s fired at named ``fault_point`` call sites threaded
  through the worker pool, the serve scheduler/daemon, and the disk cache.
- :mod:`repro.resilience.chaos` — the in-process chaos harness behind
  ``repro fuzz --profile chaos``: drives seeded traffic through a live
  :class:`~repro.serve.daemon.ServeDaemon` under a fault plan and checks
  service-level invariants (terminal responses, no wedge, no corrupted or
  non-bit-identical results), bisecting failures to minimal fault bundles.
- :mod:`repro.resilience.smoke` — ``repro chaos-smoke``: a short seeded fault
  schedule against a *spawned* stdio daemon (crash-restart, torn-write
  quarantine, oversized/malformed input) used as a CI gate.
"""

from .faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TransientError,
    TransientFaultError,
    WorkerCrashError,
    clear_fault_plan,
    fault_plan_active,
    fault_point,
    get_injector,
    install_fault_plan,
    is_transient,
    sample_fault_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "TransientError",
    "TransientFaultError",
    "WorkerCrashError",
    "clear_fault_plan",
    "fault_plan_active",
    "fault_point",
    "get_injector",
    "install_fault_plan",
    "is_transient",
    "sample_fault_plan",
]
