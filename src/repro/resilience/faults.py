"""Seeded, deterministic fault injection plane.

A :class:`FaultPlan` is the resilience analogue of a fuzz
``WorkloadDescriptor``: a small, JSON-serialisable recipe that deterministically
injects failures at *named injection points* in the compile service.  Hardened
layers (worker pool, serve scheduler/daemon, disk cache) call
:func:`fault_point` at those sites; with no plan installed the call is a
near-free no-op, with a plan installed it fires the matching
:class:`FaultSpec`s by hit index.

Injection points currently wired in:

================  ============================================================
point             site
================  ============================================================
``worker.compile``  :func:`repro.api.parallel._compile_task` — every compile
                    slot, both inline and in pool worker processes
``disk.get``        :meth:`DiskCompileCache.get` — before the shard read
``disk.put``        :meth:`DiskCompileCache.put` — before the shard write
``disk.replace``    between the tmp-file write and ``os.replace`` (site
                    handles ``disk-torn-write`` / ``disk-corrupt`` itself)
``daemon.result``   :meth:`ServeDaemon._serve_compile` — after the response
                    payload is built (deliberately unhardened; exists so the
                    chaos harness can prove its bit-identity invariant bites)
================  ============================================================

Fault kinds — the *hardened menu* (what :func:`sample_fault_plan` draws from)
must only contain kinds the service is expected to survive:

- ``slow-compile`` / ``worker-hang``: sleep ``param`` seconds at the point.
- ``compile-transient``: raise :class:`TransientFaultError` (retryable).
- ``worker-crash``: ``os._exit(13)`` in a pool worker process (inline
  fallback degrades to a transient raise so single-process runs stay sane).
- ``worker-crash-once``: like ``worker-crash`` but gated on a sentinel file
  (``param`` is the path) so the first retry deterministically succeeds.
- ``disk-read-error`` / ``disk-write-error``: raise :class:`OSError`.
- ``disk-torn-write``: the cache skips ``os.replace``, leaving a ``.tmp``
  remnant — simulates a crash mid-write.
- ``disk-corrupt``: the cache scribbles bytes into the shard after the
  replace — must be caught by the shard checksum on the next read.
- ``result-tamper``: NOT in the menu; regression-test-only (see above).

Plans install process-globally (:func:`install_fault_plan` /
:func:`fault_plan_active`) and bootstrap from the ``REPRO_FAULT_PLAN``
environment variable (a path to a plan JSON) so spawned daemons and
forked/spawned pool workers pick them up without plumbing.  Pool worker
processes see the plan that was active when they were forked (or the env
var at first use): install the plan *before* the pool's first parallel use,
or force a re-fork with ``get_worker_pool().shutdown()``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

PLAN_SCHEMA = 1

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Kinds the service must survive — the only kinds random chaos plans draw on.
HARDENED_KINDS = (
    "slow-compile",
    "compile-transient",
    "worker-crash-once",
    "disk-read-error",
    "disk-write-error",
    "disk-torn-write",
    "disk-corrupt",
)

#: All kinds fault_point understands (superset of the hardened menu).
KNOWN_KINDS = HARDENED_KINDS + (
    "worker-hang",
    "worker-crash",
    "result-tamper",
)

#: Default injection point for each kind, used by sample_fault_plan.
_POINT_FOR_KIND = {
    "slow-compile": "worker.compile",
    "worker-hang": "worker.compile",
    "compile-transient": "worker.compile",
    "worker-crash": "worker.compile",
    "worker-crash-once": "worker.compile",
    "disk-read-error": "disk.get",
    "disk-write-error": "disk.put",
    "disk-torn-write": "disk.replace",
    "disk-corrupt": "disk.replace",
    "result-tamper": "daemon.result",
}


class TransientError(RuntimeError):
    """Base class for failures worth retrying (worker died, injected blip)."""


class TransientFaultError(TransientError):
    """Injected transient failure from a fault plan."""


class WorkerCrashError(RuntimeError):
    """A worker process died and the retry budget was exhausted.

    Terminal, not transient: by the time this is constructed the pool has
    already been rebuilt and the slot retried ``max_retries`` times.
    """


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` represents a failure that a bounded retry may fix."""
    if isinstance(exc, TransientError):
        return True
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        return False
    return isinstance(exc, BrokenProcessPool)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter."""

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        base = min(self.max_delay_s, self.base_delay_s * (2.0**attempt))
        if rng is None or self.jitter <= 0.0:
            return base
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``kind`` at ``point`` on hit indices [after, after+count).

    Hit indices count calls to :func:`fault_point` for that point within the
    current process (each pool worker counts independently — deterministic
    cross-process coordination uses sentinel-file kinds instead).  ``match``
    optionally restricts firing to hits whose label contains the substring;
    matching is applied after hit counting so indices stay stable as traffic
    around the matching calls changes.
    """

    kind: str
    point: str
    after: int = 0
    count: int = 1
    param: float | str | None = None
    match: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.after < 0 or self.count < 1:
            raise ValueError("FaultSpec needs after >= 0 and count >= 1")

    def fires_at(self, hit_index: int) -> bool:
        return self.after <= hit_index < self.after + self.count

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "point": self.point, "after": self.after, "count": self.count}
        if self.param is not None:
            data["param"] = self.param
        if self.match is not None:
            data["match"] = self.match
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            point=data["point"],
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            param=data.get("param"),
            match=data.get("match"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of faults, identified by seed + spec list."""

    seed: int
    faults: tuple[FaultSpec, ...] = ()
    name: str = ""

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "name": self.name,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(f"unsupported fault plan schema {schema!r}")
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(item) for item in data.get("faults", ())),
            name=str(data.get("name", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


def sample_fault_plan(seed: int, max_faults: int = 4, sentinel_dir: str | Path | None = None) -> FaultPlan:
    """Deterministically sample a plan from the hardened fault menu.

    ``sentinel_dir`` is required for plans that may include
    ``worker-crash-once`` faults (the sentinel file lives there); without it
    crash faults are excluded so the plan stays self-contained.
    """
    rng = random.Random(seed)
    menu = list(HARDENED_KINDS)
    if sentinel_dir is None:
        menu.remove("worker-crash-once")
    specs = []
    num_faults = 1 + rng.randrange(max_faults)
    for index in range(num_faults):
        kind = menu[rng.randrange(len(menu))]
        point = _POINT_FOR_KIND[kind]
        after = rng.randrange(4)
        count = 1 + rng.randrange(2)
        param: float | str | None = None
        if kind in ("slow-compile", "worker-hang"):
            param = round(0.02 + 0.1 * rng.random(), 3)
        elif kind == "worker-crash-once":
            param = str(Path(sentinel_dir) / f"crash_{seed}_{index}.sentinel")
        specs.append(FaultSpec(kind=kind, point=point, after=after, count=count, param=param))
    return FaultPlan(seed=seed, faults=tuple(specs), name=f"chaos-{seed}")


@dataclass
class FaultInjector:
    """Tracks per-point hit counts for an installed plan and decides firing."""

    plan: FaultPlan
    _hits: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    fired: list = field(default_factory=list)

    def fire(self, point: str, label: str = "") -> FaultSpec | None:
        with self._lock:
            hit = self._hits.get(point, 0)
            self._hits[point] = hit + 1
            for spec in self.plan.faults:
                if spec.point != point:
                    continue
                if not spec.fires_at(hit):
                    continue
                if spec.match is not None and spec.match not in label:
                    continue
                self.fired.append((point, spec.kind, label))
                return spec
        return None

    def hits(self, point: str) -> int:
        with self._lock:
            return self._hits.get(point, 0)


_INJECTOR: FaultInjector | None = None
_ENV_CHECKED = False
_STATE_LOCK = threading.Lock()


def install_fault_plan(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-globally; returns its injector."""
    global _INJECTOR, _ENV_CHECKED
    with _STATE_LOCK:
        _INJECTOR = FaultInjector(plan)
        _ENV_CHECKED = True
        return _INJECTOR


def clear_fault_plan() -> None:
    global _INJECTOR, _ENV_CHECKED
    with _STATE_LOCK:
        _INJECTOR = None
        # Leave _ENV_CHECKED set: an explicit clear must also silence any
        # REPRO_FAULT_PLAN env plan for the rest of the process.
        _ENV_CHECKED = True


def get_injector() -> FaultInjector | None:
    """The active injector, bootstrapping from REPRO_FAULT_PLAN on first use."""
    global _INJECTOR, _ENV_CHECKED
    if _INJECTOR is not None:
        return _INJECTOR
    if _ENV_CHECKED:
        return None
    with _STATE_LOCK:
        if _INJECTOR is not None or _ENV_CHECKED:
            return _INJECTOR
        _ENV_CHECKED = True
        path = os.environ.get(ENV_FAULT_PLAN)
        if not path:
            return None
        try:
            _INJECTOR = FaultInjector(FaultPlan.load(path))
        except (OSError, ValueError, KeyError):
            return None
        return _INJECTOR


@contextmanager
def fault_plan_active(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install ``plan`` for the duration of the block, then clear it."""
    injector = install_fault_plan(plan)
    try:
        yield injector
    finally:
        clear_fault_plan()


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def fault_point(point: str, label: str = "") -> FaultSpec | None:
    """Named injection point.  No-op unless a plan is installed.

    Generic kinds (sleeps, transient raises, IO errors, crashes) are applied
    here; site-specific kinds (``disk-torn-write``, ``disk-corrupt``,
    ``result-tamper``) are returned to the caller, which implements the
    corruption at the exact spot the fault models.
    """
    injector = get_injector()
    if injector is None:
        return None
    spec = injector.fire(point, label)
    if spec is None:
        return None
    kind = spec.kind
    if kind in ("slow-compile", "worker-hang"):
        time.sleep(float(spec.param or 0.1))
        return spec
    if kind == "compile-transient":
        raise TransientFaultError(f"injected transient fault at {point}")
    if kind in ("disk-read-error", "disk-write-error"):
        raise OSError(f"injected {kind} at {point}")
    if kind == "worker-crash":
        if _in_worker_process():
            os._exit(13)
        raise TransientFaultError(f"injected worker crash (inline fallback) at {point}")
    if kind == "worker-crash-once":
        sentinel = Path(str(spec.param))
        try:
            # O_EXCL makes the crash-exactly-once decision atomic across
            # concurrently-failing worker processes.
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return spec  # already crashed once; retries succeed
        except OSError:
            return spec  # sentinel dir unavailable: refuse to crash forever
        os.close(fd)
        if _in_worker_process():
            os._exit(13)
        raise TransientFaultError(f"injected one-shot worker crash (inline fallback) at {point}")
    return spec
