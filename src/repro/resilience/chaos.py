"""The ``chaos`` fuzz profile: seeded fault storms against an in-process daemon.

Each iteration samples a replayable :class:`~repro.resilience.faults.FaultPlan`
(:func:`sample_fault_plan`), stands up a fresh :class:`repro.serve.ServeDaemon`
on a throwaway disk cache, and drives a seeded traffic mix through
``daemon.handle()`` concurrently while the plan is active -- normal compiles,
duplicates (coalescing), deadline'd requests, malformed requests, and
stats/health probes.  Four invariants are checked per plan:

``chaos-no-wedge``
    The daemon answers every request and drains its scheduler within the
    watchdog budget -- injected faults may slow it, never hang it.
``chaos-terminal``
    Every request gets exactly one terminal response: ``ok: true`` with a
    result, or ``ok: false`` with a structured error message.
``chaos-bit-identical``
    Every successful compile response -- cached, coalesced, or degraded --
    carries a summary bit-identical to a fault-free compile of the same
    request (degraded responses are compared under the same deterministic
    :func:`~repro.serve.daemon.degraded_zac_config` transform).  This is
    also the corrupted-cache detector: a shard that survived a torn write
    or a scribble and got served would diverge here.
``chaos-health``
    After the storm the daemon still answers ``health`` with ``status: ok``.

Failing plans are shrunk by bisecting the fault list (:func:`minimize_plan`)
and dumped as replayable fuzz bundles (``check: "chaos:<invariant>"``) that
``python -m repro fuzz --replay`` re-runs via :func:`replay_chaos_bundle`.

Everything is in-process and seeded: the traffic derives from ``plan.seed``
and compiles are deterministic, so a bundle's fault plan reproduces the
violation without the original run's wall clock.  (The live-daemon variant
-- spawning ``repro serve`` under ``REPRO_FAULT_PLAN`` -- lives in
:mod:`repro.resilience.smoke`.)
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from ..serve.daemon import ServeDaemon, build_circuit, build_options, degrade_built_options
from .faults import FaultPlan, fault_plan_active, get_injector, sample_fault_plan

#: Chaos traffic compiles with a light deterministic SA schedule: the
#: invariants test serving behavior, not placement quality.
CHAOS_COMPILE_OPTIONS: dict[str, Any] = {"config": {"sa_iterations": 40}}

#: Daemon shape under test: a queue bound small enough that a storm can
#: plausibly shed, and a degrade threshold low enough that deadline'd
#: requests exercise the degraded paths.
CHAOS_MAX_QUEUE = 16
CHAOS_DEGRADE_DEPTH = 2

#: Default number of requests per fault plan.
DEFAULT_NUM_REQUESTS = 12

#: Default wall-clock budget for one plan's storm (the no-wedge watchdog).
DEFAULT_WATCHDOG_S = 30.0

#: (generator, seed, num_qubits, depth) grid behind the traffic catalog:
#: small circuits, so a storm is dominated by scheduling, not annealing.
_CATALOG_GRID = (
    ("brickwork", 11, 4, 2),
    ("brickwork", 12, 5, 3),
    ("brickwork", 13, 6, 2),
    ("qaoa_erdos_renyi", 14, 4, 2),
    ("qaoa_erdos_renyi", 15, 5, 2),
    ("brickwork", 16, 4, 3),
)

_CATALOG: list[dict] | None = None

#: The fault-free oracle: one shared service (its caches only ever hold
#: fault-free compiles) plus a summary memo keyed by request identity.
_REFERENCE_SERVICE = None
_REFERENCE_MEMO: dict[tuple, dict] = {}


def _catalog() -> list[dict]:
    """Workload descriptors (as request-ready dicts) for chaos traffic."""
    global _CATALOG
    if _CATALOG is None:
        from ..circuits.random import generate

        _CATALOG = [
            generate(name, seed=seed, num_qubits=n, depth=depth).descriptor.to_dict()
            for name, seed, n, depth in _CATALOG_GRID
        ]
    return _CATALOG


_MALFORMED = (
    {"method": "compile", "params": {"circuit": {"bogus": 1}}},
    {"method": "compile", "params": {"circuit": {"qasm": "this is not qasm"}}},
    {"method": "compile", "params": {"circuit": {"benchmark": "no_such_benchmark"}}},
    {"method": "frobnicate"},
    {"method": "compile", "params": {"circuit": {"benchmark": "bv_n14"}, "priority": "high"}},
)


def chaos_requests(
    seed: int, num_requests: int = DEFAULT_NUM_REQUESTS
) -> tuple[list[dict], list[dict | None]]:
    """A seeded request storm: ``(requests, metas)`` of equal length.

    ``metas[i]`` is ``None`` for requests with nothing to bit-check
    (malformed, stats, health) and otherwise records what a fault-free
    reference compile of request ``i`` needs: the circuit descriptor,
    backend, and raw JSON options.
    """
    rng = random.Random(seed)
    catalog = _catalog()
    kinds = ["compile"] * 5 + ["duplicate"] * 2 + ["deadline"] * 2
    kinds += ["malformed", "stats", "health"]
    requests: list[dict] = []
    metas: list[dict | None] = []
    last: tuple[dict, dict | None] | None = None
    for index in range(num_requests):
        kind = kinds[rng.randrange(len(kinds))] if index else "compile"
        if kind == "duplicate" and last is not None:
            params = json.loads(json.dumps(last[0]))  # deep copy
            meta = last[1]
        elif kind in ("compile", "deadline", "duplicate"):
            descriptor = catalog[rng.randrange(len(catalog))]
            params = {
                "circuit": {"descriptor": descriptor},
                "backend": "zac",
                "options": dict(CHAOS_COMPILE_OPTIONS),
                "priority": rng.randrange(3),
            }
            if kind == "deadline":
                params["deadline_ms"] = rng.choice([1, 50, 200])
            meta = {
                "descriptor": descriptor,
                "backend": "zac",
                "options": CHAOS_COMPILE_OPTIONS,
            }
            last = (params, meta)
        elif kind == "malformed":
            bad = _MALFORMED[rng.randrange(len(_MALFORMED))]
            requests.append({"id": index, **json.loads(json.dumps(bad))})
            metas.append(None)
            continue
        else:  # stats / health probes
            requests.append({"id": index, "method": kind})
            metas.append(None)
            continue
        requests.append({"id": index, "method": "compile", "params": params})
        metas.append(meta)
    return requests, metas


def stable_summary(summary: dict) -> dict:
    """A summary with wall-clock timing fields removed.

    The bit-identity invariant compares physics and accounting -- fidelity,
    duration, gate/movement counts -- not how long the compiler happened to
    take under an injected slowdown.
    """
    return {
        name: value
        for name, value in summary.items()
        if name != "compile_time_s" and not name.startswith("time_")
    }


def _reference_summary(meta: dict, degraded: bool) -> dict:
    """The fault-free summary for a chaos compile request (memoized).

    Must never run under an active fault plan -- the reference service's
    caches would be poisoned with faulted compiles.
    """
    global _REFERENCE_SERVICE
    if get_injector() is not None:
        raise RuntimeError("reference compiles must run fault-free")
    key = (
        json.dumps(meta["descriptor"], sort_keys=True),
        meta["backend"],
        json.dumps(meta["options"], sort_keys=True),
        degraded,
    )
    if key in _REFERENCE_MEMO:
        return _REFERENCE_MEMO[key]
    from ..api.parallel import CompileService

    if _REFERENCE_SERVICE is None:
        _REFERENCE_SERVICE = CompileService()
    circuit = build_circuit({"descriptor": meta["descriptor"]})
    built = build_options(meta["backend"], meta["options"])
    if degraded:
        built, _ = degrade_built_options(meta["backend"], built)
    result = _REFERENCE_SERVICE.compile_batch(
        [circuit],
        meta["backend"],
        None,
        parallel=0,
        validate=True,
        cache=True,
        keep_programs=False,
        **built,
    )[0]
    summary = stable_summary(result.summary())
    _REFERENCE_MEMO[key] = summary
    return summary


@dataclass
class ChaosOutcome:
    """One fault plan's storm: what was checked and what broke."""

    plan: FaultPlan
    violations: list[tuple[str, str]] = field(default_factory=list)  #: (invariant, message)
    checks: dict[str, int] = field(default_factory=dict)
    responses: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated(self, invariant: str) -> bool:
        return any(name == invariant for name, _ in self.violations)


async def _drive(
    daemon: ServeDaemon, requests: list[dict], watchdog_s: float
) -> tuple[list[Any], dict | None, bool]:
    """Fire all requests concurrently; returns (responses, health, wedged)."""
    daemon.scheduler.start()
    wedged = False
    responses: list[Any] = []
    health: dict | None = None
    tasks = [asyncio.create_task(daemon.handle(dict(request))) for request in requests]
    try:
        responses = list(
            await asyncio.wait_for(asyncio.gather(*tasks), timeout=watchdog_s)
        )
        health = await asyncio.wait_for(
            daemon.handle({"id": "health", "method": "health"}), timeout=10.0
        )
    except (asyncio.TimeoutError, TimeoutError):
        wedged = True
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    try:
        await asyncio.wait_for(daemon.scheduler.stop(), timeout=10.0)
    except (asyncio.TimeoutError, TimeoutError):
        wedged = True
    return responses, health, wedged


def run_chaos_plan(
    plan: FaultPlan,
    *,
    cache_dir: str,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    watchdog_s: float = DEFAULT_WATCHDOG_S,
) -> ChaosOutcome:
    """Drive one seeded request storm under ``plan`` and check the invariants.

    Stands up a fresh in-process daemon on ``cache_dir`` (pass a throwaway
    directory: the plan's disk faults will chew on it), runs the storm with
    the plan installed, then -- with faults cleared -- replays every
    successful compile against the fault-free reference service.
    """
    requests, metas = chaos_requests(plan.seed, num_requests)
    daemon = ServeDaemon(
        cache_dir=cache_dir,
        max_queue=CHAOS_MAX_QUEUE,
        degrade_depth=CHAOS_DEGRADE_DEPTH,
    )
    with fault_plan_active(plan):
        responses, health, wedged = asyncio.run(_drive(daemon, requests, watchdog_s))
    outcome = ChaosOutcome(plan=plan, responses=responses)
    outcome.checks["no-wedge"] = 1
    if wedged:
        outcome.violations.append(
            (
                "no-wedge",
                f"daemon failed to serve {num_requests} requests within "
                f"{watchdog_s:.0f}s under plan {plan.name or plan.seed}",
            )
        )
        return outcome

    outcome.checks["terminal"] = len(requests)
    for request, response in zip(requests, responses):
        if not isinstance(response, dict) or "ok" not in response:
            outcome.violations.append(
                (
                    "terminal",
                    f"request {request.get('id')} got a non-terminal response: "
                    f"{response!r}",
                )
            )
        elif not response["ok"] and not (response.get("error") or {}).get("message"):
            outcome.violations.append(
                (
                    "terminal",
                    f"request {request.get('id')} failed without a structured "
                    f"error: {response!r}",
                )
            )

    outcome.checks["health"] = 1
    healthy = (
        isinstance(health, dict)
        and health.get("ok")
        and health.get("result", {}).get("status") == "ok"
    )
    if not healthy:
        outcome.violations.append(
            ("health", f"health probe failed after the storm: {health!r}")
        )

    for request, meta, response in zip(requests, metas, responses):
        if meta is None or not isinstance(response, dict) or not response.get("ok"):
            continue
        result = response.get("result") or {}
        if "summary" not in result:
            continue
        outcome.checks["bit-identical"] = outcome.checks.get("bit-identical", 0) + 1
        # "degraded" responses compiled under the deterministic degraded
        # config; "degraded-cache" served a full-options cached compile.
        degraded = result.get("served") == "degraded"
        expected = _reference_summary(meta, degraded)
        observed = stable_summary(result["summary"])
        if observed != expected:
            outcome.violations.append(
                (
                    "bit-identical",
                    f"request {request.get('id')} (served="
                    f"{result.get('served')!r}) diverges from its fault-free "
                    f"compile: {observed} != {expected}",
                )
            )
    return outcome


def _plan_fails(
    plan: FaultPlan, invariant: str, num_requests: int, watchdog_s: float
) -> bool:
    """Does ``plan`` still violate ``invariant`` on a fresh cache?"""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-min-") as cache_dir:
        outcome = run_chaos_plan(
            plan, cache_dir=cache_dir, num_requests=num_requests, watchdog_s=watchdog_s
        )
    return outcome.violated(invariant)


def minimize_plan(plan: FaultPlan, failing, max_attempts: int = 16) -> FaultPlan:
    """Shrink ``plan`` by bisecting its fault list while ``failing`` holds.

    The fault-list analogue of :func:`repro.experiments.fuzz.minimize_circuit`:
    drop contiguous chunks (halving down to single faults), keeping any
    reduction for which ``failing(smaller_plan)`` still returns True.  Each
    predicate call replays a whole storm, so ``max_attempts`` stays small.
    """
    faults = list(plan.faults)

    def rebuild(kept: list) -> FaultPlan:
        return FaultPlan(seed=plan.seed, faults=tuple(kept), name=f"{plan.name}-min")

    attempts = 0
    chunk = max(1, len(faults) // 2)
    while chunk >= 1 and attempts < max_attempts:
        index = 0
        while index < len(faults) and attempts < max_attempts:
            trial = faults[:index] + faults[index + chunk:]
            attempts += 1
            if trial and failing(rebuild(trial)):
                faults = trial
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return rebuild(faults)


def run_chaos(
    budget: int = 5,
    seed: int = 0,
    *,
    out_dir: str | None = None,
    num_requests: int = DEFAULT_NUM_REQUESTS,
    watchdog_s: float = DEFAULT_WATCHDOG_S,
    minimize: bool = True,
    plans: list[FaultPlan] | None = None,
):
    """Run ``budget`` sampled fault plans; returns a fuzz-style report.

    The ``--profile chaos`` entry point: ``budget`` counts *fault plans*
    (each one is a full request storm), and failures become replayable
    bundles whose ``check`` is ``chaos:<invariant>`` and whose ``extra``
    carries the (minimized) fault plan.
    """
    from ..experiments.fuzz import FuzzFailure, FuzzReport

    start = time.monotonic()
    rng = random.Random(seed)
    if plans is None:
        plans = [sample_fault_plan(rng.randrange(2**31)) for _ in range(budget)]
    report = FuzzReport(budget=len(plans), seed=seed, backends=["daemon"])
    for plan in plans:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
            outcome = run_chaos_plan(
                plan,
                cache_dir=cache_dir,
                num_requests=num_requests,
                watchdog_s=watchdog_s,
            )
        report.num_circuits += 1
        report.num_compiles += num_requests
        for name, count in outcome.checks.items():
            tag = f"chaos-{name}"
            report.invariant_checks[tag] = report.invariant_checks.get(tag, 0) + count
        seen: set[str] = set()
        for invariant, message in outcome.violations:
            if invariant in seen:
                continue  # one bundle per violated invariant per plan
            seen.add(invariant)
            final_plan = plan
            if minimize and len(plan.faults) > 1:
                final_plan = minimize_plan(
                    plan,
                    lambda p, inv=invariant: _plan_fails(
                        p, inv, num_requests, watchdog_s
                    ),
                )
            failure = FuzzFailure(
                check=f"chaos:{invariant}",
                backend="daemon",
                message=message,
                descriptor={
                    "generator": "chaos",
                    "seed": plan.seed,
                    "params": {"num_requests": num_requests},
                },
                extra={
                    "fault_plan": final_plan.to_dict(),
                    "num_requests": num_requests,
                    "watchdog_s": watchdog_s,
                    "original_num_faults": len(plan.faults),
                    "minimized_num_faults": len(final_plan.faults),
                },
                profile="chaos",
            )
            if out_dir is not None:
                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(
                    out_dir, f"fuzz_fail_{len(report.failures):03d}.json"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(failure.to_bundle(), handle, indent=2, sort_keys=True)
                failure.bundle_path = path
            report.failures.append(failure)
    report.elapsed_s = time.monotonic() - start
    return report


def replay_chaos_bundle(bundle: dict) -> tuple[bool, str]:
    """Re-run a ``chaos:*`` bundle's fault plan; ``(reproduced, message)``."""
    extra = bundle.get("extra") or {}
    if "fault_plan" not in extra:
        raise ValueError("chaos bundle is missing extra.fault_plan")
    plan = FaultPlan.from_dict(extra["fault_plan"])
    invariant = bundle["check"].split(":", 1)[1]
    with tempfile.TemporaryDirectory(prefix="repro-chaos-replay-") as cache_dir:
        outcome = run_chaos_plan(
            plan,
            cache_dir=cache_dir,
            num_requests=int(extra.get("num_requests", DEFAULT_NUM_REQUESTS)),
            watchdog_s=float(extra.get("watchdog_s", DEFAULT_WATCHDOG_S)),
        )
    for name, message in outcome.violations:
        if name == invariant:
            return True, f"chaos invariant {invariant} still violated: {message}"
    return False, f"chaos invariant {invariant} holds under the recorded fault plan"


__all__ = [
    "CHAOS_COMPILE_OPTIONS",
    "ChaosOutcome",
    "chaos_requests",
    "minimize_plan",
    "replay_chaos_bundle",
    "run_chaos",
    "run_chaos_plan",
]
