"""``repro chaos-smoke``: a short seeded fault schedule against a *live* daemon.

Where :mod:`repro.resilience.chaos` storms an in-process daemon, this module
spawns a real ``repro serve --stdio`` child under ``REPRO_FAULT_PLAN`` (the
env bootstrap path the fault plane exists for) and walks it through the
failure modes CI cares about, in order:

1. health answers while the plan is active;
2. a compile succeeds despite a torn disk-cache write and a disk read error;
3. a duplicate request is served from cache / coalescing;
4. a junk stdio line and an oversized line each get a structured error
   without wedging the transport (the daemon runs with a small
   ``--max-request-bytes`` so the oversized case is cheap);
5. a ``deadline_ms`` request on an expensive compile fails fast with
   ``kind: "deadline"``;
6. the daemon is hard-killed mid-compile (the power cut);
7. a restarted daemon on the same cache directory quarantines the torn-write
   remnant, reports healthy, and re-serves the first compile bit-identically
   to both the faulted run and an in-process fault-free reference.

The whole walk runs under a watchdog that kills the child if it wedges.
``make chaos-smoke`` gates ``make test`` on this.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from ..serve.client import ClientError, DaemonClient
from .chaos import CHAOS_COMPILE_OPTIONS, _catalog, _reference_summary, stable_summary
from .faults import FaultPlan, FaultSpec

#: Small request cap so the oversized-line probe costs ~100 KiB, not 8 MiB.
SMOKE_MAX_REQUEST_BYTES = 65536

#: Wall-clock budget for the whole walk before the watchdog pulls the plug.
SMOKE_WATCHDOG_S = 120.0


def smoke_fault_plan(seed: int, path: str | Path) -> FaultPlan:
    """The smoke schedule: one fault per hardened subsystem, saved to ``path``.

    * ``disk-read-error`` on the first cache read (a miss either way);
    * ``disk-torn-write`` on the first shard write -- the remnant is what the
      restarted daemon must quarantine;
    * ``slow-compile`` on the second compile slot, under the deadline'd
      request.
    """
    plan = FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(kind="disk-read-error", point="disk.get", after=0, count=1),
            FaultSpec(kind="disk-torn-write", point="disk.replace", after=0, count=1),
            FaultSpec(
                kind="slow-compile", point="worker.compile", after=1, count=1, param=0.05
            ),
        ),
        name=f"chaos-smoke-{seed}",
    )
    plan.save(path)
    return plan


def chaos_smoke(seed: int = 0) -> tuple[bool, list[str]]:
    """Run the live-daemon fault schedule; returns ``(ok, report_lines)``."""
    lines: list[str] = []
    problems: list[str] = []

    def step(name: str, ok: bool, detail: str = "") -> None:
        mark = "ok" if ok else "FAIL"
        lines.append(f"  {name:26s}: {mark}{' -- ' + detail if detail else ''}")
        if not ok:
            problems.append(name)

    catalog = _catalog()
    compile_meta = {
        "descriptor": catalog[0],
        "backend": "zac",
        "options": CHAOS_COMPILE_OPTIONS,
    }
    compile_params = {
        "circuit": {"descriptor": catalog[0]},
        "backend": "zac",
        "options": dict(CHAOS_COMPILE_OPTIONS),
    }
    expensive_params = {
        "circuit": {"descriptor": catalog[2]},
        "backend": "zac",
        "options": {"config": {"sa_iterations": 4000}},
    }

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        tmp_path = Path(tmp)
        cache_dir = str(tmp_path / "cache")
        plan = smoke_fault_plan(seed, tmp_path / "fault_plan.json")
        lines.append(
            f"chaos-smoke seed={seed}: plan {plan.name} "
            f"({', '.join(spec.kind for spec in plan.faults)})"
        )

        def spawn(with_plan: bool) -> DaemonClient:
            env = {"REPRO_FAULT_PLAN": str(tmp_path / "fault_plan.json")} if with_plan else {}
            return DaemonClient.spawn(
                cache_dir=cache_dir,
                extra_args=["--max-request-bytes", str(SMOKE_MAX_REQUEST_BYTES)],
                env=env,
            )

        client = spawn(with_plan=True)
        watchdog = threading.Timer(SMOKE_WATCHDOG_S, client.kill)
        watchdog.start()
        faulted_summary = None
        try:
            response = client.request("health")
            step(
                "health under faults",
                bool(response.get("ok"))
                and response["result"].get("status") == "ok",
                f"status={response.get('result', {}).get('status')!r}",
            )

            # Torn disk write + disk read error both fire under this compile.
            response = client.request("compile", dict(compile_params))
            ok = bool(response.get("ok"))
            if ok:
                faulted_summary = stable_summary(response["result"]["summary"])
            step(
                "compile despite disk faults",
                ok,
                f"served={response.get('result', {}).get('served')!r}",
            )

            response = client.request("compile", dict(compile_params))
            served = response.get("result", {}).get("served")
            step(
                "duplicate served warm",
                bool(response.get("ok")) and served in ("memory", "disk", "coalesced"),
                f"served={served!r}",
            )

            # A junk line must produce a structured error, not a wedge.
            client.process.stdin.write("this is not json\n")
            client.process.stdin.flush()
            response = client.recv()
            step(
                "junk line gets bad-json error",
                not response.get("ok") and "message" in (response.get("error") or {}),
            )

            # An oversized line: a structured "oversized" error, after which
            # the daemon still answers (the discarded line's tail may arrive
            # as junk lines; wait(id) absorbs their error responses).
            client.process.stdin.write(
                '{"id": "big", "method": "compile", "padding": "'
                + "x" * (2 * SMOKE_MAX_REQUEST_BYTES)
                + '"}\n'
            )
            client.process.stdin.flush()
            response = client.recv()
            step(
                "oversized line shed",
                not response.get("ok")
                and (response.get("error") or {}).get("kind") == "oversized",
                f"kind={(response.get('error') or {}).get('kind')!r}",
            )
            probe = client.send("stats")
            response = client.wait(probe)
            step("transport alive after oversize", bool(response.get("ok")))

            # Deadline pressure: an expensive compile with a 1 ms deadline
            # (plus the injected slowdown) must fail fast and structured.
            response = client.request(
                "compile", {**expensive_params, "deadline_ms": 1}
            )
            kind = (response.get("error") or {}).get("kind")
            step(
                "deadline enforced",
                not response.get("ok") and kind == "deadline",
                f"kind={kind!r}",
            )

            # Power cut mid-compile.
            client.send("compile", dict(expensive_params))
            client.kill()
            step("daemon killed mid-flight", client.process.poll() is not None)
        except (ClientError, OSError, KeyError) as exc:
            step("faulted daemon session", False, f"{type(exc).__name__}: {exc}")
            client.kill()
        finally:
            watchdog.cancel()

        # Restart fault-free on the same cache directory.
        client = spawn(with_plan=False)
        watchdog = threading.Timer(SMOKE_WATCHDOG_S, client.kill)
        watchdog.start()
        try:
            response = client.request("health")
            disk = response.get("result", {}).get("disk", {})
            step(
                "restart healthy",
                bool(response.get("ok"))
                and response["result"].get("status") == "ok",
            )
            step(
                "torn write quarantined",
                disk.get("quarantined", 0) >= 1,
                f"quarantined={disk.get('quarantined')}",
            )

            response = client.request("compile", dict(compile_params))
            ok = bool(response.get("ok"))
            summary = stable_summary(response["result"]["summary"]) if ok else None
            step(
                "recompile after restart",
                ok,
                f"served={response.get('result', {}).get('served')!r}",
            )
            if faulted_summary is not None:
                step(
                    "bit-identical across faults",
                    summary == faulted_summary,
                )
            reference = _reference_summary(compile_meta, degraded=False)
            step("bit-identical to reference", summary == reference)
            client.close()
        except (ClientError, OSError, KeyError) as exc:
            step("restarted daemon session", False, f"{type(exc).__name__}: {exc}")
            client.kill()
        finally:
            watchdog.cancel()

    lines.append(
        "chaos-smoke: PASS" if not problems else f"chaos-smoke: FAIL ({', '.join(problems)})"
    )
    return not problems, lines


__all__ = ["SMOKE_MAX_REQUEST_BYTES", "chaos_smoke", "smoke_fault_plan"]
