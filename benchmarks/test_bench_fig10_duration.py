"""Benchmark E3 -- regenerates Fig. 10 (circuit duration comparison)."""

from repro.experiments.duration_comparison import (
    duration_ratios,
    duration_table,
    run_duration_comparison,
)
from repro.experiments.reporting import format_table


def test_bench_fig10_duration(benchmark, circuit_subset):
    records = benchmark.pedantic(
        run_duration_comparison, args=(circuit_subset,), rounds=1, iterations=1
    )
    print("\n[Fig. 10] circuit duration (ms)")
    print(format_table(duration_table(records)))
    ratios = duration_ratios(records)
    print("ZAC duration ratio vs baselines:", {k: round(v, 2) for k, v in ratios.items()})
    assert all(r.duration_us > 0 for r in records)
