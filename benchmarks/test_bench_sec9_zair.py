"""Benchmark E11 -- regenerates Section IX (ZAIR instruction statistics)."""

from repro.experiments.reporting import format_table
from repro.experiments.zair_stats import run_zair_stats


def test_bench_sec9_zair_stats(benchmark, circuit_subset):
    rows = benchmark.pedantic(run_zair_stats, args=(circuit_subset,), rounds=1, iterations=1)
    print("\n[Section IX] ZAIR instructions per gate (paper: 0.85 ZAIR / 1.77 machine)")
    print(format_table(rows))
    gmean = rows[-1]
    assert float(gmean["zair_per_gate"]) > 0
    assert float(gmean["machine_per_gate"]) >= float(gmean["zair_per_gate"])
    # The job abstraction keeps the program-level instruction count of the
    # same order as the gate count.
    assert float(gmean["zair_per_gate"]) < 3.0
