"""Serve-daemon throughput benchmark (``BENCH_serve_throughput.json``).

Drives an in-process :class:`repro.serve.ServeDaemon` (no subprocess or
pipe overhead -- this measures the service layers, not process startup)
through two phases over a fixed catalogue of small workloads:

* **cold**: every unique request once, each paying a full compile; and
* **replay**: several simulated clients replay the same request log
  concurrently, so every request is served from the in-memory compile
  cache (or coalesces onto an in-flight duplicate).

The ledger records requests/s and per-request p50/p99 latency for both
phases.  The gate is the serving contract itself: cache-hit-served
requests must sustain at least ``MIN_HIT_SPEEDUP`` times the cold
compile-bound request rate -- if that ever fails, the daemon is
recompiling (or blocking) where it should be serving from cache.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.serve import ServeDaemon

#: Hit-served requests must beat cold compile-bound throughput by this factor.
MIN_HIT_SPEEDUP = 5.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve_throughput.json"

#: Simulated concurrent clients in the replay phase, and replays per client.
NUM_CLIENTS = 4
REPLAYS_PER_CLIENT = 3

#: Unique compile requests (small brickwork workloads, light SA schedule).
NUM_UNIQUE = 8


def _request(index: int) -> dict:
    return {
        "id": index,
        "method": "compile",
        "params": {
            "circuit": {
                "descriptor": {
                    "generator": "brickwork",
                    "seed": index,
                    "params": {"num_qubits": 5 + index % 3, "depth": 2 + index % 2},
                }
            },
            "options": {"config": {"sa_iterations": 100}},
        },
    }


def _percentiles(latencies_s: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies_s)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50 * 1e3, p99 * 1e3


async def _timed_handle(daemon: ServeDaemon, request: dict, latencies: list) -> dict:
    start = time.perf_counter()
    response = await daemon.handle(request)
    latencies.append(time.perf_counter() - start)
    assert response["ok"], response
    return response


async def _run_phases() -> dict:
    daemon = ServeDaemon()
    daemon.scheduler.start()
    try:
        # -- cold: every unique request pays a full compile -------------------
        cold_latencies: list[float] = []
        cold_start = time.perf_counter()
        for index in range(NUM_UNIQUE):
            response = await _timed_handle(daemon, _request(index), cold_latencies)
            assert response["result"]["served"] == "compiled"
        cold_s = time.perf_counter() - cold_start

        # -- replay: concurrent clients, everything hit- or coalesce-served --
        replay_latencies: list[float] = []

        async def client(client_id: int) -> list[str]:
            served = []
            for _ in range(REPLAYS_PER_CLIENT):
                for index in range(NUM_UNIQUE):
                    response = await _timed_handle(
                        daemon, _request(index), replay_latencies
                    )
                    served.append(response["result"]["served"])
            return served

        replay_start = time.perf_counter()
        served_lists = await asyncio.gather(
            *(client(i) for i in range(NUM_CLIENTS))
        )
        replay_s = time.perf_counter() - replay_start
    finally:
        await daemon.scheduler.stop()

    served = [tag for tags in served_lists for tag in tags]
    assert "compiled" not in served  # nothing recompiled during the replay
    cold_p50, cold_p99 = _percentiles(cold_latencies)
    hit_p50, hit_p99 = _percentiles(replay_latencies)
    cold_rate = len(cold_latencies) / cold_s
    hit_rate = len(replay_latencies) / replay_s
    stats = await daemon._method_stats({})
    return {
        "benchmark": "serve_throughput",
        "unique_requests": NUM_UNIQUE,
        "clients": NUM_CLIENTS,
        "cold": {
            "requests": len(cold_latencies),
            "total_s": round(cold_s, 4),
            "requests_per_s": round(cold_rate, 2),
            "p50_ms": round(cold_p50, 3),
            "p99_ms": round(cold_p99, 3),
        },
        "cache_hit": {
            "requests": len(replay_latencies),
            "total_s": round(replay_s, 4),
            "requests_per_s": round(hit_rate, 2),
            "p50_ms": round(hit_p50, 3),
            "p99_ms": round(hit_p99, 3),
            "served_memory": served.count("memory"),
            "served_coalesced": served.count("coalesced"),
        },
        "hit_speedup": round(hit_rate / cold_rate, 2),
        "min_hit_speedup": MIN_HIT_SPEEDUP,
        "scheduler": stats["scheduler"],
        "recorded_unix_time": time.time(),
    }


def test_bench_serve_throughput():
    payload = asyncio.run(_run_phases())
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    cold = payload["cold"]
    hit = payload["cache_hit"]
    print(
        f"\n[serve] cold {cold['requests_per_s']:.1f} req/s "
        f"(p50 {cold['p50_ms']:.1f} ms, p99 {cold['p99_ms']:.1f} ms); "
        f"hit-served {hit['requests_per_s']:.1f} req/s "
        f"(p50 {hit['p50_ms']:.2f} ms, p99 {hit['p99_ms']:.2f} ms); "
        f"speedup {payload['hit_speedup']:.1f}x -> {RESULT_PATH.name}"
    )
    assert payload["hit_speedup"] >= MIN_HIT_SPEEDUP
