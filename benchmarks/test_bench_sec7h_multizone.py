"""Benchmark E9 -- regenerates Section VII-H (multiple entanglement zones)."""

from repro.experiments.multi_zone import improvement, run_multi_zone
from repro.experiments.reporting import format_table


def test_bench_sec7h_multi_zone(benchmark):
    rows = benchmark.pedantic(run_multi_zone, args=("ising_n98",), rounds=1, iterations=1)
    print("\n[Section VII-H] ising_n98 on Arch1 (1 zone) vs Arch2 (2 zones)")
    print(format_table(rows))
    stats = improvement(rows)
    print(f"Arch2 fidelity gain: {stats['fidelity_gain'] * 100:+.1f}%")
    print(f"Arch2 duration reduction: {stats['duration_reduction'] * 100:+.1f}%")
    # The second entanglement zone improves fidelity (paper: +15%).
    assert stats["fidelity_gain"] > 0
