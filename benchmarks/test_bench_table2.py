"""Benchmark E8 -- regenerates Table II (SC grid vs ZAC breakdown and duration)."""

from repro.experiments.reporting import format_table
from repro.experiments.table2 import run_table2


def test_bench_table2_breakdown(benchmark, circuit_subset):
    rows = benchmark.pedantic(run_table2, args=(circuit_subset,), rounds=1, iterations=1)
    print("\n[Table II] SC grid vs ZAC fidelity breakdown")
    print(format_table(rows))
    sc = next(r for r in rows if r["platform"] == "SC")
    zac = next(r for r in rows if r["platform"] == "ZAC")
    # The qualitative Table II shape: the SC machine is orders of magnitude
    # faster but ZAC has the better decoherence term thanks to the 1.5 s T2.
    assert zac["avg_duration_us"] > sc["avg_duration_us"]
    assert zac["decoherence"] > 0
    assert 0 < sc["total"] <= 1 and 0 < zac["total"] <= 1
