"""Benchmark E4 -- regenerates Fig. 11 (ablation of ZAC's techniques)."""

from repro.experiments.ablation import ablation_table, run_ablation, stepwise_improvements
from repro.experiments.harness import geometric_mean, records_by_compiler
from repro.experiments.reporting import format_table


def test_bench_fig11_ablation(benchmark, circuit_subset):
    records = benchmark.pedantic(run_ablation, args=(circuit_subset,), rounds=1, iterations=1)
    print("\n[Fig. 11] ablation study")
    print(format_table(ablation_table(records)))
    print("step-wise gains:", {k: f"{v * 100:+.1f}%" for k, v in stepwise_improvements(records).items()})
    grouped = records_by_compiler(records)
    reuse = geometric_mean(r.fidelity for r in grouped["dynPlace+reuse"])
    dyn = geometric_mean(r.fidelity for r in grouped["dynPlace"])
    vanilla = geometric_mean(r.fidelity for r in grouped["Vanilla"])
    # Reuse is the big step in the paper (Fig. 11: +46% over dynPlace).
    assert reuse > dyn * 1.01
    assert reuse > vanilla * 1.01
