"""Shared fixtures for the benchmark harness.

Each benchmark regenerates the data behind one table or figure of the paper
on a representative subset of circuits (so a full ``pytest benchmarks/
--benchmark-only`` run finishes in minutes).  Pass ``--paper-full`` to run
every experiment on the complete 17-circuit benchmark set.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-full",
        action="store_true",
        default=False,
        help="run every experiment on the full 17-circuit benchmark set",
    )


#: Fast, representative subset: one sequential, one parallel, one Toffoli-heavy,
#: one dense circuit.
FAST_SUBSET = ["bv_n14", "ghz_n23", "ising_n42", "multiply_n13"]


@pytest.fixture(scope="session")
def circuit_subset(request):
    """Circuit names used by the benchmarks (full set with --paper-full)."""
    if request.config.getoption("--paper-full"):
        return None  # None means "all paper benchmarks" to the experiment runners.
    return FAST_SUBSET
