"""Benchmark E6 -- regenerates Fig. 13 (optimality study against ideal bounds)."""

from repro.experiments.optimality import optimality_gaps, run_optimality
from repro.experiments.reporting import format_table


def test_bench_fig13_optimality(benchmark, circuit_subset):
    rows = benchmark.pedantic(run_optimality, args=(circuit_subset,), rounds=1, iterations=1)
    print("\n[Fig. 13] optimality analysis")
    print(format_table(rows))
    gaps = optimality_gaps(rows)
    print("optimality gaps:", {k: f"{v * 100:.1f}%" for k, v in gaps.items()})
    # The bounds dominate ZAC and the overall gap stays moderate (paper: ~10%).
    for gap in gaps.values():
        assert -1e-6 <= gap < 0.35
