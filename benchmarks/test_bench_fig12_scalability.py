"""Benchmark E5 -- regenerates Fig. 12 (compile time versus fidelity)."""

from repro.experiments.reporting import format_table
from repro.experiments.scalability import run_scalability, scalability_table


def test_bench_fig12_scalability(benchmark, circuit_subset):
    records = benchmark.pedantic(
        run_scalability, args=(circuit_subset,), rounds=1, iterations=1
    )
    rows = scalability_table(records)
    print("\n[Fig. 12] compilation time vs fidelity")
    print(format_table(rows))
    by_name = {r["compiler"]: r for r in rows}
    full = by_name["ZAC-SA+dynPlace+reuse"]
    vanilla = by_name["ZAC-Vanilla"]
    # The full pipeline buys fidelity at some compile-time cost.
    assert full["gmean_fidelity"] >= vanilla["gmean_fidelity"]
    assert full["mean_compile_time_s"] < 60.0
