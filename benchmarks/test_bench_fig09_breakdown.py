"""Benchmark E2 -- regenerates Fig. 9 (fidelity breakdown per error source)."""

from repro.experiments.fidelity_breakdown import breakdown_table, run_fidelity_breakdown
from repro.experiments.harness import geometric_mean, records_by_compiler
from repro.experiments.reporting import format_table


def test_bench_fig09_fidelity_breakdown(benchmark, circuit_subset):
    records = benchmark.pedantic(
        run_fidelity_breakdown, args=(circuit_subset,), rounds=1, iterations=1
    )
    print("\n[Fig. 9] fidelity breakdown (2Q gate / atom transfer / decoherence)")
    print(format_table(breakdown_table(records)))
    grouped = records_by_compiler(records)
    zac_2q = geometric_mean(r.fidelity_2q for r in grouped["ZAC"])
    enola_2q = geometric_mean(r.fidelity_2q for r in grouped["Enola"])
    nalac_2q = geometric_mean(r.fidelity_2q for r in grouped["NALAC"])
    # ZAC has no idle-qubit excitation, so its 2Q-gate term beats the others.
    assert zac_2q > enola_2q
    assert zac_2q >= nalac_2q
