"""Fuzz-throughput regression benchmark.

Runs the full differential harness (compile on every backend through the
warm compile service, validate in-compile, check all metamorphic
invariants) over a fixed seeded workload sample and records
circuits-fuzzed-per-second and compiles-per-second to
``BENCH_fuzz_throughput.json`` at the repo root, so the fuzzing throughput
trajectory is tracked from PR to PR alongside the compile-speed and
verify-speed numbers.

History of the gated floor (same budget=8 / seed=0 sample):

* PR 4 (per-call pools, double validation, full-SA compiles): ~14.6
  compiles/s.
* PR 5 (warm pool + compile cache, validated-once results, shared staging
  cache, vectorized verify, throughput compile profile): ~50 compiles/s.

PR 9 added non-gating throughput entries for the two new sweep profiles
(``ftqc`` logical-block workloads on the logical architecture, ``corpus``
seeded draws from the committed OpenQASM mini-corpus) so their trajectories
could be tracked before floors were imposed.  PR 10 promotes both to gated
floors now that the recorded history (ftqc ~68 compiles/s, corpus ~204
compiles/s) supports them.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.api import get_compile_service
from repro.circuits.scheduling import clear_preprocess_cache
from repro.experiments.fuzz import run_fuzz

#: Throughput floors.  Observed ~2.7 circuits/s and ~50 compiles/s on the
#: reference container when run standalone (the committed
#: BENCH_fuzz_throughput.json records the standalone numbers); the gated
#: floors sit ~2x lower so heap/GC pressure from a full-suite run or a slow
#: shared runner doesn't flake the gate, while still catching any real
#: regression toward the PR-4 baseline (~14.6 compiles/s, 0.7 circuits/s).
MIN_CIRCUITS_PER_S = 1.5
MIN_COMPILES_PER_S = 30.0

#: Gated per-profile compiles/s floors.  Observed on the reference
#: container: ftqc ~50-70 compiles/s (zac/nalac/ideal on the 64-block
#: logical architecture), corpus ~200-220 compiles/s (all backends on the
#: committed mini-corpus); the floors follow the same ~2x headroom policy
#: as the gated default-profile floor above.
PROFILE_SWEEPS = {"ftqc": 30.0, "corpus": 90.0}

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fuzz_throughput.json"


def test_bench_fuzz_throughput(request):
    budget = 20 if request.config.getoption("--paper-full") else 8
    service = get_compile_service()
    service.clear_cache()
    clear_preprocess_cache()
    gc.collect()  # don't bill garbage from earlier suite tests to the sweep
    report = run_fuzz(budget=budget, seed=0, parallel=0, out_dir=None)

    assert report.ok, [f.message for f in report.failures]

    # Gated profile sweeps: ftqc/corpus throughput alongside the gated
    # default-profile numbers, each with its own floor from PROFILE_SWEEPS.
    profiles = {}
    for profile in PROFILE_SWEEPS:
        service.clear_cache()
        clear_preprocess_cache()
        gc.collect()
        profile_report = run_fuzz(
            budget=budget, seed=0, parallel=0, out_dir=None, profile=profile
        )
        assert profile_report.ok, [f.message for f in profile_report.failures]
        profiles[profile] = {
            "backends": profile_report.backends,
            "num_circuits": profile_report.num_circuits,
            "num_compiles": profile_report.num_compiles,
            "invariant_checks": profile_report.invariant_checks,
            "elapsed_s": round(profile_report.elapsed_s, 3),
            "circuits_per_s": round(profile_report.circuits_per_s, 3),
            "compiles_per_s": round(profile_report.compiles_per_s, 3),
            "min_required_compiles_per_s": PROFILE_SWEEPS[profile],
            "gating": True,
        }

    payload = {
        "benchmark": "differential_fuzz_throughput",
        "budget": report.budget,
        "seed": report.seed,
        "backends": report.backends,
        "num_circuits": report.num_circuits,
        "num_compiles": report.num_compiles,
        "invariant_checks": report.invariant_checks,
        "compile_cache": service.cache.stats(),
        "elapsed_s": round(report.elapsed_s, 3),
        "circuits_per_s": round(report.circuits_per_s, 3),
        "compiles_per_s": round(report.compiles_per_s, 3),
        "min_required_circuits_per_s": MIN_CIRCUITS_PER_S,
        "min_required_compiles_per_s": MIN_COMPILES_PER_S,
        "profiles": profiles,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[fuzz throughput] {report.num_circuits} circuits x "
        f"{len(report.backends)} backends in {report.elapsed_s:.1f}s "
        f"({report.circuits_per_s:.2f} circuits/s, "
        f"{report.compiles_per_s:.1f} compiles/s) -> {RESULT_PATH.name}"
    )
    for profile, numbers in profiles.items():
        print(
            f"[fuzz throughput] profile {profile}: {numbers['num_compiles']} "
            f"compiles in {numbers['elapsed_s']:.1f}s "
            f"({numbers['compiles_per_s']:.1f} compiles/s, "
            f"floor {PROFILE_SWEEPS[profile]})"
        )
    assert report.circuits_per_s >= MIN_CIRCUITS_PER_S, (
        f"fuzz throughput {report.circuits_per_s:.2f} circuits/s below the "
        f"{MIN_CIRCUITS_PER_S} floor; see {RESULT_PATH}"
    )
    assert report.compiles_per_s >= MIN_COMPILES_PER_S, (
        f"fuzz throughput {report.compiles_per_s:.1f} compiles/s below the "
        f"{MIN_COMPILES_PER_S} floor; see {RESULT_PATH}"
    )
    for profile, floor in PROFILE_SWEEPS.items():
        observed = profiles[profile]["compiles_per_s"]
        assert observed >= floor, (
            f"{profile} fuzz throughput {observed:.1f} compiles/s below the "
            f"{floor} floor; see {RESULT_PATH}"
        )
