"""Fuzz-throughput regression benchmark.

Runs the full differential harness (compile on every backend, validate,
check all metamorphic invariants) over a fixed seeded workload sample and
records circuits-fuzzed-per-second to ``BENCH_fuzz_throughput.json`` at the
repo root, so the fuzzing throughput trajectory is tracked from PR to PR
alongside the compile-speed numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments.fuzz import run_fuzz

#: Throughput floor (circuits fully fuzzed per second across all 6 backends).
#: Set well below observed (~0.6-2/s) so only a real regression trips it.
MIN_CIRCUITS_PER_S = 0.15

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fuzz_throughput.json"


def test_bench_fuzz_throughput(request):
    budget = 20 if request.config.getoption("--paper-full") else 8
    report = run_fuzz(budget=budget, seed=0, parallel=0, out_dir=None)

    assert report.ok, [f.message for f in report.failures]

    payload = {
        "benchmark": "differential_fuzz_throughput",
        "budget": report.budget,
        "seed": report.seed,
        "backends": report.backends,
        "num_circuits": report.num_circuits,
        "num_compiles": report.num_compiles,
        "invariant_checks": report.invariant_checks,
        "elapsed_s": round(report.elapsed_s, 3),
        "circuits_per_s": round(report.circuits_per_s, 3),
        "compiles_per_s": round(report.compiles_per_s, 3),
        "min_required_circuits_per_s": MIN_CIRCUITS_PER_S,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[fuzz throughput] {report.num_circuits} circuits x "
        f"{len(report.backends)} backends in {report.elapsed_s:.1f}s "
        f"({report.circuits_per_s:.2f} circuits/s) -> {RESULT_PATH.name}"
    )
    assert report.circuits_per_s >= MIN_CIRCUITS_PER_S, (
        f"fuzz throughput {report.circuits_per_s:.2f} circuits/s below the "
        f"{MIN_CIRCUITS_PER_S} floor; see {RESULT_PATH}"
    )
