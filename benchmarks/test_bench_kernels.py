"""Kernel-layer microbenchmarks (first slice of the ROADMAP perf ledger).

Times the two hottest inner loops of the compiler in isolation and records
them to ``BENCH_kernels.json`` at the repo root:

* **SA Metropolis step** (:func:`repro.core.placement.annealing.anneal` via
  :func:`~repro.core.placement.initial.sa_placement` with the delta-cost
  protocol): microseconds per annealing iteration on a representative
  placement workload, setup amortized over the iterations actually run.
* **ASAP staging scheduler** (:func:`repro.circuits.scheduling.schedule_stages`
  fast path): microseconds per gate on resynthesized circuits.

The assertions are loose catastrophic-regression backstops (an order of
magnitude above typical numbers); the JSON ledger is the real artifact --
``benchmarks/bench_diff.py`` reports run-over-run drifts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.circuits.scheduling import preprocess, schedule_stages
from repro.circuits.synthesis import resynthesize
from repro.core.config import ZACConfig
from repro.core.placement.initial import sa_placement

#: Catastrophic-regression backstops (roughly 10x typical 1-CPU numbers).
MAX_SA_US_PER_ITERATION = 500.0
MAX_STAGING_US_PER_GATE = 100.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

REPEATS = 5


def _bench_sa_metropolis(architecture) -> dict:
    """Best-of-N microseconds per Metropolis iteration, setup amortized."""
    circuit = generate("brickwork", seed=0, num_qubits=30, depth=20).circuit
    stage_pairs = [
        stage.pairs for stage in preprocess(circuit, cache=False).rydberg_stages
    ]
    config = ZACConfig(sa_iterations=2000)

    best_us_per_iteration = float("inf")
    iterations = 0
    for _ in range(REPEATS):
        captured: dict[str, object] = {}
        start = time.perf_counter()
        sa_placement(
            architecture,
            circuit.num_qubits,
            stage_pairs,
            config,
            on_result=lambda r: captured.__setitem__("r", r),
        )
        elapsed = time.perf_counter() - start
        result = captured["r"]
        us = elapsed * 1e6 / max(1, result.iterations)
        if us < best_us_per_iteration:
            best_us_per_iteration = us
            iterations = result.iterations
    return {
        "workload": "brickwork[num_qubits=30,depth=20]",
        "iterations_run": iterations,
        "us_per_iteration": round(best_us_per_iteration, 3),
        "max_us_per_iteration": MAX_SA_US_PER_ITERATION,
    }


def _bench_staging_scheduler() -> dict:
    """Best-of-N microseconds per gate for the fast ASAP stage scheduler."""
    rows = []
    total_gates = 0
    total_best_s = 0.0
    for generator, num_qubits, depth in (
        ("brickwork", 30, 24),
        ("qaoa_erdos_renyi", 24, 8),
    ):
        circuit = generate(
            generator, seed=0, num_qubits=num_qubits, depth=depth
        ).circuit
        native = resynthesize(circuit)
        num_gates = len(native.gates)
        best_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            schedule_stages(native, fast=True)
            best_s = min(best_s, time.perf_counter() - start)
        total_gates += num_gates
        total_best_s += best_s
        rows.append(
            {
                "workload": f"{generator}[num_qubits={num_qubits},depth={depth}]",
                "num_gates": num_gates,
                "us_per_gate": round(best_s * 1e6 / num_gates, 3),
            }
        )
    return {
        "workloads": rows,
        "us_per_gate": round(total_best_s * 1e6 / total_gates, 3),
        "max_us_per_gate": MAX_STAGING_US_PER_GATE,
    }


def test_bench_kernels():
    architecture = reference_zoned_architecture()
    sa = _bench_sa_metropolis(architecture)
    staging = _bench_staging_scheduler()

    payload = {
        "benchmark": "kernel_microbenchmarks",
        "sa_metropolis": sa,
        "staging_scheduler": staging,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[kernels] SA {sa['us_per_iteration']:.2f} us/iteration "
        f"({sa['iterations_run']} iterations); staging "
        f"{staging['us_per_gate']:.2f} us/gate -> {RESULT_PATH.name}"
    )
    assert sa["us_per_iteration"] <= MAX_SA_US_PER_ITERATION
    assert staging["us_per_gate"] <= MAX_STAGING_US_PER_GATE
